//! Offline stand-in for `criterion`, vendored so the workspace builds
//! without a crates.io mirror. Implements the subset of the criterion 0.5
//! API used by `crates/bench`: groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros. Measurement is a simple
//! calibrated wall-clock loop (median of `sample_size` samples), printed as
//! one line per benchmark — no statistical analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for `criterion::black_box` users (same as `std::hint`).
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    /// Target measuring time per benchmark.
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement: Duration::from_millis(600),
        }
    }
}

/// One benchmark's measured timing.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median time per iteration.
    pub per_iter: Duration,
    /// Total iterations executed while measuring.
    pub iters: u64,
}

impl Criterion {
    /// Override the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.measurement, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement: self.measurement,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<I: IntoBenchId, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(&full, self.sample_size, self.measurement, &mut f);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchId, P: ?Sized, F>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
    {
        let full = format!("{}/{}", self.name, id.into_bench_id());
        run_one(
            &full,
            self.sample_size,
            self.measurement,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    /// Finish the group (printing is per-benchmark; nothing buffered).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchId {
    /// The display form.
    fn into_bench_id(self) -> String;
}

impl IntoBenchId for &str {
    fn into_bench_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchId for String {
    fn into_bench_id(self) -> String {
        self
    }
}

impl IntoBenchId for BenchmarkId {
    fn into_bench_id(self) -> String {
        self.text
    }
}

/// Handed to each benchmark closure; call [`iter`](Bencher::iter).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, measurement: Duration, f: &mut F) {
    // Calibrate: find an iteration count that makes one sample ~measurable.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let warm = b.elapsed.max(Duration::from_nanos(20));
    let per_sample = measurement / (sample_size as u32).max(1);
    let iters = (per_sample.as_nanos() / warm.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    let mut total_iters = 0u64;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
        total_iters += iters;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        samples.len(),
        total_iters / samples.len() as u64,
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a single runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; skip measuring.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        assert!(ran > 0);
    }
}
