//! Offline stand-in for `serde_derive`, vendored so the workspace builds
//! without a crates.io mirror. Parses the item's token stream by hand (no
//! `syn`/`quote`) and emits `serde::Serialize` / `serde::Deserialize` impls
//! over the in-tree value-tree serde. Supports non-generic structs (named,
//! tuple, unit) and enums (unit, newtype, tuple, struct variants, with
//! optional explicit discriminants). Of the `#[serde(...)]` attributes only
//! `#[serde(default)]` on named fields is supported (a missing field
//! deserializes to `Default::default()`); anything else is ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]` was present: deserialize a missing field to
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let keyword = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, found {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("derive stub does not support generic type `{name}`");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unexpected struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body {other:?}"),
        },
        kw => panic!("derive stub supports struct/enum only, found `{kw}`"),
    };
    Item { name, kind }
}

/// Fields of a named-fields body (`{ a: T, #[serde(default)] pub b: U }`).
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes/docs and visibility before the field name,
        // remembering whether one of them was `#[serde(default)]`.
        let mut default = false;
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        default |= is_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("expected field name, found {tok:?}");
        };
        fields.push(Field {
            name: field.to_string(),
            default,
        });
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        // Consume the type up to the next top-level comma. Commas nested in
        // `<...>` (e.g. `HashMap<K, V>`) are skipped via angle-depth
        // tracking; commas inside (), [], {} are invisible (token groups).
        let mut angle_depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Whether an attribute's bracketed stream is `serde(... default ...)`.
fn is_serde_default(attr: TokenStream) -> bool {
    let mut toks = attr.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Number of fields in a tuple body (`(T, U, ...)`).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tok in body {
        if let TokenTree::Punct(p) = &tok {
            let c = p.as_char();
            if c == ',' && angle_depth == 0 {
                count += 1;
                saw_token = false;
                continue;
            }
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' {
                angle_depth -= 1;
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1; // no trailing comma
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        // Skip attributes/docs before the variant name.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("expected variant name, found {tok:?}");
        };
        let name = vname.to_string();
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                if n == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(n)
                }
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '=' {
                toks.next();
                while let Some(tok) = toks.peek() {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    toks.next();
                }
            }
        }
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let f = &f.name;
                pushes.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = \
                 Vec::with_capacity({});\n{pushes}::serde::Value::Obj(__fields)",
                fields.len()
            )
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::__private::tag(\
                         \"{vname}\", ::serde::Serialize::to_value(__f0)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::__private::tag(\
                             \"{vname}\", ::serde::Value::Arr(vec![{}])),\n",
                            binds.join(", "),
                            vals.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            let f = &f.name;
                            pushes.push_str(&format!(
                                "__fields.push((\"{f}\".to_string(), \
                                 ::serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => {{\
                             let mut __fields: Vec<(String, ::serde::Value)> = \
                             Vec::with_capacity({});\n{pushes}\
                             ::serde::__private::tag(\"{vname}\", \
                             ::serde::Value::Obj(__fields)) }},\n",
                            fields.len()
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// One `name: ...?` initializer of a named field read from value `src`.
fn field_init(f: &Field, src: &str) -> String {
    let name = &f.name;
    if f.default {
        format!("{name}: ::serde::__private::field_or_default({src}, \"{name}\")?")
    } else {
        format!("{name}: ::serde::__private::field({src}, \"{name}\")?")
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| field_init(f, "__v")).collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::element(__v, {i})?"))
                .collect();
            format!("Ok({name}({}))", inits.join(", "))
        }
        Kind::UnitStruct => format!("Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::__private::element(__inner, {i})?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname}({})),\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> =
                            fields.iter().map(|f| field_init(f, "__inner")).collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => Ok({name}::{vname} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                 return match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::DeError::custom(format!(\
                 \"unknown unit variant {{__other:?}} of {name}\"))),\n}};\n}}\n\
                 let (__tag, __inner) = ::serde::__private::untag(__v)?;\n\
                 match __tag {{\n{tagged_arms}\
                 __other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant {{__other:?}} of {name}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
