//! Offline stand-in for `serde_json`, vendored so the workspace builds
//! without a crates.io mirror. Renders the in-tree serde [`Value`] tree to
//! compact JSON and parses it back. Number literals pass through verbatim in
//! both directions, so `u64` and `f64` round-trip exactly.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization failure (message-only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize straight to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value).map_err(|e| Error(e.0))
}

/// Parse a typed value out of a [`Value`] tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v).map_err(|e| Error(e.0))
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(s) => out.push_str(s),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Obj(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("non-UTF-8 number".to_string()))?;
        if text.parse::<f64>().is_err() {
            return Err(Error(format!("invalid number literal {text:?}")));
        }
        Ok(Value::Num(text.to_string()))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("truncated \\u escape".to_string()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at c.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    if start + len > self.bytes.len() {
                        return Err(Error("truncated UTF-8".to_string()));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}', found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Obj(vec![
            ("t".to_string(), Value::Num("35.84".to_string())),
            (
                "stations".to_string(),
                Value::Arr(vec![
                    Value::Num("0".to_string()),
                    Value::Num("18446744073709551615".to_string()),
                ]),
            ),
            (
                "label".to_string(),
                Value::Str("a \"quoted\"\nline".to_string()),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let mut text = String::new();
        super::write_value(&v, &mut text);
        let back = parse_value_complete(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn garbage_is_an_error() {
        assert!(parse_value_complete("this is not json").is_err());
        assert!(parse_value_complete("{\"a\":}").is_err());
        assert!(parse_value_complete("[1,2,]").is_err());
        assert!(parse_value_complete("{} trailing").is_err());
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<f64> = vec![0.1, 2542.64, -1.0e-9, f64::INFINITY];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
    }
}
