//! Offline stand-in for `parking_lot`, vendored so the workspace builds
//! without a crates.io mirror. Wraps `std::sync` primitives behind
//! parking_lot's panic-free, non-poisoning API surface (the subset this
//! workspace uses).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, locking never
/// returns a poison error — a poisoned lock is recovered transparently,
/// matching parking_lot semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with the same non-poisoning behaviour.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
    }
}
