//! Offline stand-in for the `rand` crate, vendored so the workspace builds
//! without a crates.io mirror. It implements the subset of the rand 0.8 API
//! this workspace uses: [`RngCore`], [`SeedableRng`], the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`) and [`rngs::SmallRng`] backed by
//! xoshiro256++ (the same family rand's `small_rng` feature uses on 64-bit
//! targets). Streams are deterministic per seed but are NOT byte-compatible
//! with upstream rand — all in-tree determinism tests compare runs of this
//! implementation against itself, never against recorded upstream streams.

#![forbid(unsafe_code)]

/// The core of a random number generator: uniformly random words.
pub trait RngCore {
    /// Next uniformly random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 (rand's scheme).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used to expand `u64` seeds into full generator states.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from a generator (the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<const N: usize> StandardSample for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on empty ranges.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift (Lemire) keeps bias below 2^-64 per draw.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo + draw as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + (hi - lo) * u
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly ("standard" distribution;
    /// floats land in `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s.iter().all(|&w| w == 0) {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_covers_support_uniformly() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0u32..8) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 800, "value {i} drawn only {c} times");
        }
        for _ in 0..1000 {
            let v = r.gen_range(3u32..=5);
            assert!((3..=5).contains(&v));
            let f = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_dyn_and_mut_refs() {
        let mut r = SmallRng::seed_from_u64(3);
        let dynref: &mut dyn RngCore = &mut r;
        let x: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
        fn takes_rng<R: RngCore>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        takes_rng(&mut &mut r);
    }
}
