//! Offline stand-in for `serde`, vendored so the workspace builds without a
//! crates.io mirror. Instead of serde's visitor architecture it uses a small
//! JSON-shaped value tree: [`Serialize`] lowers a type to a [`Value`],
//! [`Deserialize`] rebuilds it. The companion `serde_derive` proc-macro
//! generates both impls for plain structs and enums (no `#[serde(...)]`
//! attributes), and the in-tree `serde_json` renders [`Value`] to and from
//! JSON text with serde_json-compatible conventions (externally tagged
//! enums, transparent newtypes, `Option` as the value-or-null).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the intermediate form between typed data and
/// serialized text. Numbers keep their literal text so `u64` and `f64`
/// round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number, kept as its literal text.
    Num(String),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object, insertion-ordered.
    Obj(Vec<(String, Value)>),
}

/// Deserialization error: a plain message naming what failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Produce the value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        DeError::custom(format!(
                            "invalid {} literal {s:?}: {e}",
                            stringify!($t)
                        ))
                    }),
                    other => Err(DeError::custom(format!(
                        "expected {} number, found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Num(self.to_string())
                } else if self.is_nan() {
                    Value::Str("NaN".to_string())
                } else if *self > 0.0 {
                    Value::Str("inf".to_string())
                } else {
                    Value::Str("-inf".to_string())
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(s) => s.parse::<$t>().map_err(|e| {
                        DeError::custom(format!("invalid float literal {s:?}: {e}"))
                    }),
                    Value::Str(s) => match s.as_str() {
                        "NaN" => Ok(<$t>::NAN),
                        "inf" => Ok(<$t>::INFINITY),
                        "-inf" => Ok(<$t>::NEG_INFINITY),
                        _ => Err(DeError::custom(format!("expected float, found string {s:?}"))),
                    },
                    other => Err(DeError::custom(format!("expected float, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::custom(format!("expected char, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            other => Err(DeError::custom(format!(
                "expected array of length {N}, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) if items.len() == [$($idx),+].len() => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::custom(format!(
                        "expected tuple array, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Helpers the derive-generated code calls. Not part of the public API.
pub mod __private {
    use super::{DeError, Deserialize, Value};

    /// Wrap a variant payload in its externally-tagged single-key object.
    pub fn tag(name: &str, inner: Value) -> Value {
        Value::Obj(vec![(name.to_string(), inner)])
    }

    /// Unwrap an externally-tagged enum value into (variant name, payload).
    pub fn untag(v: &Value) -> Result<(&str, &Value), DeError> {
        match v {
            Value::Obj(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
            other => Err(DeError::custom(format!(
                "expected single-key enum object, found {other:?}"
            ))),
        }
    }

    /// Extract and deserialize the named field of a struct object.
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Obj(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, val)) => T::from_value(val)
                    .map_err(|e| DeError::custom(format!("field {name:?}: {}", e.0))),
                None => Err(DeError::custom(format!("missing field {name:?}"))),
            },
            other => Err(DeError::custom(format!("expected object, found {other:?}"))),
        }
    }

    /// Like [`field`], but a missing field yields `Default::default()`
    /// (`#[serde(default)]`). Present-but-malformed fields still error.
    pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
        match v {
            Value::Obj(entries) => match entries.iter().find(|(k, _)| k == name) {
                Some((_, val)) => T::from_value(val)
                    .map_err(|e| DeError::custom(format!("field {name:?}: {}", e.0))),
                None => Ok(T::default()),
            },
            other => Err(DeError::custom(format!("expected object, found {other:?}"))),
        }
    }

    /// Extract and deserialize the `idx`-th element of a tuple array.
    pub fn element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, DeError> {
        match v {
            Value::Arr(items) => match items.get(idx) {
                Some(val) => T::from_value(val)
                    .map_err(|e| DeError::custom(format!("element {idx}: {}", e.0))),
                None => Err(DeError::custom(format!("missing tuple element {idx}"))),
            },
            other => Err(DeError::custom(format!("expected array, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        for x in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&x.to_value()).unwrap(), x);
        }
        for x in [0.0f64, 35.84, -2.5e-7, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
        }
        assert!(f64::from_value(&f64::NAN.to_value()).unwrap().is_nan());
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let arr = [1.5f64, 2.5, 3.5];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
    }
}
