//! Offline stand-in for `proptest`, vendored so the workspace builds without
//! a crates.io mirror. It keeps proptest's surface syntax — the `proptest!`
//! macro, `Strategy`, `any::<T>()`, ranges as strategies, `prop_oneof!`,
//! `prop_map`, `collection::vec` — over a much simpler core: each test case
//! draws its inputs from a deterministically seeded RNG (no shrinking, no
//! persisted failure files). Failures report the case number so a run can be
//! reproduced exactly by re-running the test binary.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

pub mod strategy {
    //! The strategy trait and combinators.

    use rand::rngs::SmallRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy producing one fixed (cloned) value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice between boxed alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from the given arms (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }

        /// Box one arm (used by the `prop_oneof!` expansion for inference).
        pub fn arm<S>(s: S) -> Box<dyn Strategy<Value = T>>
        where
            S: Strategy<Value = T> + 'static,
        {
            Box::new(s)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    impl<T, S: Strategy<Value = T> + ?Sized> Strategy for Box<S> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SmallRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical strategy of a type.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut SmallRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32, bool);

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            crate::sample::Index(rng.gen())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: `size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SmallRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helpers (`prop::sample`).

    /// An index into a collection of as-yet-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Resolve against a concrete collection length (must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod test_runner {
    //! Run configuration.

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Derive the RNG seed of one test case. Deterministic: case `i` of a test
/// always sees the same inputs, across runs and worker counts.
pub fn case_seed(case: u32) -> u64 {
    0x5EED_0000_0000_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Build the RNG of one test case.
pub fn case_rng(case: u32) -> SmallRng {
    use rand::SeedableRng;
    SmallRng::seed_from_u64(case_seed(case))
}

/// The public prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Module alias so `prop::sample::Index` etc. resolve via the prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Assert inside a proptest body (no shrinking: behaves like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::arm($arm)),+
        ])
    };
}

/// The proptest test-definition macro: each `fn` becomes a `#[test]` running
/// `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::case_rng(__case);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                // The case number identifies failing inputs (deterministic
                // seeds, so any failure reproduces on re-run).
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_fns! { @cfg ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        (1u32..=8, prop_oneof![Just(99u32), 0u32..=31])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u8..4, y in 1u8..=255, f in 0.0f64..=1.0) {
            prop_assert!(x < 4);
            prop_assert!((1..=255).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u8..2, any::<bool>()), 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            for (a, _b) in v {
                prop_assert!(a < 2);
            }
        }

        #[test]
        fn oneof_and_map(p in pair().prop_map(|(w, d)| (1u32 << w, d))) {
            let (w, d) = p;
            prop_assert!(w.is_power_of_two());
            prop_assert!(d == 99 || d <= 31);
        }

        #[test]
        fn index_resolves(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| rand::Rng::gen(&mut crate::case_rng(c)))
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| rand::Rng::gen(&mut crate::case_rng(c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn macro_generated_tests_run() {
        ranges_stay_in_bounds();
        vec_and_tuple_strategies();
        oneof_and_map();
        index_resolves();
    }
}
