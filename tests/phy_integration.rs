//! Cross-validation of the synthetic PHY against the MAC engine: the
//! engine's selective-retransmission dynamics must reproduce the PHY
//! model's closed forms, and channel-derived timing must flow end to end.

use plc::prelude::*;
use plc_phy::channel::ChannelModel;
use plc_phy::error::PbErrorModel;
use plc_phy::rate::PhyRate;

/// A lone station with per-PB error rate `p` needs, per frame,
/// `E[max of k geometrics]` transmissions — the engine's measured
/// attempts-per-completed-frame must match the closed form.
#[test]
fn engine_retransmissions_match_phy_closed_form() {
    for margin_db in [1.0f64, 2.0] {
        let model = PbErrorModel::with_margin(margin_db);
        let p = model.pb_error_prob();
        let report = Simulation::ieee1901(1)
            .pb_error_prob(p)
            .horizon_us(5.0e7)
            .seed(margin_db as u64)
            .run();
        let m = &report.metrics;
        assert!(m.frames_completed > 1_000, "enough frames to average");
        let measured_rounds = m.successes as f64 / m.frames_completed as f64;
        let expected = model.expected_rounds(4); // engine default: 4 PBs/MPDU
        assert!(
            (measured_rounds - expected).abs() / expected < 0.05,
            "margin {margin_db} dB (p = {p:.3}): measured {measured_rounds:.3} \
             rounds/frame vs closed form {expected:.3}"
        );
    }
}

/// Goodput degrades monotonically with the PB error rate, and the
/// degradation factor at low error rates is ≈ the delivered-PB fraction.
#[test]
fn goodput_tracks_error_rate() {
    let run = |p: f64| {
        Simulation::ieee1901(2)
            .pb_error_prob(p)
            .horizon_us(2.0e7)
            .seed(9)
            .run()
            .metrics
            .goodput()
    };
    let g0 = run(0.0);
    let g1 = run(0.05);
    let g2 = run(0.2);
    let g3 = run(0.5);
    assert!(
        g0 > g1 && g1 > g2 && g2 > g3,
        "goodput must fall: {g0} {g1} {g2} {g3}"
    );
    // Closed form: every retransmission round costs a full transmission
    // opportunity while the slot structure is unchanged, so
    // g(p)/g(0) = 1 / E[rounds per frame] = 1 / E[max of 4 geometrics].
    for (p, g) in [(0.05, g1), (0.2, g2)] {
        let expected = 1.0 / plc_phy::error::expected_rounds_for(p, 4);
        assert!(
            (g / g0 - expected).abs() < 0.02,
            "p = {p}: goodput ratio {} vs closed form {expected}",
            g / g0
        );
    }
}

/// Channel errors do not masquerade as collisions: the measured collision
/// probability is unchanged by the PB error rate (the SACK tells them
/// apart — the paper's §3.2 point about selective acknowledgments).
#[test]
fn errors_do_not_inflate_collision_probability() {
    let p_clean = Simulation::ieee1901(3)
        .horizon_us(2.0e7)
        .seed(4)
        .run()
        .collision_probability;
    let p_noisy = Simulation::ieee1901(3)
        .pb_error_prob(0.3)
        .horizon_us(2.0e7)
        .seed(4)
        .run()
        .collision_probability;
    // Clean and noisy runs consume different RNG streams, so they are
    // independent samples; allow two standard errors.
    assert!(
        (p_clean - p_noisy).abs() < 0.03,
        "collision probability must not depend on channel errors: {p_clean} vs {p_noisy}"
    );
}

/// End-to-end: synthetic channel → tone map → PHY rate → MAC timing →
/// simulation. Worse channels yield lower absolute throughput at equal
/// payload size, while the contention behaviour (collision probability)
/// stays put.
#[test]
fn channel_derived_timing_flows_into_the_mac() {
    let payload = 36 * 1024; // bytes per aggregated frame
    let run = |ch: &ChannelModel| {
        let rate = PhyRate::from_tone_map(&ch.tone_map(0.0));
        let timing = rate.mac_timing(payload).expect("live channel");
        let report = Simulation::ieee1901(3)
            .timing(timing)
            .horizon_us(3.0e7)
            .seed(5)
            .run();
        // Absolute rate = normalized share × payload bits / airtime.
        let mbps =
            report.norm_throughput * (payload as f64 * 8.0) / timing.frame_length.as_micros();
        (report.collision_probability, mbps)
    };
    let (p_short, mbps_short) = run(&ChannelModel::power_strip());
    let (p_long, mbps_long) = run(&ChannelModel::long_link());
    assert!(
        mbps_long < mbps_short * 0.8,
        "the attenuated link must be materially slower: {mbps_long:.1} vs {mbps_short:.1} Mb/s"
    );
    assert!(
        mbps_short > 20.0,
        "strip link should be tens of Mb/s: {mbps_short:.1}"
    );
    // Contention sees only slot counts, not payload rate: with timing
    // scaled, collision probability stays in the same band.
    assert!((p_short - p_long).abs() < 0.05, "{p_short} vs {p_long}");
}

/// The PHY's ROBO reasoning underpins the testbed's selective-ACK quirk:
/// at power-strip SNR, delimiters survive collisions.
#[test]
fn robo_delimiters_survive_on_the_strip() {
    use plc_phy::robo::RoboMode;
    let ch = ChannelModel::power_strip();
    let snr = ch.mean_snr_db();
    assert!(RoboMode::Mini.delimiter_decodable(snr, true));
    assert!(RoboMode::HighSpeed.delimiter_decodable(snr, true));
}
