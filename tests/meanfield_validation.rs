//! Backend cross-validation: the mean-field analytic backend must track
//! the slotted engine within the tolerance envelope documented in
//! `plc_analysis::meanfield` across a pinned (configuration × N) grid —
//! and must *deviate* where the decoupling approximation is documented
//! to degrade (small N), so the tolerance table stays honest.

use plc::prelude::*;

/// The pinned configuration axis: both 1901 priority groups plus the
/// deferral-disabled DCF-like table.
fn configs() -> Vec<(&'static str, CsmaConfig)> {
    vec![
        ("CA1", CsmaConfig::ieee1901_ca01()),
        ("CA3", CsmaConfig::ieee1901_ca23()),
        ("DC-off", CsmaConfig::dcf_like(8, 4).unwrap()),
    ]
}

/// Slotted collision probability / throughput, averaged over two
/// replications.
fn slotted(config: &CsmaConfig, n: usize) -> (f64, f64) {
    let reports = Simulation::ieee1901(n)
        .config(config.clone())
        .horizon_us(2.0e7)
        .seed(61)
        .run_repeated(2);
    let k = reports.len() as f64;
    (
        reports.iter().map(|r| r.collision_probability).sum::<f64>() / k,
        reports.iter().map(|r| r.norm_throughput).sum::<f64>() / k,
    )
}

fn meanfield(config: &CsmaConfig, n: usize) -> SimReport {
    Simulation::ieee1901(n)
        .config(config.clone())
        .backend(Backend::MeanField)
        .horizon_us(2.0e7)
        .run()
}

/// The tentpole acceptance grid: every (config, N) point agrees within
/// the documented N-dependent tolerance.
#[test]
fn backends_agree_within_documented_tolerance() {
    for (label, config) in configs() {
        for n in [5usize, 10, 50, 200] {
            let (s_gamma, s_thr) = slotted(&config, n);
            let mf = meanfield(&config, n);
            let dg = (s_gamma - mf.collision_probability).abs();
            let dt = (s_thr - mf.norm_throughput).abs();
            assert!(
                dg <= gamma_tolerance(n),
                "{label} N={n}: Δγ = {dg:.4} exceeds tolerance {:.4} \
                 (slotted {s_gamma:.4}, mean-field {:.4})",
                gamma_tolerance(n),
                mf.collision_probability
            );
            assert!(
                dt <= throughput_tolerance(n),
                "{label} N={n}: ΔS = {dt:.4} exceeds tolerance {:.4} \
                 (slotted {s_thr:.4}, mean-field {:.4})",
                throughput_tolerance(n),
                mf.norm_throughput
            );
        }
    }
}

/// At small N the decoupling approximation *documentedly* overestimates
/// collisions: synchronized post-transmission restarts anti-correlate
/// attempts, which the i.i.d. assumption misses. Pin the bias direction
/// and that the gap is real (not a lucky agreement) yet inside the
/// widened small-N tolerance.
#[test]
fn small_n_deviates_in_the_documented_direction() {
    let config = CsmaConfig::ieee1901_ca01();
    for n in [2usize, 3] {
        let (s_gamma, _) = slotted(&config, n);
        let mf = meanfield(&config, n);
        let gap = mf.collision_probability - s_gamma;
        assert!(
            gap > 0.005,
            "N={n}: decoupling should overestimate γ by a measurable margin, \
             got slotted {s_gamma:.4} vs mean-field {:.4}",
            mf.collision_probability
        );
        assert!(
            gap <= gamma_tolerance(n),
            "N={n}: even the small-N error must stay inside the documented \
             bound {:.4}, got {gap:.4}",
            gamma_tolerance(n)
        );
    }
}

/// The mean-field backend is deterministic: seeds are ignored,
/// replication short-circuits, and summaries say so.
#[test]
fn meanfield_backend_is_deterministic() {
    let sim = Simulation::ieee1901(10).backend(Backend::MeanField);
    assert!(sim.is_deterministic());
    let a = sim.clone().seed(1).run();
    let b = sim.clone().seed(2).run();
    assert_eq!(a, b);
    assert_eq!(sim.run_repeated(10).len(), 1);
    match sim.run_summary(10) {
        RunSummary::Deterministic(r) => assert_eq!(*r, a),
        RunSummary::Sampled(_) => panic!("deterministic backend must not sample"),
    }
}

/// Unsupported knobs fail with a typed error, never a panic or a silent
/// wrong answer.
#[test]
fn meanfield_backend_rejects_unmodelled_knobs() {
    let err = Simulation::ieee1901(5)
        .backend(Backend::MeanField)
        .pb_error_prob(0.2)
        .try_run()
        .expect_err("channel errors are not modelled");
    assert!(err
        .to_string()
        .contains("mean-field backend does not model"));
    let err = Simulation::ieee1901(5)
        .backend(Backend::MeanField)
        .burst(BurstPolicy::Fixed(2))
        .try_run()
        .expect_err("bursting is not modelled");
    assert!(err
        .to_string()
        .contains("mean-field backend does not model"));
}

/// Fleet-scale batch runs are byte-identical across worker counts: the
/// deterministic backend's output may not depend on scheduling.
#[test]
fn fleet_reports_are_byte_identical_across_worker_counts() {
    let sims = || -> Vec<Simulation> {
        (0..4)
            .map(|_| {
                Simulation::ieee1901(10_000)
                    .backend(Backend::MeanField)
                    .horizon_us(1.0e8)
            })
            .collect()
    };
    let serial = BatchRunner::new().workers(1).run_sims(sims());
    let pooled = BatchRunner::new().workers(4).run_sims(sims());
    let a = serde_json::to_string(&serial).unwrap();
    let b = serde_json::to_string(&pooled).unwrap();
    assert_eq!(a, b);
    // And the fleet fixed point is sane: saturated collisions, tiny τ.
    assert!(serial[0].collision_probability > 0.99);
    assert!(serial[0].norm_throughput > 0.0);
}
