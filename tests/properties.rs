//! Property-based tests over the whole stack: protocol invariants that
//! must hold for *any* valid configuration, station count and seed.

use plc::prelude::*;
use plc_analysis::model1901::stage_quantities;
use plc_core::config::DC_DISABLED;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a valid CSMA configuration with 1–5 stages, windows that are
/// powers of two in 2..=256, and deferral values in 0..=31 or disabled.
fn config_strategy() -> impl Strategy<Value = CsmaConfig> {
    let stage = (1u32..=8, prop_oneof![Just(DC_DISABLED), 0u32..=31])
        .prop_map(|(wexp, dc)| (1u32 << wexp, dc));
    proptest::collection::vec(stage, 1..=5).prop_map(|stages| {
        let cw: Vec<u32> = stages.iter().map(|&(w, _)| w).collect();
        let dc: Vec<u32> = stages.iter().map(|&(_, d)| d).collect();
        CsmaConfig::from_vectors(&cw, &dc).expect("strategy yields valid configs")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The 1901 backoff process never violates its counter invariants, no
    /// matter how the channel behaves.
    #[test]
    fn backoff_invariants_hold(cfg in config_strategy(), seed in any::<u64>(), script in proptest::collection::vec(0u8..4, 1..300)) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let m = cfg.num_stages();
        let mut b = Backoff1901::new(cfg, &mut rng);
        for &step in &script {
            if b.wants_tx() {
                if step % 2 == 0 { b.on_tx_success(&mut rng); } else { b.on_tx_failure(&mut rng); }
            } else {
                match step {
                    0 | 1 => b.on_idle_slot(&mut rng),
                    _ => b.on_busy(&mut rng),
                }
            }
            prop_assert!(b.stage() < m, "stage within table");
            prop_assert!(b.bc() < b.cw(), "BC below the window in effect");
            let snap = b.snapshot();
            prop_assert_eq!(snap.cw, b.cw());
            if let Some(dc) = snap.dc {
                prop_assert!(dc <= 1 << 16, "sane DC");
            }
        }
    }

    /// Simulation accounting is self-consistent for any station count,
    /// config and seed: time decomposes, counters balance, probabilities
    /// stay in range.
    #[test]
    fn simulation_accounting_is_consistent(
        cfg in config_strategy(),
        n in 1usize..7,
        seed in any::<u64>(),
    ) {
        let report = Simulation::ieee1901(n)
            .config(cfg)
            .horizon_us(3.0e5)
            .seed(seed)
            .run();
        let m = &report.metrics;

        // Time decomposition.
        let accounted = m.time_idle + m.time_success + m.time_collision + m.time_prs;
        prop_assert!((accounted.as_micros() - m.elapsed.as_micros()).abs() < 1e-6);

        // Counter balance.
        let per_station_succ: u64 = m.per_station.iter().map(|s| s.successes).sum();
        prop_assert_eq!(per_station_succ, m.successes);
        let per_station_coll: u64 = m.per_station.iter().map(|s| s.collisions).sum();
        prop_assert_eq!(per_station_coll, m.collided_tx);
        for s in &m.per_station {
            prop_assert_eq!(s.attempts, s.successes + s.collisions);
        }

        // Ranges.
        let p = report.collision_probability;
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(report.norm_throughput >= 0.0 && report.norm_throughput <= 1.0);
        if n == 1 {
            prop_assert_eq!(m.collision_events, 0, "a lone station cannot collide");
        }
        let j = report.jain_fairness;
        if m.successes > 0 {
            prop_assert!(j >= 1.0 / n as f64 - 1e-9 && j <= 1.0 + 1e-9);
        }
    }

    /// The analytical fixed point exists, is unique (bisection target), and
    /// produces probabilities in range for any config and N.
    #[test]
    fn fixed_point_well_defined(cfg in config_strategy(), n in 1usize..20) {
        let fp = Model1901::new(cfg.clone()).solve(n);
        prop_assert!(fp.tau > 0.0 && fp.tau <= 1.0, "tau = {}", fp.tau);
        prop_assert!((0.0..=1.0).contains(&fp.collision_probability));
        // Stage attempt probabilities are probabilities.
        for &x in &fp.stage_attempt_probs {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&x));
        }
        // Throughput from the same fixed point is a valid share.
        let s = Model1901::new(cfg).throughput(n, &MacTiming::paper_default());
        prop_assert!((0.0..=1.0).contains(&s), "S = {s}");
    }

    /// Per-stage quantities are coherent: attempt probability in (0,1],
    /// expected backoff slots below the window, both monotone in p.
    #[test]
    fn stage_quantities_coherent(
        wexp in 1u32..=8,
        d in prop_oneof![Just(DC_DISABLED), 0u32..=31],
        p in 0.0f64..=1.0,
    ) {
        let w = 1u32 << wexp;
        let q = stage_quantities(w, d, p);
        prop_assert!(q.attempt_prob > 0.0 && q.attempt_prob <= 1.0);
        prop_assert!(q.backoff_slots >= 0.0);
        prop_assert!(q.backoff_slots <= (w as f64 - 1.0) / 2.0 + 1e-9);
        // Against a slightly busier channel, both can only shrink.
        if p < 0.99 {
            let q2 = stage_quantities(w, d, (p + 0.01).min(1.0));
            prop_assert!(q2.attempt_prob <= q.attempt_prob + 1e-12);
            prop_assert!(q2.backoff_slots <= q.backoff_slots + 1e-12);
        }
    }

    /// The emulated testbed's measured counters always reconcile with the
    /// §3.2 arithmetic.
    #[test]
    fn testbed_counters_reconcile(n in 1usize..5, seed in any::<u64>()) {
        let out = CollisionExperiment {
            duration: Microseconds::from_secs(2.0),
            ..CollisionExperiment::paper(n, seed)
        }
        .run()
        .unwrap();
        let sum_a: u64 = out.per_station.iter().map(|s| s.acked).sum();
        let sum_c: u64 = out.per_station.iter().map(|s| s.collided).sum();
        prop_assert_eq!(sum_a, out.sum_acked);
        prop_assert_eq!(sum_c, out.sum_collided);
        prop_assert!(out.sum_collided <= out.sum_acked, "Cᵢ ⊆ Aᵢ by selective-ACK semantics");
        prop_assert!((0.0..=1.0).contains(&out.collision_probability));
    }
}
