//! Observability must never perturb results: observers and registries are
//! read-only with respect to the simulation and never touch its RNG
//! streams. These tests pin the strongest form of that guarantee at the
//! workspace level — the exported sweep JSON is byte-identical with and
//! without instrumentation, for one worker and for many.

use plc::prelude::*;
use plc_sim::sweep::SweepGrid;
use std::sync::Arc;

fn grid(master_seed: u64) -> SweepGrid {
    SweepGrid::new(master_seed)
        .config("ca1", Simulation::ieee1901(1).horizon_us(2.0e5))
        .config("dcf", Simulation::dcf(1).horizon_us(2.0e5))
        .stations([2, 3, 5])
        .replications(2)
}

/// Sweep JSON is byte-identical across worker counts and with observers
/// plus a live registry attached — while the observer demonstrably runs.
#[test]
fn sweep_json_is_byte_identical_with_observers_and_any_worker_count() {
    let baseline = grid(0x0B5).workers(1).run().to_json();

    let parallel = grid(0x0B5).workers(4).run().to_json();
    assert_eq!(baseline, parallel, "worker count changed sweep JSON");

    let collector = Arc::new(parking_lot::Mutex::new(CollectingObserver::default()));
    let registry = Registry::new();
    let observed = grid(0x0B5)
        .workers(4)
        .observer(collector.clone())
        .registry(&registry)
        .run()
        .to_json();
    assert_eq!(baseline, observed, "instrumentation changed sweep JSON");

    // The instrumentation genuinely ran: every point reported progress and
    // the registry saw engine steps.
    // Fixed-replication sweeps report progress per (point, replication)
    // cell: 2 configs × 3 N × 2 replications = 12 events.
    let progress = &collector.lock().progress;
    assert_eq!(progress.len(), 12, "one progress event per sweep cell");
    let last = progress.last().unwrap();
    assert_eq!((last.completed, last.total), (12, 12));
    let cells = registry.snapshot().counter("sweep.cells");
    assert_eq!(cells, Some(12), "registry missed sweep cells");
}

/// A single simulation run is unchanged by an engine observer and an
/// enabled registry (same report fields to the last bit).
#[test]
fn engine_observer_does_not_perturb_single_run() {
    let sim = Simulation::ieee1901(4).horizon_us(5.0e5).seed(42);
    let plain = sim.run();

    let collector = Arc::new(parking_lot::Mutex::new(CollectingObserver::default()));
    let registry = Registry::new();
    let observed = sim
        .clone()
        .observer(collector.clone(), 100)
        .registry(&registry)
        .run();

    assert_eq!(plain.metrics, observed.metrics, "observer changed metrics");
    assert!(
        !collector.lock().engine.is_empty(),
        "engine observer never fired"
    );
}
