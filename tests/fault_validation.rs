//! Workspace-level pins of ISSUE 4's determinism contract: for a fixed
//! `(master_seed, FaultPlan)` the whole measurement stack — fault-injected
//! testbed runs and panic-contained sweeps — produces byte-identical JSON
//! regardless of worker count or attached observers. Fault injection is
//! allowed to *change* results (that is its job); it is never allowed to
//! make them *irreproducible*.

use plc::prelude::*;
use plc_faults::{FaultPlan, RetryPolicy};
use plc_sim::sweep::SweepGrid;
use plc_testbed::CollisionExperiment;

/// The chaos plan used throughout: lossy bus, one brownout, 32-bit
/// counters.
fn plan(duration_us: f64) -> FaultPlan {
    FaultPlan::builder()
        .seed(0xFA17)
        .mme_loss(0.2)
        .mme_delay(0.1, 400.0)
        .device_reset_at(0, duration_us * 0.5)
        .counter_wrap_u32()
        .build()
}

fn chaos_experiment(seed: u64) -> CollisionExperiment {
    let mut exp = CollisionExperiment::quick(3, seed);
    exp.duration = Microseconds::from_secs(3.0);
    exp.faults = Some(plan(exp.duration.as_micros()));
    exp.checkpoints = 6;
    exp.retry = RetryPolicy::with_attempts(32);
    exp
}

/// Same seed + same plan → byte-identical outcome JSON, with or without
/// an observability registry attached.
#[test]
fn chaos_experiment_is_deterministic_and_observer_independent() {
    let exp = chaos_experiment(41);
    let plain = serde_json::to_string(&exp.run().unwrap()).unwrap();
    let again = serde_json::to_string(&exp.run().unwrap()).unwrap();
    assert_eq!(plain, again, "same (seed, plan) must reproduce exactly");

    let registry = Registry::new();
    let observed = serde_json::to_string(&exp.run_observed(&registry).unwrap()).unwrap();
    assert_eq!(plain, observed, "observation must not perturb the outcome");
    // ... but the registry really was fed by the fault layer.
    let snap = registry.snapshot();
    assert!(snap.counter("faults.mme.lost_request").unwrap_or(0) > 0);
    assert!(snap.counter("testbed.mme.retries").unwrap_or(0) > 0);

    // A different fault seed genuinely changes the transport schedule
    // without changing the stitched measurement's medium-side inputs.
    let mut other = chaos_experiment(41);
    other.faults = Some(
        FaultPlan::builder()
            .seed(0xBEEF)
            .mme_loss(0.2)
            .device_reset_at(0, other.duration.as_micros() * 0.5)
            .counter_wrap_u32()
            .build(),
    );
    let outcome = other.run().unwrap();
    assert!(
        outcome.discontinuities > 0,
        "the reset must still be stitched under the other plan"
    );
}

/// Sweeps with noise bursts injected into the engine are byte-identical
/// across worker counts and unaffected by progress observers.
#[test]
fn noisy_sweep_json_is_worker_count_and_observer_invariant() {
    let noisy = |seed: u64| {
        Simulation::ieee1901(1)
            .horizon_us(2.0e6)
            .seed(seed)
            .noise([plc_faults::NoiseBurst {
                start_us: 5.0e5,
                duration_us: 2.0e5,
            }])
    };
    let grid = |workers: usize| {
        SweepGrid::new(0xFA17)
            .config("noisy", noisy(1))
            .stations([2, 4, 6])
            .replications(3)
            .workers(workers)
    };
    let serial = grid(1).run().to_json();
    let fanned = grid(4).run().to_json();
    assert_eq!(serial, fanned, "worker count must not leak into results");

    let progress = shared(CollectingObserver::default());
    let observed = grid(4).observer(progress).run().to_json();
    assert_eq!(serial, observed, "observers must not leak into results");
}

/// A panicking point is contained as a `Failed` record while every other
/// point matches the fault-free sweep byte-for-byte — at the workspace
/// level, through the facade's public API.
#[test]
fn sweep_panic_containment_leaves_other_points_untouched() {
    let good = Simulation::ieee1901(1).horizon_us(1.0e6).seed(9);
    let mut bad_timing = MacTiming::paper_default();
    bad_timing.slot = Microseconds(-1.0);
    let bad = Simulation::ieee1901(1)
        .horizon_us(1.0e6)
        .seed(9)
        .timing(bad_timing);

    let mixed = SweepGrid::new(7)
        .config("good", good.clone())
        .config("bad", bad)
        .stations([2, 3])
        .replications(2)
        .run();
    let clean = SweepGrid::new(7)
        .config("good", good)
        .stations([2, 3])
        .replications(2)
        .run();

    let mut failures = 0;
    for point in &mixed.points {
        if point.config() == "bad" {
            let reason = point.failure().expect("bad config must fail");
            assert!(reason.contains("MacTiming"), "reason: {reason}");
            failures += 1;
        } else {
            let twin = clean.point("good", point.n()).expect("clean twin exists");
            assert_eq!(
                serde_json::to_string(point).unwrap(),
                serde_json::to_string(twin).unwrap(),
                "healthy points must be unaffected by the failing config"
            );
        }
    }
    assert_eq!(failures, 2, "every bad point is a contained failure");
}
