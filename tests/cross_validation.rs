//! Cross-crate validation: the three independent implementations of the
//! 1901 MAC — reference simulator port, modular engine, analytical model —
//! and the emulated testbed must all tell the same story.

use plc::prelude::*;

/// All four methods agree on the collision probability for N = 2…5.
#[test]
fn four_way_agreement_on_collision_probability() {
    let model = CoupledModel::default_ca1();
    for n in [2usize, 3, 5] {
        let reference = PaperSim::with_n_and_time(n, 2.0e7)
            .run(11)
            .expect("valid inputs")
            .collision_pr;
        let engine = Simulation::ieee1901(n)
            .horizon_us(2.0e7)
            .seed(11)
            .run()
            .collision_probability;
        let analysis = model.solve(n).collision_probability;
        let testbed = CollisionExperiment::quick(n, 11)
            .run()
            .expect("testbed run")
            .collision_probability;

        let spread = [reference, engine, analysis, testbed];
        let lo = spread.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = spread.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo < 0.025,
            "N={n}: methods disagree — reference {reference:.4}, engine {engine:.4}, \
             analysis {analysis:.4}, testbed {testbed:.4}"
        );
    }
}

/// The engine under paper-default knobs matches the reference simulator's
/// throughput too, not just its collision probability.
#[test]
fn engine_and_reference_agree_on_throughput() {
    for n in [1usize, 4] {
        let reference = PaperSim::with_n_and_time(n, 2.0e7).run(3).expect("valid");
        let engine = Simulation::ieee1901(n).horizon_us(2.0e7).seed(3).run();
        assert!(
            (engine.norm_throughput - reference.norm_throughput).abs() < 0.02,
            "N={n}: engine {} vs reference {}",
            engine.norm_throughput,
            reference.norm_throughput
        );
    }
}

/// The paper's headline mechanism effect, shown end to end: with matched
/// windows, enabling the deferral counter lowers the collision probability
/// in the simulator AND the analytical model predicts the same gap.
#[test]
fn deferral_counter_effect_is_consistent() {
    let n = 5;
    let horizon = 2.0e7;
    let dcf_cfg = CsmaConfig::dcf_like(8, 4).unwrap();

    let sim_with = Simulation::ieee1901(n).horizon_us(horizon).seed(2).run();
    let sim_without = Simulation::dcf(n)
        .config(dcf_cfg.clone())
        .horizon_us(horizon)
        .seed(2)
        .run();
    let sim_gap = sim_without.collision_probability - sim_with.collision_probability;
    assert!(sim_gap > 0.02, "simulated deferral benefit: {sim_gap}");

    let model_with = CoupledModel::default_ca1().solve(n).collision_probability;
    let model_without = BianchiModel::with_1901_windows()
        .solve(n)
        .collision_probability;
    let model_gap = model_without - model_with;
    assert!(model_gap > 0.02, "modelled deferral benefit: {model_gap}");

    assert!(
        (sim_gap - model_gap).abs() < 0.05,
        "simulation gap {sim_gap:.3} and model gap {model_gap:.3} should agree"
    );
}

/// Determinism across the whole stack: same seeds → identical outputs,
/// different seeds → different outputs.
#[test]
fn end_to_end_determinism() {
    let run = |seed: u64| {
        let r = Simulation::ieee1901(3).horizon_us(5.0e6).seed(seed).run();
        let t = CollisionExperiment::quick(3, seed).run().unwrap();
        (r, t)
    };
    let (r1, t1) = run(77);
    let (r2, t2) = run(77);
    assert_eq!(r1, r2);
    assert_eq!(t1, t2);
    let (r3, t3) = run(78);
    assert_ne!(r1, r3);
    assert_ne!(t1, t3);
}

/// Table 2's qualitative signature on the emulated testbed: ΣAᵢ includes
/// collided frames, so it *grows* with N rather than collapsing.
#[test]
fn acked_counter_includes_collisions_like_the_paper() {
    let a: Vec<u64> = [1usize, 4, 7]
        .iter()
        .map(|&n| CollisionExperiment::quick(n, 5).run().unwrap().sum_acked)
        .collect();
    assert!(
        a[1] > a[0],
        "ΣAᵢ(4) = {} must exceed ΣAᵢ(1) = {}",
        a[1],
        a[0]
    );
    assert!(
        a[2] > a[1],
        "ΣAᵢ(7) = {} must exceed ΣAᵢ(4) = {}",
        a[2],
        a[1]
    );
}
