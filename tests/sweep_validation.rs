//! Statistical cross-validation of the engine against the analytical
//! model, replacing single-seed point assertions with CI-based ones.
//!
//! Cano & Malone ("On Efficiency and Validity of Previous Homeplug MAC
//! Performance Analysis") show that simulator-vs-analysis conclusions are
//! only meaningful with replicated runs and confidence intervals; a single
//! seed can land anywhere in the replication distribution. These tests
//! sweep N with 5 decorrelated replications per point through
//! `plc_sim::sweep` and compare the replication mean, not one draw, with
//! the coupled fixed point.

use plc::prelude::*;
use plc_sim::sweep::SweepGrid;

/// Engine collision probability agrees with the `CoupledModel` prediction
/// within ± 3 standard errors of the 5-replication mean at every swept N.
#[test]
fn engine_mean_collision_probability_tracks_coupled_model() {
    let model = CoupledModel::default_ca1();
    let results = SweepGrid::new(0xC0117)
        .config("ca1", Simulation::ieee1901(1).horizon_us(1.0e7))
        .stations([2, 5, 10, 15])
        .replications(5)
        .run();

    for point in &results.points {
        let predicted = model.solve(point.n()).collision_probability;
        let summary = &point
            .summary()
            .expect("fault-free validation sweep cannot fail")
            .collision_probability;
        let std_err = summary.std_dev / (summary.count as f64).sqrt();
        eprintln!(
            "N={:2}: engine {:.5} ± {:.5} (se), model {:.5}, |Δ|/se = {:.2}",
            point.n(),
            summary.mean,
            std_err,
            predicted,
            (summary.mean - predicted).abs() / std_err
        );
        assert!(std_err > 0.0, "replications collapsed at N={}", point.n());
        assert!(
            (summary.mean - predicted).abs() <= 3.0 * std_err,
            "N={}: engine mean {:.5} outside model {:.5} ± 3·se ({:.5})",
            point.n(),
            summary.mean,
            predicted,
            3.0 * std_err
        );
    }
}
