//! Online and batch summary statistics.

use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance: numerically stable,
/// one pass, O(1) memory. Used by the simulator for inter-success delays
/// and by the harness for averaging repeated tests.
///
/// # Examples
///
/// ```
/// use plc_stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.5);
/// assert!((w.variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `NaN` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; `NaN` with fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        self.std_dev() / (self.n as f64).sqrt()
    }

    /// Smallest observation; `+∞` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Finish into a [`Summary`] with a 95% confidence half-width.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
            ci95_half_width: self.ci_half_width(0.95),
        }
    }

    /// Half-width of the `level` confidence interval for the mean, using a
    /// Student-t quantile (Cornish-Fisher style approximation adequate for
    /// reporting; exact for large n).
    pub fn ci_half_width(&self, level: f64) -> f64 {
        if self.n < 2 {
            return f64::NAN;
        }
        let t = t_quantile(level, (self.n - 1) as f64);
        t * self.std_err()
    }
}

/// Two-sided Student-t quantile for confidence `level` (e.g. 0.95) and
/// `df` degrees of freedom.
///
/// Uses the normal quantile plus the first two terms of the Cornish–Fisher
/// expansion in 1/df; the error is below 2% for df ≥ 4 and below 0.3% for
/// df ≥ 9, which is ample for experiment error bars.
pub fn t_quantile(level: f64, df: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&level),
        "confidence level must be in (0,1)"
    );
    assert!(df >= 1.0);
    let p = 0.5 + level / 2.0; // one-sided probability
    let z = normal_quantile(p);
    // Cornish–Fisher correction terms for the t distribution.
    let z3 = z * z * z;
    let z5 = z3 * z * z;
    z + (z3 + z) / (4.0 * df) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * df * df)
}

/// Standard normal quantile via the Acklam rational approximation
/// (|ε| < 1.15e−9 over the full open interval).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1)");
    // Coefficients for the central and tail regions.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// A finished batch summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Half-width of the 95% confidence interval for the mean.
    pub ci95_half_width: f64,
}

impl Summary {
    /// Summarize a slice in one pass.
    pub fn of(values: &[f64]) -> Summary {
        let mut w = Welford::new();
        for &v in values {
            w.push(v);
        }
        w.summary()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance of the classic dataset is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let w = Welford::new();
        assert!(w.mean().is_nan());
        assert!(w.variance().is_nan());
        let mut w1 = Welford::new();
        w1.push(3.5);
        assert_eq!(w1.mean(), 3.5);
        assert!(w1.variance().is_nan());
        assert!(w1.ci_half_width(0.95).is_nan());
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn normal_quantile_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        // Tail region
        assert!((normal_quantile(0.001) + 3.090232).abs() < 1e-5);
        assert!((normal_quantile(0.999) - 3.090232).abs() < 1e-5);
    }

    #[test]
    #[should_panic]
    fn normal_quantile_rejects_bounds() {
        normal_quantile(0.0);
    }

    #[test]
    fn t_quantile_approximates_tables() {
        // Known two-sided 95% t critical values.
        assert!((t_quantile(0.95, 9.0) - 2.262).abs() < 0.01, "df=9");
        assert!((t_quantile(0.95, 30.0) - 2.042).abs() < 0.005, "df=30");
        assert!((t_quantile(0.95, 1e6) - 1.960).abs() < 0.001, "df→∞");
        assert!((t_quantile(0.99, 9.0) - 3.250).abs() < 0.05, "99%, df=9");
    }

    #[test]
    fn summary_of_slice() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert!(s.ci95_half_width > 0.0);
        // CI half width = t(0.95, 4) * sd/sqrt(5) ≈ 2.776 * 0.7071 ≈ 1.963;
        // the Cornish–Fisher t approximation is ~2% low at df = 4.
        assert!((s.ci95_half_width - 1.963).abs() < 0.05);
    }

    #[test]
    fn ci_shrinks_with_more_data() {
        let mut small = Welford::new();
        let mut big = Welford::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            big.push((i % 3) as f64);
        }
        assert!(big.ci_half_width(0.95) < small.ci_half_width(0.95));
    }
}
