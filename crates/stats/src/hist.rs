//! Integer-bucket histograms.
//!
//! Used for the burst-size frequency measurement (§3.1 of the report: "we
//! measured the frequency of all the possible burst sizes") and for
//! inter-transmission count distributions in the fairness study.

use serde::{Deserialize, Serialize};

/// A histogram over non-negative integer values with dense buckets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Record `n` observations of `value`.
    pub fn record_n(&mut self, value: usize, n: u64) {
        if n == 0 {
            return;
        }
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += n;
        self.total += n;
    }

    /// Count in bucket `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Relative frequency of `value` (`NaN` when empty).
    pub fn frequency(&self, value: usize) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Mean of the distribution (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as f64 * c as f64)
            .sum();
        sum / self.total as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by cumulative count; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<usize> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(v);
            }
        }
        Some(self.counts.len().saturating_sub(1))
    }

    /// The most frequent value; ties break toward the smaller value.
    /// `None` when empty.
    pub fn mode(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| v)
    }

    /// Iterate over `(value, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v, c))
    }

    /// Largest observed value, `None` when empty.
    pub fn max_value(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            self.record_n(v, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut h = Histogram::new();
        h.record(2);
        h.record(2);
        h.record(5);
        assert_eq!(h.count(2), 2);
        assert_eq!(h.count(5), 1);
        assert_eq!(h.count(0), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 3);
        assert!((h.frequency(2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.max_value(), Some(5));
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert!(h.frequency(0).is_nan());
        assert!(h.mean().is_nan());
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mode(), None);
        assert_eq!(h.max_value(), None);
        assert_eq!(h.iter().count(), 0);
    }

    #[test]
    fn mean_and_mode() {
        let mut h = Histogram::new();
        h.record_n(1, 3);
        h.record_n(2, 6);
        h.record_n(4, 1);
        // mean = (3 + 12 + 4) / 10
        assert!((h.mean() - 1.9).abs() < 1e-12);
        assert_eq!(h.mode(), Some(2));
    }

    #[test]
    fn mode_tie_breaks_low() {
        let mut h = Histogram::new();
        h.record_n(1, 5);
        h.record_n(3, 5);
        assert_eq!(h.mode(), Some(1));
    }

    #[test]
    fn quantiles() {
        let mut h = Histogram::new();
        for v in 0..10 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(4));
        assert_eq!(h.quantile(1.0), Some(9));
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(1);
        b.record(2);
        a.merge(&b);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(2), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn record_n_zero_is_noop() {
        let mut h = Histogram::new();
        h.record_n(7, 0);
        assert_eq!(h.total(), 0);
        assert_eq!(h.max_value(), None);
    }

    #[test]
    fn iter_skips_gaps() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(4);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs, vec![(0, 1), (4, 1)]);
    }
}
