//! Streaming quantile estimation (the P² algorithm).
//!
//! Delay distributions need tail quantiles over millions of observations;
//! storing and sorting them is wasteful inside long simulations. Jain &
//! Chlamtac's P² algorithm (CACM 1985) tracks a single quantile with five
//! markers and O(1) work per observation, with parabolic interpolation of
//! marker heights — plenty accurate for p50–p99 experiment reporting.

use serde::{Deserialize, Serialize};

/// Streaming estimator of one quantile via the P² algorithm.
///
/// # Examples
///
/// ```
/// use plc_stats::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// for k in 0..10_000 {
///     p95.push((k % 100) as f64);
/// }
/// assert!((p95.estimate() - 94.0).abs() < 2.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P2Quantile {
    /// Target quantile in (0, 1).
    q: f64,
    /// Marker heights.
    heights: [f64; 5],
    /// Marker positions (1-based observation ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired-position increments per observation.
    increments: [f64; 5],
    /// Observations seen.
    count: u64,
    /// First five observations, collected before the markers initialize.
    warmup: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `q` ∈ (0, 1).
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            warmup: Vec::with_capacity(5),
        }
    }

    /// The target quantile.
    pub fn quantile(&self) -> f64 {
        self.q
    }

    /// Observations seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if self.warmup.len() < 5 {
            // Insert in sorted order so estimate() indexes directly and
            // marker initialization needs no final sort.
            let pos = self.warmup.partition_point(|&w| w <= x);
            self.warmup.insert(pos, x);
            if self.warmup.len() == 5 {
                for (h, &w) in self.heights.iter_mut().zip(&self.warmup) {
                    *h = w;
                }
            }
            return;
        }

        // Find the cell and update extreme heights. The interior scan
        // takes the *largest* marker not exceeding x: with duplicate
        // heights (constant or near-constant streams) the textbook
        // half-open test `h[i] ≤ x < h[i+1]` can match nothing, and a
        // first-match scan then silently misfiles x into cell 0.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in (0..4).rev() {
                if self.heights[i] <= x {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(&self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.heights[i] = new_height;
                self.positions[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (qm, qi, qp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, ni, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        qi + s / (np - nm)
            * ((ni - nm + s) * (qp - qi) / (np - ni) + (np - ni - s) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + s * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Absorb another estimator of the **same quantile** (e.g. one per
    /// worker shard in a batch run).
    ///
    /// P² keeps five markers, not the observations, so an exact merge is
    /// impossible. This merge is the standard weighted-marker combine:
    /// the extreme markers take the true min/max, the three interior
    /// marker heights become count-weighted averages, interior marker
    /// positions (ranks) add, and the desired positions are recomputed
    /// for the combined count. If either side is still in warmup
    /// (fewer than five observations), its buffered values are simply
    /// replayed into the other side, which *is* exact.
    ///
    /// Determinism: merging is pairwise symmetric (IEEE addition and
    /// multiplication commute), but **not associative** — merging three
    /// or more shards is pinned to the merge order. Callers that need
    /// reproducible output must merge in a fixed order (the batch runner
    /// merges in shard-index order).
    ///
    /// # Panics
    ///
    /// If the two estimators target different quantiles.
    pub fn merge_from(&mut self, other: &Self) {
        assert!(
            self.q == other.q,
            "cannot merge estimators of different quantiles ({} vs {})",
            self.q,
            other.q
        );
        if other.count == 0 {
            return;
        }
        // Either side still in warmup: replay its buffered observations
        // into the full (or larger) side — exact, no approximation.
        if other.warmup.len() < 5 {
            for &x in &other.warmup {
                self.push(x);
            }
            return;
        }
        if self.warmup.len() < 5 {
            let mine = std::mem::take(&mut self.warmup);
            *self = other.clone();
            for x in mine {
                self.push(x);
            }
            return;
        }
        let (wa, wb) = (self.count as f64, other.count as f64);
        let total = self.count + other.count;
        self.heights[0] = self.heights[0].min(other.heights[0]);
        self.heights[4] = self.heights[4].max(other.heights[4]);
        for i in 1..4 {
            self.heights[i] = (wa * self.heights[i] + wb * other.heights[i]) / (wa + wb);
        }
        // positions[0] is always rank 1 and positions[4] always the count;
        // interior ranks add (each approximates the number of observations
        // at or below its height).
        self.positions[4] = total as f64;
        for i in 1..4 {
            self.positions[i] += other.positions[i];
        }
        // Desired positions are a pure function of q and the count:
        // initial value plus (count − 5) increments.
        let initial = [
            1.0,
            1.0 + 2.0 * self.q,
            1.0 + 4.0 * self.q,
            3.0 + 2.0 * self.q,
            5.0,
        ];
        for (i, init) in initial.iter().enumerate() {
            self.desired[i] = init + (total - 5) as f64 * self.increments[i];
        }
        self.count = total;
    }

    /// Current estimate; falls back to the exact small-sample quantile
    /// while fewer than five observations have arrived. `NaN` when empty.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        if self.warmup.len() < 5 {
            // The warmup buffer is kept sorted on insert; interpolate
            // linearly between the bracketing ranks (type-7) instead of
            // the biased nearest-rank rule.
            let h = (self.warmup.len() as f64 - 1.0) * self.q;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            return self.warmup[lo] + (h - lo as f64) * (self.warmup[hi] - self.warmup[lo]);
        }
        self.heights[2]
    }
}

/// Quantile of a tabulated CDF: the smallest `x` whose cumulative
/// probability reaches `q`.
///
/// `points` is a non-decreasing list of `(x, P(X ≤ x))` pairs, the shape
/// analytic delay distributions come in (one point per slot count).
/// Returns `None` when the tabulated mass never reaches `q` — a
/// truncated distribution whose tail lies beyond the table.
///
/// ```
/// use plc_stats::quantile_from_cdf;
///
/// let cdf = [(1.0, 0.2), (2.0, 0.7), (3.0, 0.95)];
/// assert_eq!(quantile_from_cdf(&cdf, 0.5), Some(2.0));
/// assert_eq!(quantile_from_cdf(&cdf, 0.99), None);
/// ```
///
/// # Panics
///
/// If `q` is outside `(0, 1)`.
pub fn quantile_from_cdf(points: &[(f64, f64)], q: f64) -> Option<f64> {
    assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1), got {q}");
    points.iter().find(|&&(_, cdf)| cdf >= q).map(|&(x, _)| x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(mut v: Vec<f64>, q: f64) -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[((v.len() as f64 - 1.0) * q).round() as usize]
    }

    #[test]
    fn uniform_median() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut p2 = P2Quantile::new(0.5);
        for _ in 0..100_000 {
            p2.push(rng.gen::<f64>());
        }
        assert!(
            (p2.estimate() - 0.5).abs() < 0.01,
            "median {}",
            p2.estimate()
        );
    }

    #[test]
    fn exponential_p95() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut p2 = P2Quantile::new(0.95);
        let mut all = Vec::new();
        for _ in 0..200_000 {
            let u: f64 = rng.gen();
            let x = -(1.0f64 - u).ln();
            p2.push(x);
            all.push(x);
        }
        let exact = exact_quantile(all, 0.95);
        // True p95 of Exp(1) is ln(20) ≈ 2.9957.
        assert!((exact - 2.9957).abs() < 0.05);
        assert!(
            (p2.estimate() - exact).abs() / exact < 0.03,
            "P² {} vs exact {exact}",
            p2.estimate()
        );
    }

    #[test]
    fn small_samples_are_exact() {
        let mut p2 = P2Quantile::new(0.5);
        assert!(p2.estimate().is_nan());
        p2.push(3.0);
        assert_eq!(p2.estimate(), 3.0);
        p2.push(1.0);
        p2.push(2.0);
        assert_eq!(p2.estimate(), 2.0);
        assert_eq!(p2.count(), 3);
    }

    #[test]
    fn heavy_tail_p99() {
        // Pareto-ish: x = u^{-1/2}; p99 = 10.
        let mut rng = SmallRng::seed_from_u64(3);
        let mut p2 = P2Quantile::new(0.99);
        for _ in 0..300_000 {
            let u: f64 = rng.gen_range(1e-9..1.0);
            p2.push(u.powf(-0.5));
        }
        let est = p2.estimate();
        assert!((est - 10.0).abs() / 10.0 < 0.1, "p99 {est}");
    }

    #[test]
    fn constant_stream() {
        let mut p2 = P2Quantile::new(0.9);
        for _ in 0..1000 {
            p2.push(7.0);
        }
        assert_eq!(p2.estimate(), 7.0);
    }

    #[test]
    fn small_sample_interpolates_between_ranks() {
        // Regression for the nearest-rank bias: the old estimate() rounded
        // (n−1)·q to a rank, so the 2-sample median reported 3.0.
        let mut p2 = P2Quantile::new(0.5);
        p2.push(1.0);
        p2.push(3.0);
        assert_eq!(p2.estimate(), 2.0);
        // 4-sample p25 lands a quarter of the way from rank 0 to rank 1.
        let mut p25 = P2Quantile::new(0.25);
        for x in [4.0, 1.0, 3.0, 2.0] {
            p25.push(x);
        }
        assert!((p25.estimate() - 1.75).abs() < 1e-12, "{}", p25.estimate());
    }

    #[test]
    fn near_constant_stream_duplicate_heights() {
        // Regression for duplicate-height cell selection: a stream that is
        // almost all one value collapses several marker heights onto it,
        // and the old first-match scan misfiled in-range observations into
        // cell 0, dragging the estimate toward the minimum.
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..50_000 {
            let x = if rng.gen::<f64>() < 0.98 {
                7.0
            } else {
                7.0 + rng.gen::<f64>()
            };
            p2.push(x);
        }
        let est = p2.estimate();
        assert!((est - 7.0).abs() < 0.05, "median of ~98% sevens: {est}");
    }

    #[test]
    fn two_point_stream_duplicate_heights() {
        // Bernoulli stream: marker heights are all 0s and 1s (maximal
        // duplication). The median of a fair coin must stay inside [0, 1].
        let mut p2 = P2Quantile::new(0.5);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20_000 {
            p2.push(if rng.gen::<bool>() { 1.0 } else { 0.0 });
        }
        let est = p2.estimate();
        assert!((0.0..=1.0).contains(&est), "median {est}");
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_bad_quantile() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn merge_of_shards_tracks_exact_quantile() {
        // Four disjoint shards of one exponential stream, merged in
        // shard order, must land near the exact quantile of the union.
        let mut rng = SmallRng::seed_from_u64(11);
        let mut all = Vec::new();
        let mut shards: Vec<P2Quantile> = (0..4).map(|_| P2Quantile::new(0.95)).collect();
        for (k, shard) in shards.iter_mut().enumerate() {
            for _ in 0..50_000 + 7 * k {
                let u: f64 = rng.gen();
                let x = -(1.0f64 - u).ln();
                shard.push(x);
                all.push(x);
            }
        }
        let mut merged = shards[0].clone();
        for s in &shards[1..] {
            merged.merge_from(s);
        }
        assert_eq!(merged.count(), all.len() as u64);
        let exact = exact_quantile(all, 0.95);
        let est = merged.estimate();
        assert!(
            (est - exact).abs() / exact < 0.05,
            "merged {est} vs {exact}"
        );
    }

    #[test]
    fn merge_replays_warmup_sides_exactly() {
        // A shard still in warmup merges by replaying its observations —
        // the result is bit-identical to pushing them directly.
        let mut big = P2Quantile::new(0.5);
        let mut rng = SmallRng::seed_from_u64(12);
        for _ in 0..1000 {
            big.push(rng.gen::<f64>());
        }
        let mut expect = big.clone();
        let mut small = P2Quantile::new(0.5);
        for x in [0.25, 0.5, 0.75] {
            small.push(x);
        }
        // Warmup values replay in sorted-buffer order.
        for x in [0.25, 0.5, 0.75] {
            expect.push(x);
        }
        big.merge_from(&small);
        assert_eq!(big, expect);
        // And the mirror: warmup self absorbing a full other.
        let mut tiny = P2Quantile::new(0.5);
        tiny.push(0.5);
        tiny.merge_from(&expect);
        assert_eq!(tiny.count(), expect.count() + 1);
        assert!((tiny.estimate() - expect.estimate()).abs() < 0.1);
    }

    #[test]
    fn merge_is_pairwise_symmetric_and_deterministic() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        for _ in 0..10_000 {
            a.push(rng.gen::<f64>());
            b.push(2.0 * rng.gen::<f64>());
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        // Pairwise merge commutes (IEEE + and × are commutative)…
        assert_eq!(ab.estimate().to_bits(), ba.estimate().to_bits());
        assert_eq!(ab.count(), ba.count());
        // …and repeating the same merge is bit-reproducible.
        let mut again = a.clone();
        again.merge_from(&b);
        assert_eq!(ab, again);
        // Merging an empty estimator is a no-op.
        let before = ab.clone();
        ab.merge_from(&P2Quantile::new(0.9));
        assert_eq!(ab, before);
    }

    #[test]
    #[should_panic(expected = "different quantiles")]
    fn merge_rejects_mismatched_quantiles() {
        let mut a = P2Quantile::new(0.5);
        a.merge_from(&P2Quantile::new(0.9));
    }

    #[test]
    fn cdf_quantile_lookup() {
        let cdf = [(1.0, 0.25), (2.0, 0.5), (3.0, 0.75), (4.0, 1.0)];
        assert_eq!(quantile_from_cdf(&cdf, 0.1), Some(1.0));
        assert_eq!(quantile_from_cdf(&cdf, 0.25), Some(1.0));
        assert_eq!(quantile_from_cdf(&cdf, 0.26), Some(2.0));
        assert_eq!(quantile_from_cdf(&cdf, 0.999), Some(4.0));
        assert_eq!(quantile_from_cdf(&[], 0.5), None);
        assert_eq!(quantile_from_cdf(&[(1.0, 0.4)], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn cdf_quantile_rejects_endpoint() {
        quantile_from_cdf(&[(1.0, 1.0)], 1.0);
    }
}
