//! # plc-stats — statistics utilities for the experiment harness
//!
//! Small, dependency-free building blocks used across the workspace:
//!
//! * [`summary::Welford`] — online mean/variance, the backbone of every
//!   repeated-test average in the evaluation (the paper averages 10 tests
//!   per point in Figure 2).
//! * [`summary::Summary`] — batch summaries with Student-t confidence
//!   intervals.
//! * [`fairness`] — Jain's fairness index and windowed short-term fairness
//!   over success traces, used for the fairness study the paper points to
//!   (its prior work \[4\]) and our extension experiment E4.
//! * [`hist::Histogram`] — integer-bucket histograms (burst sizes,
//!   inter-transmission counts).
//! * [`quantile::P2Quantile`] — streaming quantile estimation (P²) for
//!   delay tails without storing traces.
//! * [`table::Table`] — fixed-width text tables so every experiment prints
//!   rows the way the paper's tables read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fairness;
pub mod hist;
pub mod quantile;
pub mod summary;
pub mod table;

pub use fairness::{jain_index, windowed_jain};
pub use hist::Histogram;
pub use quantile::{quantile_from_cdf, P2Quantile};
pub use summary::{Summary, Welford};
pub use table::Table;
