//! Fixed-width text tables for experiment output.
//!
//! Every experiment binary prints its results as aligned rows (the way the
//! paper's tables read), plus an optional CSV form for plotting. No
//! external dependencies; column widths adapt to content.

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple text table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers; all columns default to
    /// right alignment except the first.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let mut aligns = vec![Align::Right; headers.len()];
        if let Some(first) = aligns.first_mut() {
            *first = Align::Left;
        }
        Table {
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments (must match the header count).
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(
            aligns.len(),
            self.headers.len(),
            "alignment count must match headers"
        );
        self.aligns = aligns;
        self
    }

    /// Append a row; the cell count must match the header count.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "cell count must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with a header underline and two-space column gaps.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        if i + 1 < ncols {
                            line.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(cell);
                    }
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths, &self.aligns));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Format a probability/ratio with 4 decimal places.
pub fn fmt_prob(p: f64) -> String {
    if p.is_nan() {
        "-".to_string()
    } else {
        format!("{p:.4}")
    }
}

/// Format a float in scientific notation like the paper's Table 2
/// (e.g. `1.6222e5`).
pub fn fmt_sci(x: f64) -> String {
    if x == 0.0 {
        return "0".to_string();
    }
    let exp = x.abs().log10().floor() as i32;
    let mant = x / 10f64.powi(exp);
    format!("{mant:.4}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["N", "collision p"]);
        t.row(vec!["1", "0.0002"]);
        t.row(vec!["7", "0.2670"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("N"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numbers right-aligned under the header.
        assert!(lines[2].ends_with("0.0002"));
        assert!(lines[3].ends_with("0.2670"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn csv_output() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn row_length_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    #[should_panic(expected = "alignment count")]
    fn align_length_checked() {
        Table::new(vec!["a", "b"]).with_aligns(vec![Align::Left]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new(vec!["x", "y"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1", "abc"]);
        let s = t.render();
        let line = s.lines().nth(2).unwrap();
        assert!(line.starts_with("1"));
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_prob(0.12345), "0.1235");
        assert_eq!(fmt_prob(f64::NAN), "-");
        assert_eq!(fmt_sci(162220.0), "1.6222e5");
        assert_eq!(fmt_sci(25.0), "2.5000e1");
        assert_eq!(fmt_sci(0.0), "0");
    }

    #[test]
    fn wide_cells_stretch_columns() {
        let mut t = Table::new(vec!["h", "v"]);
        t.row(vec!["a-very-long-label", "1"]);
        let s = t.render();
        let header = s.lines().next().unwrap();
        assert!(header.len() >= "a-very-long-label".len());
    }
}
