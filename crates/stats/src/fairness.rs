//! Fairness metrics over success traces.
//!
//! The paper's sniffer methodology "can be used to capture a trace of the
//! sources for all the transmitted data frames. Employing this, we can
//! study the fairness of the PLC MAC layer" — the trace of winning station
//! ids, ordered in time. These functions turn such a trace into the
//! standard fairness numbers:
//!
//! * [`jain_index`] — Jain's fairness index over per-station allocations;
//! * [`windowed_jain`] — short-term fairness: Jain's index computed over a
//!   sliding window of `w` consecutive successes, averaged over the trace.
//!   1901's deferral counter makes this metric markedly worse than 802.11's
//!   at small `w` (the winner restarts at CW₀ = 8 while losers climb to
//!   large CWs — the Figure 1 caption's "short-term unfairness");
//! * [`intersuccess_counts`] — for a tagged station, the number of other
//!   stations' successes between its own consecutive successes (the
//!   inter-transmission distribution used in \[4\]).

/// Jain's fairness index: `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// Ranges from `1/n` (one station hogs everything) to `1.0` (perfect
/// equality). Returns `NaN` for an empty slice and `1.0` when every
/// allocation is zero (vacuously fair).
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (allocations.len() as f64 * sum_sq)
}

/// Short-term fairness: slide a window of `window` consecutive successes
/// over `trace` (station ids of successive winners), compute Jain's index
/// of the per-station success counts inside each window, and average.
///
/// `num_stations` fixes the population (stations absent from a window count
/// as zero — that is the point of the metric). Returns `NaN` when the trace
/// is shorter than the window.
pub fn windowed_jain(trace: &[usize], num_stations: usize, window: usize) -> f64 {
    assert!(window >= 1, "window must be at least 1");
    assert!(num_stations >= 1, "need at least one station");
    if trace.len() < window {
        return f64::NAN;
    }
    let mut counts = vec![0.0f64; num_stations];
    for &s in &trace[..window] {
        counts[s] += 1.0;
    }
    let mut total = jain_index(&counts);
    let mut n_windows = 1usize;
    for i in window..trace.len() {
        counts[trace[i - window]] -= 1.0;
        counts[trace[i]] += 1.0;
        total += jain_index(&counts);
        n_windows += 1;
    }
    total / n_windows as f64
}

/// For the tagged station `station`, the run lengths of *other* stations'
/// successes between its own consecutive successes.
///
/// A perfectly round-robin trace yields all values equal to `n − 1`; heavy
/// short-term unfairness shows up as a mix of zeros (winning streaks) and
/// large values (starvation stretches).
pub fn intersuccess_counts(trace: &[usize], station: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let mut seen_first = false;
    let mut gap = 0u64;
    for &s in trace {
        if s == station {
            if seen_first {
                out.push(gap);
            }
            seen_first = true;
            gap = 0;
        } else if seen_first {
            gap += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_perfect_equality() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jain_total_capture() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12, "1/n for n=4, got {idx}");
    }

    #[test]
    fn jain_known_intermediate() {
        // (1+2+3)² / (3 · (1+4+9)) = 36/42
        assert!((jain_index(&[1.0, 2.0, 3.0]) - 36.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn jain_degenerate_inputs() {
        assert!(jain_index(&[]).is_nan());
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn windowed_jain_round_robin_is_fair() {
        let trace: Vec<usize> = (0..100).map(|i| i % 4).collect();
        let f = windowed_jain(&trace, 4, 4);
        assert!(
            (f - 1.0).abs() < 1e-12,
            "round robin windows of 4 are perfectly fair"
        );
    }

    #[test]
    fn windowed_jain_streaky_is_unfair() {
        // Station 0 wins 50 in a row, then station 1 does.
        let mut trace = vec![0usize; 50];
        trace.extend(vec![1usize; 50]);
        let f = windowed_jain(&trace, 2, 10);
        // Most windows are single-station → index 1/2.
        assert!(f < 0.6, "streaky trace must look unfair, got {f}");
        let round_robin: Vec<usize> = (0..100).map(|i| i % 2).collect();
        assert!(windowed_jain(&round_robin, 2, 10) > f);
    }

    #[test]
    fn windowed_jain_short_trace_is_nan() {
        assert!(windowed_jain(&[0, 1], 2, 10).is_nan());
    }

    #[test]
    fn windowed_jain_window_one() {
        // Any single success is maximally unfair over n stations: 1/n.
        let trace = [0usize, 1, 0, 1];
        let f = windowed_jain(&trace, 2, 1);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn windowed_jain_rejects_zero_window() {
        windowed_jain(&[0], 1, 0);
    }

    #[test]
    fn intersuccess_round_robin() {
        let trace: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let gaps = intersuccess_counts(&trace, 0);
        assert_eq!(gaps, vec![2, 2, 2]);
    }

    #[test]
    fn intersuccess_streaks_and_starvation() {
        let trace = [0usize, 0, 0, 1, 1, 1, 1, 0];
        let gaps = intersuccess_counts(&trace, 0);
        assert_eq!(gaps, vec![0, 0, 4]);
    }

    #[test]
    fn intersuccess_absent_station() {
        let trace = [1usize, 2, 1];
        assert!(intersuccess_counts(&trace, 0).is_empty());
    }

    #[test]
    fn intersuccess_single_occurrence() {
        let trace = [1usize, 0, 1];
        assert!(
            intersuccess_counts(&trace, 0).is_empty(),
            "one success yields no gaps"
        );
    }
}
