//! The cheap rung: analytic screening of every candidate.
//!
//! Before any simulation runs, every candidate is pushed through the
//! mean-field fixed point + delay DTMC
//! ([`plc_analysis::screen_schedule`] — the same math behind
//! `Backend::MeanField`) at every portfolio operating point. One
//! candidate costs microseconds, so the full space screens in
//! milliseconds and the expensive slotted rungs only ever see the
//! analytic survivors. The screen is also the single source of the
//! **p99 access-delay objective** for every candidate (including the
//! baseline): the slotted confirm rungs settle throughput and fairness,
//! the DTMC settles the delay tail, deterministically.

use crate::portfolio::Portfolio;
use crate::space::SearchSpace;
use plc_analysis::screen_schedule;
use plc_core::error::Result;
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// Portfolio-aggregated analytic scores for one candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScreenScore {
    /// Candidate label.
    pub label: String,
    /// Weighted mean of model throughput over every (scenario, n).
    pub throughput: f64,
    /// Weighted mean of the p99 access delay in µs; `None` when the
    /// delay walk truncated before the p99 at any operating point
    /// (the tail is heavier than the walk bound — rank it worst).
    pub p99_delay_us: Option<f64>,
}

/// Screen every candidate of `space` against every operating point of
/// `portfolio`. Deterministic: output order is enumeration order.
/// Ticks `boost.evals` once per fixed-point solve when a registry is
/// given.
pub fn screen_space(
    space: &SearchSpace,
    portfolio: &Portfolio,
    timing: &MacTiming,
    registry: Option<&plc_obs::Registry>,
) -> Result<Vec<ScreenScore>> {
    let evals = registry.map(|r| r.counter("boost.evals"));
    let total_weight = portfolio.total_weight();
    let mut scores = Vec::with_capacity(space.candidates.len());
    for candidate in &space.candidates {
        let config = candidate.config()?;
        let mut thr = 0.0;
        let mut p99 = Some(0.0f64);
        for scenario in &portfolio.scenarios {
            for &n in &scenario.stations {
                let screen = screen_schedule(&config, scenario.screen_n(n), timing)?;
                if let Some(c) = &evals {
                    c.add(1);
                }
                let w = scenario.weight / total_weight;
                thr += w * screen.throughput;
                p99 = match (p99, screen.delay.p99_us()) {
                    (Some(acc), Some(v)) => Some(acc + w * v),
                    _ => None,
                };
            }
        }
        scores.push(ScreenScore {
            label: candidate.label.clone(),
            throughput: thr,
            p99_delay_us: p99,
        });
    }
    Ok(scores)
}

/// Rank screen scores best-first: throughput descending, then p99
/// ascending (`None` tails rank last), then label — a total,
/// deterministic order.
pub fn rank(scores: &[ScreenScore]) -> Vec<&ScreenScore> {
    let mut ranked: Vec<&ScreenScore> = scores.iter().collect();
    ranked.sort_by(|a, b| {
        b.throughput
            .total_cmp(&a.throughput)
            .then_with(|| match (a.p99_delay_us, b.p99_delay_us) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            })
            .then_with(|| a.label.cmp(&b.label))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_is_deterministic_and_counts_evals() {
        let space = SearchSpace::tiny_space();
        let portfolio = Portfolio::smoke_portfolio();
        let timing = MacTiming::paper_default();
        let registry = plc_obs::Registry::new();
        let a = screen_space(&space, &portfolio, &timing, Some(&registry)).unwrap();
        let b = screen_space(&space, &portfolio, &timing, None).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), space.candidates.len());
        // 5 candidates × 3 (scenario, n) points.
        assert_eq!(registry.snapshot().counter("boost.evals"), Some(15));
        for s in &a {
            assert!(s.throughput > 0.0 && s.throughput < 1.0);
        }
    }

    #[test]
    fn rank_orders_by_throughput_then_delay() {
        let scores = vec![
            ScreenScore {
                label: "slow".into(),
                throughput: 0.5,
                p99_delay_us: Some(9.0),
            },
            ScreenScore {
                label: "fast".into(),
                throughput: 0.8,
                p99_delay_us: Some(5.0),
            },
            ScreenScore {
                label: "tail".into(),
                throughput: 0.5,
                p99_delay_us: None,
            },
            ScreenScore {
                label: "tight".into(),
                throughput: 0.5,
                p99_delay_us: Some(3.0),
            },
        ];
        let ranked: Vec<&str> = rank(&scores).iter().map(|s| s.label.as_str()).collect();
        assert_eq!(ranked, ["fast", "tight", "slow", "tail"]);
    }
}
