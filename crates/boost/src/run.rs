//! The closed-loop boosting run: successive halving over a candidate
//! space, evaluated against a scenario portfolio, crash-resumable end
//! to end.
//!
//! A run is a pure function of its manifest — `(space, portfolio,
//! seed, rungs, screen_keep, base_horizon_us, replications)` — plus
//! code. Every stochastic cell seed derives from the manifest seed via
//! [`derive_seed`], every rung is a [`JobGroup`] of journaled sweep
//! jobs, and every selection step (screen ranking, per-rung pruning,
//! the Pareto front, the recommendation) is a deterministic total order
//! over the results. Consequences:
//!
//! * **byte-identical artifacts** for any worker count — `pareto.json`
//!   is the same file for `--workers 1` and `--workers 8`;
//! * **exact resume** — kill the process at any instant and
//!   [`BoostRun::resume`] replays: settled sweep points reassemble from
//!   their journals, the analytic screen re-solves (microseconds), and
//!   the pruning decisions recompute to the same survivors.
//!
//! ## Rung structure
//!
//! * **Screen** (`Backend::MeanField` math): every candidate ×
//!   every portfolio operating point through the fixed point + delay
//!   DTMC; the top [`BoostConfig::screen_keep`] by ranked analytic
//!   score survive (the baseline always does).
//! * **Confirm rungs** `1..=rungs`: each rung runs the survivors on the
//!   slotted engine over every portfolio scenario (one [`JobGroup`]
//!   member per scenario, directory `rung<r>/<scenario>/`), with the
//!   horizon growing 4× per rung; after each non-final rung the
//!   surviving set is halved by aggregate score.
//! * **Verdict**: Pareto front over (throughput ↑, Jain fairness ↑,
//!   p99 access delay ↓) and a recommended schedule — the front member
//!   beating the baseline on the most objectives.

use crate::portfolio::Portfolio;
use crate::screen::{rank, screen_space, ScreenScore};
use crate::space::{ScheduleCandidate, SearchSpace, BASELINE_LABEL};
use plc_core::error::{Error, Result};
use plc_core::fs::atomic_write;
use plc_core::timing::MacTiming;
use plc_jobs::{group_status, GroupMember, GroupReport, JobGroup, GROUP_FILE_NAME};
use plc_sim::sweep::{derive_seed, SweepGrid};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File name of the boost manifest inside a boost directory.
pub const BOOST_FILE_NAME: &str = "boost.json";
/// File name of the final artifact inside a boost directory.
pub const PARETO_FILE_NAME: &str = "pareto.json";
/// Manifest schema version.
pub const BOOST_FORMAT_VERSION: u32 = 1;

/// Everything that defines a boosting run.
#[derive(Debug, Clone)]
pub struct BoostConfig {
    /// The run directory (manifest, rung subdirectories, artifact).
    pub dir: PathBuf,
    /// Search-space name ([`SearchSpace::named`]).
    pub space: String,
    /// Portfolio name ([`Portfolio::named`]).
    pub portfolio: String,
    /// Master seed every sweep-cell seed derives from.
    pub seed: u64,
    /// Number of slotted confirm rungs (≥ 1).
    pub rungs: usize,
    /// Survivors of the analytic screen (baseline always added).
    pub screen_keep: usize,
    /// Horizon of the first confirm rung in µs; rung `r` runs
    /// `base · 4^(r−1)`.
    pub base_horizon_us: f64,
    /// Replications per sweep point in confirm rungs.
    pub replications: u64,
    /// Worker threads for sweep execution; `None` = machine default.
    /// Results are byte-identical for any choice.
    pub workers: Option<usize>,
    /// Chaos hook forwarded to every member job (kill-window injection
    /// for crash tests); never part of the manifest.
    pub stall: Option<plc_faults::JobStall>,
}

impl BoostConfig {
    /// The production defaults for `dir`: default space and portfolio,
    /// 2 rungs from a 5·10⁶ µs horizon, screen keeps 12.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        BoostConfig {
            dir: dir.into(),
            space: "default".to_string(),
            portfolio: "default".to_string(),
            seed: 42,
            rungs: 2,
            screen_keep: 12,
            base_horizon_us: 5.0e6,
            replications: 2,
            workers: None,
            stall: None,
        }
    }

    /// CI smoke defaults: tiny space, smoke portfolio, short horizons.
    pub fn smoke(dir: impl Into<PathBuf>) -> Self {
        let mut cfg = Self::new(dir);
        cfg.space = "tiny".to_string();
        cfg.portfolio = "smoke".to_string();
        cfg.screen_keep = 4;
        cfg.base_horizon_us = 4.0e5;
        cfg.replications = 1;
        cfg
    }

    fn manifest(&self, space: &SearchSpace) -> BoostManifest {
        BoostManifest {
            format_version: BOOST_FORMAT_VERSION,
            space: self.space.clone(),
            portfolio: self.portfolio.clone(),
            seed: self.seed,
            rungs: self.rungs,
            screen_keep: self.screen_keep,
            base_horizon_us: self.base_horizon_us,
            replications: self.replications,
            candidates: space.labels(),
        }
    }
}

/// The on-disk identity of a boosting run. Everything that affects the
/// search outcome is pinned here (execution policy — workers, stall —
/// deliberately is not), so a resume against different parameters is
/// refused instead of silently mixing two searches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoostManifest {
    /// [`BOOST_FORMAT_VERSION`] at creation time.
    pub format_version: u32,
    /// Search-space name.
    pub space: String,
    /// Portfolio name.
    pub portfolio: String,
    /// Master seed.
    pub seed: u64,
    /// Confirm-rung count.
    pub rungs: usize,
    /// Screen survivor count.
    pub screen_keep: usize,
    /// First-rung horizon in µs.
    pub base_horizon_us: f64,
    /// Replications per sweep point.
    pub replications: u64,
    /// Candidate labels in enumeration order — belt and braces against
    /// a code change silently redefining a named space between run and
    /// resume.
    pub candidates: Vec<String>,
}

/// Aggregated objectives of one candidate after a confirm rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateObjectives {
    /// Candidate label.
    pub label: String,
    /// Per-stage contention windows.
    pub cw: Vec<u32>,
    /// Per-stage deferral counters.
    pub dc: Vec<u32>,
    /// Weighted mean normalized throughput over the portfolio
    /// (slotted engine).
    pub throughput: f64,
    /// Weighted mean Jain fairness over the portfolio (slotted engine).
    pub jain_fairness: f64,
    /// Weighted mean p99 access delay in µs (analytic screen); `None`
    /// when the delay walk truncated before the p99 anywhere.
    pub p99_delay_us: Option<f64>,
    /// Scalarized pruning score (throughput + fairness bonus − delay
    /// penalty); higher is better.
    pub score: f64,
}

/// Which objectives a candidate strictly beats the baseline on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BeatsBaseline {
    /// Strictly higher weighted throughput.
    pub throughput: bool,
    /// Strictly higher weighted Jain fairness.
    pub fairness: bool,
    /// Strictly lower p99 access delay (an untruncated tail beats a
    /// truncated one).
    pub p99_delay: bool,
}

impl BeatsBaseline {
    /// How many of the three objectives are beaten.
    pub fn count(&self) -> usize {
        self.throughput as usize + self.fairness as usize + self.p99_delay as usize
    }
}

/// The recommended schedule of a finished run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// The winning candidate's objectives.
    pub candidate: CandidateObjectives,
    /// Objective-by-objective verdict against the baseline.
    pub beats_baseline: BeatsBaseline,
}

/// The final artifact, written atomically to [`PARETO_FILE_NAME`].
/// Contains no timestamps or machine state — byte-identical across
/// reruns, resumes and worker counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoostArtifact {
    /// [`BOOST_FORMAT_VERSION`].
    pub format_version: u32,
    /// Search-space name.
    pub space: String,
    /// Portfolio name.
    pub portfolio: String,
    /// Master seed.
    pub seed: u64,
    /// Confirm-rung count.
    pub rungs: usize,
    /// The baseline's objectives at the final rung.
    pub baseline: CandidateObjectives,
    /// Every finalist's objectives (final-rung survivors), score order.
    pub finalists: Vec<CandidateObjectives>,
    /// Labels on the Pareto front over (throughput ↑, fairness ↑,
    /// p99 delay ↓), score order.
    pub pareto: Vec<String>,
    /// The recommended schedule.
    pub recommended: Recommendation,
}

/// What [`BoostRun::run`] produced.
#[derive(Debug, Clone)]
pub struct BoostReport {
    /// The artifact, as written to disk.
    pub artifact: BoostArtifact,
    /// Where [`PARETO_FILE_NAME`] was written.
    pub artifact_path: PathBuf,
}

/// A created-or-resumed boosting run, ready to execute.
pub struct BoostRun {
    cfg: BoostConfig,
    space: SearchSpace,
    portfolio: Portfolio,
    registry: Option<plc_obs::Registry>,
}

impl BoostRun {
    /// Start a fresh run in `cfg.dir`; refuses a directory that already
    /// holds a boost manifest.
    pub fn create(cfg: BoostConfig) -> Result<BoostRun> {
        let run = Self::bind(cfg)?;
        let path = run.cfg.dir.join(BOOST_FILE_NAME);
        if path.exists() {
            return Err(Error::invalid_config(format!(
                "{} already exists — use resume",
                path.display()
            )));
        }
        std::fs::create_dir_all(&run.cfg.dir)?;
        let mut doc = serde_json::to_string(&run.cfg.manifest(&run.space))
            .expect("boost manifest serializes");
        doc.push('\n');
        atomic_write(&path, doc.as_bytes())?;
        Ok(run)
    }

    /// Resume the run in `cfg.dir`; the on-disk manifest must match
    /// `cfg` exactly.
    pub fn resume(cfg: BoostConfig) -> Result<BoostRun> {
        let run = Self::bind(cfg)?;
        let on_disk = read_boost_manifest(&run.cfg.dir)?;
        let expected = run.cfg.manifest(&run.space);
        if on_disk != expected {
            return Err(Error::invalid_config(format!(
                "cannot resume boost run at {}: manifest on disk does not match \
                 the requested space/portfolio/seed/rung parameters",
                run.cfg.dir.display()
            )));
        }
        Ok(run)
    }

    fn bind(cfg: BoostConfig) -> Result<BoostRun> {
        if cfg.rungs == 0 {
            return Err(Error::invalid_config("boost needs at least one rung"));
        }
        if cfg.screen_keep == 0 {
            return Err(Error::invalid_config("screen_keep must be at least 1"));
        }
        let space = SearchSpace::named(&cfg.space).ok_or_else(|| {
            Error::invalid_config(format!(
                "unknown search space '{}'; known: {}",
                cfg.space,
                SearchSpace::names().join(" ")
            ))
        })?;
        let portfolio = Portfolio::named(&cfg.portfolio).ok_or_else(|| {
            Error::invalid_config(format!(
                "unknown portfolio '{}'; known: {}",
                cfg.portfolio,
                Portfolio::names().join(" ")
            ))
        })?;
        Ok(BoostRun {
            cfg,
            space,
            portfolio,
            registry: None,
        })
    }

    /// Record `boost.*` and member-job instrumentation into `registry`.
    pub fn registry(mut self, registry: &plc_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Execute (the rest of) the search and write the artifact.
    pub fn run(self) -> Result<BoostReport> {
        let timing = MacTiming::paper_default();
        let scores = screen_space(
            &self.space,
            &self.portfolio,
            &timing,
            self.registry.as_ref(),
        )?;
        let delay_by_label: BTreeMap<&str, Option<f64>> = scores
            .iter()
            .map(|s| (s.label.as_str(), s.p99_delay_us))
            .collect();
        let mut survivors = self.screen_survivors(&scores);
        self.count("boost.pruned", (scores.len() - survivors.len()) as u64);

        let mut objectives = Vec::new();
        for rung in 1..=self.cfg.rungs {
            let report = self.run_rung(rung, &survivors)?;
            self.count("boost.rungs", 1);
            objectives = self.rung_objectives(&report, &survivors, &delay_by_label)?;
            objectives.sort_by(|a, b| {
                b.score
                    .total_cmp(&a.score)
                    .then_with(|| a.label.cmp(&b.label))
            });
            if rung < self.cfg.rungs {
                let keep = objectives.len().div_ceil(2).max(2);
                let mut kept: Vec<String> = objectives
                    .iter()
                    .take(keep)
                    .map(|o| o.label.clone())
                    .collect();
                if !kept.iter().any(|l| l == BASELINE_LABEL) {
                    kept.push(BASELINE_LABEL.to_string());
                }
                self.count("boost.pruned", (survivors.len() - kept.len()) as u64);
                survivors = kept;
            }
        }

        let artifact = self.verdict(objectives)?;
        let artifact_path = self.cfg.dir.join(PARETO_FILE_NAME);
        let mut doc = serde_json::to_string(&artifact).expect("boost artifact serializes");
        doc.push('\n');
        atomic_write(&artifact_path, doc.as_bytes())?;
        Ok(BoostReport {
            artifact,
            artifact_path,
        })
    }

    /// The analytic survivors: top `screen_keep` of the ranked screen,
    /// plus the baseline if it did not make the cut.
    fn screen_survivors(&self, scores: &[ScreenScore]) -> Vec<String> {
        let mut survivors: Vec<String> = rank(scores)
            .into_iter()
            .take(self.cfg.screen_keep)
            .map(|s| s.label.clone())
            .collect();
        if !survivors.iter().any(|l| l == BASELINE_LABEL) {
            survivors.push(BASELINE_LABEL.to_string());
        }
        survivors
    }

    /// One confirm rung: a [`JobGroup`] with one member per portfolio
    /// scenario, each sweeping every survivor over the scenario's
    /// station counts at the rung's horizon.
    fn run_rung(&self, rung: usize, survivors: &[String]) -> Result<GroupReport> {
        let horizon = self.cfg.base_horizon_us * 4.0f64.powi(rung as i32 - 1);
        let mut members = Vec::with_capacity(self.portfolio.scenarios.len());
        for (si, scenario) in self.portfolio.scenarios.iter().enumerate() {
            let mut grid = SweepGrid::new(derive_seed(self.cfg.seed, rung as u64, si as u64))
                .stations(scenario.stations.iter().copied())
                .replications(self.cfg.replications);
            if let Some(w) = self.cfg.workers {
                grid = grid.workers(w);
            }
            for label in survivors {
                let candidate = self.candidate(label)?;
                grid = grid.config(
                    label.clone(),
                    scenario.template(&candidate.config()?, horizon),
                );
            }
            let mut member = GroupMember::new(scenario.name.clone(), grid);
            member.stall = self.cfg.stall;
            members.push(member);
        }
        let mut group = JobGroup::new(self.cfg.dir.join(format!("rung{rung}")), members)?;
        if let Some(r) = &self.registry {
            group = group.registry(r);
        }
        group.run()
    }

    /// Aggregate (throughput, fairness) from a rung's slotted results
    /// and the delay tail from the screen into per-survivor objectives.
    fn rung_objectives(
        &self,
        report: &GroupReport,
        survivors: &[String],
        delay_by_label: &BTreeMap<&str, Option<f64>>,
    ) -> Result<Vec<CandidateObjectives>> {
        let total_weight = self.portfolio.total_weight();
        let mut out = Vec::with_capacity(survivors.len());
        for label in survivors {
            let candidate = self.candidate(label)?;
            let mut throughput = 0.0;
            let mut jain = 0.0;
            for scenario in &self.portfolio.scenarios {
                let results = report.results(&scenario.name).ok_or_else(|| {
                    Error::runtime(format!(
                        "rung member '{}' is incomplete (quarantined points?) — \
                         resume after inspecting its quarantine file",
                        scenario.name
                    ))
                })?;
                for &n in &scenario.stations {
                    let summary = results
                        .point(label, n)
                        .and_then(|p| p.summary())
                        .ok_or_else(|| {
                            Error::runtime(format!(
                                "point ({label}, n={n}) of member '{}' has no summary",
                                scenario.name
                            ))
                        })?;
                    let w = scenario.weight / total_weight;
                    throughput += w * summary.norm_throughput.mean;
                    jain += w * summary.jain_fairness.mean;
                }
            }
            let p99_delay_us = delay_by_label.get(label.as_str()).copied().flatten();
            out.push(CandidateObjectives {
                label: label.clone(),
                cw: candidate.cw.clone(),
                dc: candidate.dc.clone(),
                throughput,
                jain_fairness: jain,
                p99_delay_us,
                score: scalarize(throughput, jain, p99_delay_us),
            });
        }
        Ok(out)
    }

    /// Pareto front + recommendation over the final objectives.
    fn verdict(&self, finalists: Vec<CandidateObjectives>) -> Result<BoostArtifact> {
        let baseline = finalists
            .iter()
            .find(|o| o.label == BASELINE_LABEL)
            .cloned()
            .ok_or_else(|| Error::runtime("baseline missing from finalists"))?;
        let pareto: Vec<String> = finalists
            .iter()
            .filter(|a| !finalists.iter().any(|b| dominates(b, a)))
            .map(|o| o.label.clone())
            .collect();
        let recommended = finalists
            .iter()
            .filter(|o| pareto.contains(&o.label))
            .map(|o| Recommendation {
                candidate: o.clone(),
                beats_baseline: beats(o, &baseline),
            })
            .max_by(|a, b| {
                a.beats_baseline
                    .count()
                    .cmp(&b.beats_baseline.count())
                    .then_with(|| a.candidate.score.total_cmp(&b.candidate.score))
                    // Ties break toward the lexicographically *smaller*
                    // label, so the pick is deterministic.
                    .then_with(|| b.candidate.label.cmp(&a.candidate.label))
            })
            .ok_or_else(|| Error::runtime("empty Pareto front"))?;
        Ok(BoostArtifact {
            format_version: BOOST_FORMAT_VERSION,
            space: self.cfg.space.clone(),
            portfolio: self.cfg.portfolio.clone(),
            seed: self.cfg.seed,
            rungs: self.cfg.rungs,
            baseline,
            finalists,
            pareto,
            recommended,
        })
    }

    fn candidate(&self, label: &str) -> Result<&ScheduleCandidate> {
        self.space
            .candidate(label)
            .ok_or_else(|| Error::runtime(format!("unknown candidate label '{label}'")))
    }

    fn count(&self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(r) = &self.registry {
            r.counter(name).add(n);
        }
    }
}

/// The scalarized pruning score: throughput plus a fairness bonus minus
/// a logarithmic delay penalty (a truncated tail takes a fixed worst
/// penalty). Deterministic in the objectives.
pub fn scalarize(throughput: f64, jain_fairness: f64, p99_delay_us: Option<f64>) -> f64 {
    let delay_penalty = match p99_delay_us {
        Some(us) => 0.1 * (1.0 + us / 1.0e4).ln(),
        None => 2.0,
    };
    throughput + 0.25 * jain_fairness - delay_penalty
}

/// Whether `a` Pareto-dominates `b` over (throughput ↑, fairness ↑,
/// p99 delay ↓): at least as good everywhere, strictly better
/// somewhere. A truncated (`None`) delay tail is worse than any
/// measured one.
pub fn dominates(a: &CandidateObjectives, b: &CandidateObjectives) -> bool {
    let delay = cmp_delay(a.p99_delay_us, b.p99_delay_us);
    let ge = a.throughput >= b.throughput
        && a.jain_fairness >= b.jain_fairness
        && delay != std::cmp::Ordering::Greater;
    let strict = a.throughput > b.throughput
        || a.jain_fairness > b.jain_fairness
        || delay == std::cmp::Ordering::Less;
    ge && strict
}

/// Compare two p99 delays, lower better, `None` (truncated) worst.
fn cmp_delay(a: Option<f64>, b: Option<f64>) -> std::cmp::Ordering {
    match (a, b) {
        (Some(x), Some(y)) => x.total_cmp(&y),
        (Some(_), None) => std::cmp::Ordering::Less,
        (None, Some(_)) => std::cmp::Ordering::Greater,
        (None, None) => std::cmp::Ordering::Equal,
    }
}

/// Objective-by-objective strict comparison against the baseline.
fn beats(candidate: &CandidateObjectives, baseline: &CandidateObjectives) -> BeatsBaseline {
    BeatsBaseline {
        throughput: candidate.throughput > baseline.throughput,
        fairness: candidate.jain_fairness > baseline.jain_fairness,
        p99_delay: cmp_delay(candidate.p99_delay_us, baseline.p99_delay_us)
            == std::cmp::Ordering::Less,
    }
}

/// Read the boost manifest of a run directory.
pub fn read_boost_manifest(dir: &Path) -> Result<BoostManifest> {
    let path = dir.join(BOOST_FILE_NAME);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| Error::runtime(format!("no boost manifest at {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| Error::runtime(format!("corrupt boost manifest at {}: {e}", path.display())))
}

/// Render the progress of a boost directory from its manifests and
/// journals alone — safe to run while another process owns the run.
pub fn boost_status(dir: &Path) -> Result<String> {
    let manifest = read_boost_manifest(dir)?;
    let mut out = format!(
        "boost run: space '{}' × portfolio '{}', seed {}, {} rung(s), {} candidate(s)\n",
        manifest.space,
        manifest.portfolio,
        manifest.seed,
        manifest.rungs,
        manifest.candidates.len()
    );
    for rung in 1..=manifest.rungs {
        let rung_dir = dir.join(format!("rung{rung}"));
        if !rung_dir.join(GROUP_FILE_NAME).exists() {
            out.push_str(&format!("  rung{rung}: not started\n"));
            continue;
        }
        for (name, status) in group_status(&rung_dir)? {
            match status {
                Some(s) => out.push_str(&format!("  rung{rung}/{name}: {}\n", s.render())),
                None => out.push_str(&format!("  rung{rung}/{name}: not started\n")),
            }
        }
    }
    out.push_str(if dir.join(PARETO_FILE_NAME).exists() {
        "  artifact: pareto.json written\n"
    } else {
        "  artifact: pending\n"
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(label: &str, thr: f64, jain: f64, p99: Option<f64>) -> CandidateObjectives {
        CandidateObjectives {
            label: label.to_string(),
            cw: vec![8, 16, 32, 64],
            dc: vec![0, 1, 3, 15],
            throughput: thr,
            jain_fairness: jain,
            p99_delay_us: p99,
            score: scalarize(thr, jain, p99),
        }
    }

    #[test]
    fn dominance_needs_a_strict_edge_and_none_delay_loses() {
        let a = obj("a", 0.8, 0.99, Some(100.0));
        let b = obj("b", 0.7, 0.99, Some(200.0));
        let c = obj("c", 0.8, 0.99, Some(100.0));
        let t = obj("t", 0.8, 0.99, None);
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
        assert!(!dominates(&a, &c), "equal objectives do not dominate");
        assert!(dominates(&a, &t), "a truncated tail is strictly worse");
    }

    #[test]
    fn scalarize_prefers_throughput_and_penalizes_tails() {
        assert!(scalarize(0.8, 1.0, Some(100.0)) > scalarize(0.7, 1.0, Some(100.0)));
        assert!(scalarize(0.8, 1.0, Some(100.0)) > scalarize(0.8, 1.0, None));
        assert!(scalarize(0.8, 1.0, Some(100.0)) > scalarize(0.8, 1.0, Some(1.0e6)));
    }

    #[test]
    fn create_then_create_is_refused_and_resume_checks_the_manifest() {
        let dir = std::env::temp_dir().join(format!("plc_boost_manifest_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = BoostConfig::smoke(&dir);
        let _run = BoostRun::create(cfg.clone()).unwrap();
        assert!(
            BoostRun::create(cfg.clone()).is_err(),
            "second create refused"
        );
        assert!(BoostRun::resume(cfg.clone()).is_ok());
        let mut other = cfg;
        other.seed = 7;
        assert!(BoostRun::resume(other).is_err(), "seed mismatch refused");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_names_are_refused() {
        let mut cfg = BoostConfig::new(std::env::temp_dir().join("plc_boost_unknown"));
        cfg.space = "nope".to_string();
        assert!(BoostRun::create(cfg.clone()).is_err());
        cfg.space = "tiny".to_string();
        cfg.portfolio = "nope".to_string();
        assert!(BoostRun::create(cfg).is_err());
    }
}
