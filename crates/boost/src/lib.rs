//! # plc-boost — closed-loop configuration boosting
//!
//! The paper's closing argument is that a fast, validated simulator
//! turns MAC configuration into an *optimization* problem: search the
//! (CW, DC) schedule space for tables that beat the IEEE 1901 defaults.
//! This crate closes that loop at production scale:
//!
//! * [`SearchSpace`] — named, code-pinned candidate enumerations
//!   (geometric window progressions × deferral patterns), always
//!   containing the CA0/CA1 default as the [`space::BASELINE_LABEL`]
//!   yardstick;
//! * [`Portfolio`] — named, weighted scenario sets (saturated,
//!   Poisson-unsaturated, multi-domain cells × station counts), so a
//!   winner has to be good everywhere it is weighted to matter, not at
//!   one cherry-picked operating point;
//! * [`BoostRun`] — successive halving: an analytic **screen** (the
//!   `Backend::MeanField` fixed point + delay DTMC via
//!   [`plc_analysis::screen_schedule`]) prunes the space for
//!   microseconds per candidate, then slotted **confirm rungs** with
//!   4×-growing horizons run the survivors through crash-tolerant
//!   [`plc_jobs::JobGroup`]s and halve the field by aggregate score
//!   after each rung;
//! * the verdict is a **Pareto front** over (throughput ↑, Jain
//!   fairness ↑, p99 access delay ↓) plus a [`Recommendation`] — the
//!   front member beating the baseline on the most objectives — written
//!   atomically as `pareto.json`.
//!
//! Every selection step is a deterministic total order and every sweep
//! cell seed derives from the manifest seed, so a boosting run is a
//! pure function of its `boost.json` manifest: artifacts are
//! **byte-identical across worker counts**, and a SIGKILL at any
//! instant is survivable — [`BoostRun::resume`] replays settled points
//! from the rung journals and recomputes every decision to the same
//! outcome. Progress is observable through `boost.rungs` /
//! `boost.evals` / `boost.pruned` counters on an attached
//! [`plc_obs::Registry`].
//!
//! ```
//! use plc_boost::{BoostConfig, BoostRun};
//!
//! let dir = std::env::temp_dir().join(format!("plc_boost_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let mut cfg = BoostConfig::smoke(&dir);
//! cfg.base_horizon_us = 1.0e5; // doctest-sized rungs
//! cfg.rungs = 1;
//! let report = BoostRun::create(cfg.clone()).unwrap().run().unwrap();
//! assert!(!report.artifact.pareto.is_empty());
//! // Resuming a finished run recomputes nothing stochastic and returns
//! // the identical artifact.
//! let resumed = BoostRun::resume(cfg).unwrap().run().unwrap();
//! assert_eq!(resumed.artifact, report.artifact);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod portfolio;
pub mod run;
pub mod screen;
pub mod space;

pub use portfolio::{Portfolio, PortfolioScenario, ScenarioKind};
pub use run::{
    boost_status, read_boost_manifest, scalarize, BoostArtifact, BoostConfig, BoostManifest,
    BoostReport, BoostRun, CandidateObjectives, Recommendation, BOOST_FILE_NAME, PARETO_FILE_NAME,
};
pub use screen::{screen_space, ScreenScore};
pub use space::{ScheduleCandidate, SearchSpace};
