//! Named scenario portfolios: what a candidate schedule is judged on.
//!
//! Boosting for one operating point overfits — a schedule tuned for 30
//! saturated stations can starve a lightly-loaded cell. A [`Portfolio`]
//! is a weighted set of [`PortfolioScenario`]s (traffic model ×
//! topology × station counts) and the optimizer aggregates every
//! objective across the whole set, so a winning schedule has to be good
//! *everywhere it is weighted to matter*. Like search spaces,
//! portfolios are code-defined and looked up by name, so the boost
//! manifest pins the exact evaluation conditions across resumes.

use plc_core::config::CsmaConfig;
use plc_sim::{Simulation, TrafficModel};
use serde::{Deserialize, Serialize};

/// The scenario family: how stations load and see the medium.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScenarioKind {
    /// Always-backlogged single contention domain — the paper's setting.
    Saturated,
    /// Poisson arrivals into bounded queues (unsaturated MAC).
    Poisson {
        /// Mean arrival rate per station, frames/µs.
        rate_per_us: f64,
        /// Per-station queue capacity in frames.
        queue_cap: usize,
    },
    /// Stations split into isolated cells of `cell_size` — the
    /// multi-domain path (neighbouring-network coexistence).
    Cells {
        /// Stations per contention domain.
        cell_size: usize,
    },
}

/// One weighted evaluation scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioScenario {
    /// Scenario name — becomes the member-job subdirectory of a rung,
    /// so it must be a plain path component.
    pub name: String,
    /// Traffic/topology family.
    pub kind: ScenarioKind,
    /// Station counts evaluated under this scenario.
    pub stations: Vec<usize>,
    /// Relative weight of each of this scenario's grid points in the
    /// aggregated objectives.
    pub weight: f64,
}

impl PortfolioScenario {
    /// The simulation template confirm rungs sweep for `config` — the
    /// grid substitutes each station count via `num_stations`, which
    /// preserves the cell layout for [`ScenarioKind::Cells`].
    pub fn template(&self, config: &CsmaConfig, horizon_us: f64) -> Simulation {
        let sim = Simulation::ieee1901(1)
            .config(config.clone())
            .horizon_us(horizon_us);
        match self.kind {
            ScenarioKind::Saturated => sim,
            ScenarioKind::Poisson {
                rate_per_us,
                queue_cap,
            } => sim.traffic(TrafficModel::Poisson {
                rate_per_us,
                queue_cap,
            }),
            ScenarioKind::Cells { cell_size } => sim.cells_of(cell_size),
        }
    }

    /// The contention-domain size the analytic screen solves for `n`
    /// total stations: cells contend per cell, everything else in one
    /// domain.
    pub fn screen_n(&self, n: usize) -> usize {
        match self.kind {
            ScenarioKind::Cells { cell_size } => n.min(cell_size).max(1),
            _ => n,
        }
    }
}

/// A named, weighted scenario set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    /// Registry name (`default`, `smoke`).
    pub name: String,
    /// The scenarios; names are unique plain path components.
    pub scenarios: Vec<PortfolioScenario>,
}

impl Portfolio {
    /// Look a portfolio up by registry name.
    pub fn named(name: &str) -> Option<Portfolio> {
        match name {
            "default" => Some(Self::default_portfolio()),
            "smoke" => Some(Self::smoke_portfolio()),
            _ => None,
        }
    }

    /// The known portfolio names, for usage lines.
    pub fn names() -> &'static [&'static str] {
        &["default", "smoke"]
    }

    /// The production portfolio: saturated single-domain at N ∈
    /// {5, 15, 30} (full weight), Poisson-unsaturated at N = 10
    /// (quarter weight) and 5-station isolated cells at N = 20 (half
    /// weight).
    pub fn default_portfolio() -> Portfolio {
        Portfolio {
            name: "default".to_string(),
            scenarios: vec![
                PortfolioScenario {
                    name: "saturated".to_string(),
                    kind: ScenarioKind::Saturated,
                    stations: vec![5, 15, 30],
                    weight: 1.0,
                },
                PortfolioScenario {
                    name: "poisson".to_string(),
                    kind: ScenarioKind::Poisson {
                        rate_per_us: 3.0e-5,
                        queue_cap: 8,
                    },
                    stations: vec![10],
                    weight: 0.25,
                },
                PortfolioScenario {
                    name: "cells".to_string(),
                    kind: ScenarioKind::Cells { cell_size: 5 },
                    stations: vec![20],
                    weight: 0.5,
                },
            ],
        }
    }

    /// A two-scenario portfolio for CI smoke runs.
    pub fn smoke_portfolio() -> Portfolio {
        Portfolio {
            name: "smoke".to_string(),
            scenarios: vec![
                PortfolioScenario {
                    name: "saturated".to_string(),
                    kind: ScenarioKind::Saturated,
                    stations: vec![3, 8],
                    weight: 1.0,
                },
                PortfolioScenario {
                    name: "cells".to_string(),
                    kind: ScenarioKind::Cells { cell_size: 4 },
                    stations: vec![8],
                    weight: 0.5,
                },
            ],
        }
    }

    /// Total weight across every (scenario, n) grid point.
    pub fn total_weight(&self) -> f64 {
        self.scenarios
            .iter()
            .map(|s| s.weight * s.stations.len() as f64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portfolios_are_pinned() {
        let p = Portfolio::default_portfolio();
        assert_eq!(p.scenarios.len(), 3);
        assert!((p.total_weight() - 3.75).abs() < 1e-12);
        let s = Portfolio::smoke_portfolio();
        assert_eq!(s.scenarios.len(), 2);
        for name in Portfolio::names() {
            assert!(Portfolio::named(name).is_some());
        }
    }

    #[test]
    #[allow(deprecated)] // num_stations: the sweep grid does this swap internally
    fn cells_screen_per_cell_and_templates_build() {
        let p = Portfolio::default_portfolio();
        let cells = &p.scenarios[2];
        assert_eq!(cells.screen_n(20), 5);
        assert_eq!(p.scenarios[0].screen_n(30), 30);
        let cfg = CsmaConfig::ieee1901_ca01();
        for s in &p.scenarios {
            // A template must actually run after num_stations swaps.
            let report = s
                .template(&cfg, 5.0e4)
                .num_stations(s.stations[0])
                .try_run()
                .expect("portfolio template runs");
            assert!(report.norm_throughput >= 0.0);
        }
    }
}
