//! Named candidate-schedule search spaces.
//!
//! A [`SearchSpace`] is a deterministic, code-defined enumeration of
//! (CW, DC) schedules; the optimizer never mutates it, so a space
//! *name* in the on-disk boost manifest pins the exact candidate set a
//! resumed search replays against. Every space contains the IEEE 1901
//! CA0/CA1 default as candidate 0 under [`BASELINE_LABEL`] — it is the
//! yardstick every objective is compared to and is exempt from pruning.

use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::error::{Error, Result};
use serde::{Deserialize, Serialize};

/// Label of the IEEE 1901 CA0/CA1 default schedule present in every
/// space.
pub const BASELINE_LABEL: &str = "ca1-default";

/// One candidate (CW, DC) schedule, identified by a stable label.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleCandidate {
    /// Stable label; becomes the sweep-config label in confirm rungs.
    pub label: String,
    /// Per-stage contention windows.
    pub cw: Vec<u32>,
    /// Per-stage deferral counters ([`DC_DISABLED`] = no deferral).
    pub dc: Vec<u32>,
}

impl ScheduleCandidate {
    /// A candidate from explicit vectors.
    pub fn new(label: impl Into<String>, cw: Vec<u32>, dc: Vec<u32>) -> Self {
        ScheduleCandidate {
            label: label.into(),
            cw,
            dc,
        }
    }

    /// A candidate copying an existing configuration's table.
    pub fn from_config(label: impl Into<String>, config: &CsmaConfig) -> Self {
        ScheduleCandidate::new(label, config.cw_vector(), config.dc_vector())
    }

    /// Build the runnable configuration.
    pub fn config(&self) -> Result<CsmaConfig> {
        CsmaConfig::from_vectors(&self.cw, &self.dc)
            .map_err(|e| Error::invalid_config(format!("candidate '{}': {e}", self.label)))
    }
}

/// A named, deterministic candidate enumeration. Candidate 0 is always
/// the [`BASELINE_LABEL`] default schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Registry name (`default`, `tiny`).
    pub name: String,
    /// Candidates in enumeration order; labels are unique.
    pub candidates: Vec<ScheduleCandidate>,
}

impl SearchSpace {
    /// Look a space up by registry name.
    pub fn named(name: &str) -> Option<SearchSpace> {
        match name {
            "default" => Some(Self::default_space()),
            "tiny" => Some(Self::tiny_space()),
            _ => None,
        }
    }

    /// The known space names, for usage lines.
    pub fn names() -> &'static [&'static str] {
        &["default", "tiny"]
    }

    /// The full production space: the baseline plus the cross product of
    /// `CW₀ ∈ {4, 8, 16, 32, 64, 128}` × window growth `g ∈ {1, 2, 4}`
    /// (`CW_i = CW₀·gⁱ`, four stages, capped at 2¹⁶) × deferral pattern
    /// `{standard 1901, aggressive, off}` — 55 candidates, the same
    /// structured family `plc_analysis::boost_search` enumerates.
    pub fn default_space() -> SearchSpace {
        Self::enumerated("default", &[4, 8, 16, 32, 64, 128], &[1, 2, 4], true)
    }

    /// A 5-candidate space for CI smoke runs: the baseline plus
    /// `CW₀ ∈ {8, 32}` × doubling windows × deferral `{standard, off}`.
    pub fn tiny_space() -> SearchSpace {
        Self::enumerated("tiny", &[8, 32], &[2], false)
    }

    fn enumerated(name: &str, cw0s: &[u32], growths: &[u32], aggressive: bool) -> SearchSpace {
        const STAGES: usize = 4;
        let standard_dc = [0u32, 1, 3, 15];
        let aggressive_dc = [0u32, 0, 1, 3];
        let off_dc = [DC_DISABLED; STAGES];
        let mut dc_patterns: Vec<(&str, [u32; STAGES])> = vec![("dc1901", standard_dc)];
        if aggressive {
            dc_patterns.push(("dcaggr", aggressive_dc));
        }
        dc_patterns.push(("dcoff", off_dc));

        let mut candidates = vec![ScheduleCandidate::from_config(
            BASELINE_LABEL,
            &CsmaConfig::ieee1901_ca01(),
        )];
        for &cw0 in cw0s {
            for &g in growths {
                let cw: Vec<u32> = (0..STAGES)
                    .map(|i| ((cw0 as u64) * (g as u64).pow(i as u32)).min(1 << 16) as u32)
                    .collect();
                for (dc_name, dc) in &dc_patterns {
                    candidates.push(ScheduleCandidate::new(
                        format!("cw{cw0}-g{g}-{dc_name}"),
                        cw.clone(),
                        dc.to_vec(),
                    ));
                }
            }
        }
        SearchSpace {
            name: name.to_string(),
            candidates,
        }
    }

    /// The baseline candidate (always present, always index 0).
    pub fn baseline(&self) -> &ScheduleCandidate {
        &self.candidates[0]
    }

    /// Candidate labels in enumeration order.
    pub fn labels(&self) -> Vec<String> {
        self.candidates.iter().map(|c| c.label.clone()).collect()
    }

    /// The candidate with the given label.
    pub fn candidate(&self, label: &str) -> Option<&ScheduleCandidate> {
        self.candidates.iter().find(|c| c.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_is_pinned_and_valid() {
        let space = SearchSpace::default_space();
        assert_eq!(space.candidates.len(), 55);
        assert_eq!(space.baseline().label, BASELINE_LABEL);
        let mut labels = space.labels();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 55, "labels must be unique");
        for c in &space.candidates {
            c.config().expect("every candidate builds");
        }
    }

    #[test]
    fn tiny_space_is_small_and_contains_the_baseline() {
        let space = SearchSpace::tiny_space();
        assert_eq!(space.candidates.len(), 5);
        assert_eq!(space.baseline().label, BASELINE_LABEL);
        assert!(space.candidate("cw8-g2-dc1901").is_some());
    }

    #[test]
    fn baseline_matches_the_1901_default_table() {
        let space = SearchSpace::named("default").unwrap();
        let cfg = space.baseline().config().unwrap();
        let default = CsmaConfig::ieee1901_ca01();
        assert_eq!(cfg.cw_vector(), default.cw_vector());
        assert_eq!(cfg.dc_vector(), default.dc_vector());
    }
}
