//! Bianchi's closed-form fixed-point model of 802.11 DCF — the baseline
//! the paper compares 1901 against.
//!
//! For binary-exponential backoff with minimum window `W`, `m` doubling
//! stages and infinite retries, Bianchi (JSAC 2000) gives the per-slot
//! attempt probability as
//!
//! ```text
//! τ(p) = 2 (1 − 2p) / ((1 − 2p)(W + 1) + p W (1 − (2p)^m))
//! p    = 1 − (1 − τ)^(N−1)
//! ```
//!
//! solved as a fixed point. This closed form is also the analytic
//! cross-check for the general stage-chain machinery in
//! [`crate::model1901`]: a 1901 model with every deferral counter disabled
//! must coincide with it (the workspace tests assert this within numerical
//! tolerance — note the two models are derived with the same slot
//! accounting, so agreement is exact up to the solver).

use crate::math::bisect_decreasing;
use crate::throughput::{normalized_throughput, SlotProbabilities};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// Bianchi model parameters: minimum window and number of doubling stages.
///
/// # Examples
///
/// ```
/// use plc_analysis::BianchiModel;
///
/// // A lone DCF station attempts with τ = 2/(W+1).
/// let fp = BianchiModel::classic().solve(1);
/// assert!((fp.tau - 2.0 / 17.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BianchiModel {
    /// Minimum contention window `W` (stage-0 window).
    pub w: u32,
    /// Number of stages; the window at the last stage is `W · 2^(m−1)`.
    pub m: u32,
}

/// Solved DCF fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BianchiFixedPoint {
    /// Station count.
    pub n: usize,
    /// Per-slot attempt probability.
    pub tau: f64,
    /// Conditional collision probability.
    pub collision_probability: f64,
}

impl BianchiModel {
    /// Classic DCF: `W = 16`, 6 stages (16…512).
    pub fn classic() -> Self {
        BianchiModel { w: 16, m: 6 }
    }

    /// DCF restricted to 1901's CA1 windows: `W = 8`, 4 stages (8…64).
    pub fn with_1901_windows() -> Self {
        BianchiModel { w: 8, m: 4 }
    }

    /// `τ(p)` — Bianchi's closed form.
    ///
    /// Note on conventions: Bianchi indexes stages `0…m` with
    /// `CW_max = 2^m W` (so `m + 1` windows), while this struct's `m` is
    /// the *number of windows* to match `CsmaConfig::dcf_like`. The
    /// exponent below is therefore `self.m − 1`.
    pub fn tau_of_p(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p));
        let w = self.w as f64;
        let mb = self.m as f64 - 1.0; // Bianchi's maximum stage index
        if (p - 0.5).abs() < 1e-12 {
            // Removable singularity at p = 1/2: take the limit.
            // τ = 2 / (1 + W + p W Σ_{i=0}^{m_B−1} (2p)^i) with 2p = 1 →
            // Σ = m_B, so τ = 2 / (1 + W + W m_B / 2).
            return 2.0 / (1.0 + w + w * mb / 2.0);
        }
        let two_p = 2.0 * p;
        2.0 * (1.0 - two_p) / ((1.0 - two_p) * (w + 1.0) + p * w * (1.0 - two_p.powf(mb)))
    }

    /// Solve the fixed point for `n` stations.
    pub fn solve(&self, n: usize) -> BianchiFixedPoint {
        assert!(n >= 1, "need at least one station");
        let tau = if n == 1 {
            self.tau_of_p(0.0)
        } else {
            bisect_decreasing(1e-12, 1.0 - 1e-12, |tau| {
                let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
                self.tau_of_p(p) - tau
            })
        };
        let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
        BianchiFixedPoint {
            n,
            tau,
            collision_probability: p,
        }
    }

    /// Normalized throughput for `n` stations under `timing`.
    pub fn throughput(&self, n: usize, timing: &MacTiming) -> f64 {
        let fp = self.solve(n);
        normalized_throughput(&SlotProbabilities::from_tau(fp.tau, n), timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model1901::Model1901;
    use plc_core::config::CsmaConfig;

    #[test]
    fn single_station_closed_form() {
        // p = 0 → τ = 2/(W+1).
        let fp = BianchiModel::classic().solve(1);
        assert!((fp.tau - 2.0 / 17.0).abs() < 1e-12);
        assert_eq!(fp.collision_probability, 0.0);
    }

    #[test]
    fn collision_probability_monotone_in_n() {
        let model = BianchiModel::classic();
        let mut prev = 0.0;
        for n in 1..=30 {
            let fp = model.solve(n);
            assert!(fp.collision_probability >= prev);
            assert!(fp.tau > 0.0 && fp.tau < 1.0);
            prev = fp.collision_probability;
        }
    }

    #[test]
    fn singularity_at_half_is_continuous() {
        let m = BianchiModel::classic();
        let below = m.tau_of_p(0.5 - 1e-9);
        let at = m.tau_of_p(0.5);
        let above = m.tau_of_p(0.5 + 1e-9);
        assert!((below - at).abs() < 1e-6);
        assert!((above - at).abs() < 1e-6);
    }

    #[test]
    fn general_model_with_dc_disabled_matches_bianchi() {
        // The stage-chain model with d_i = ∞ and doubling windows must
        // reproduce Bianchi's τ — they implement the same Markov chain.
        let general = Model1901::new(CsmaConfig::dcf_like(16, 6).unwrap());
        let closed = BianchiModel::classic();
        for n in [2usize, 5, 10, 20] {
            let a = general.solve(n);
            let b = closed.solve(n);
            assert!(
                (a.tau - b.tau).abs() < 1e-6,
                "N={n}: general τ={} vs Bianchi τ={}",
                a.tau,
                b.tau
            );
            assert!((a.collision_probability - b.collision_probability).abs() < 1e-6);
        }
    }

    #[test]
    fn dcf_matches_dcf_simulation() {
        // Cross-check the model against the DCF engine. Note the engine
        // implements true freeze-on-busy; Bianchi's slotted accounting is
        // an approximation of it, so the tolerance is looser than for 1901.
        use plc_sim::runner::Simulation;
        let model = BianchiModel::classic();
        for n in [2usize, 5] {
            let sim = Simulation::dcf(n).horizon_us(2e7).seed(3).run();
            let fp = model.solve(n);
            assert!(
                (fp.collision_probability - sim.collision_probability).abs() < 0.03,
                "N={n}: Bianchi {} vs sim {}",
                fp.collision_probability,
                sim.collision_probability
            );
        }
    }

    #[test]
    fn matched_windows_collide_more_than_1901() {
        // Figure-2-style comparison at the model level: DCF with 1901's
        // windows vs 1901 with deferral.
        let dcf = BianchiModel::with_1901_windows();
        let p1901 = Model1901::default_ca1();
        for n in [3usize, 5, 10] {
            assert!(
                p1901.solve(n).collision_probability < dcf.solve(n).collision_probability,
                "N={n}"
            );
        }
    }

    #[test]
    fn throughput_sane() {
        let timing = MacTiming::paper_default();
        let s = BianchiModel::classic().throughput(5, &timing);
        assert!(s > 0.4 && s < 1.0, "throughput {s}");
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        BianchiModel::classic().solve(0);
    }
}
