//! Independent reference model in the style of Cano & Malone ("On
//! Efficiency and Validity of Previous Homeplug MAC Performance
//! Analysis" — PAPERS.md): the **deterministic-deferral** approximation
//! of the 1901 backoff stage.
//!
//! Where [`crate::model1901`] tracks the full binomial distribution of
//! busy slots within a backoff (`x_i = (1/W) Σ_b P(Bin(b, p) ≤ d_i)`),
//! the Cano & Malone-style expression replaces the random arrival of the
//! `(d_i+1)`-th busy slot by its deterministic deadline
//!
//! ```text
//! T_i = ⌈(d_i + 1) / p⌉  slots,
//! ```
//!
//! so a station attempts iff its backoff draw lands before the deadline:
//! `x_i = min(W_i, T_i) / W_i`, with the matching expected residency. The
//! two models share the renewal-reward chain and the decoupling link
//! `p = 1 − (1−τ)^(N−1)` but differ in the per-stage response — exactly
//! the kind of independent disagreement a cross-validation harness
//! wants: where both agree with the simulator we trust the backend,
//! where they diverge we know which modelling step is responsible. When
//! the deferral counter is disabled the deadline is never hit and both
//! models collapse to the same Bianchi-style expression (pinned by a
//! test below).

use crate::math::bisect_decreasing;
use crate::model1901::{stage_visit_counts, tau_from_stages, StageQuantities};
use plc_core::config::{CsmaConfig, DC_DISABLED};
use serde::{Deserialize, Serialize};

/// Per-stage quantities under the deterministic-deferral approximation.
pub fn stage_response(w: u32, d: u32, p: f64) -> StageQuantities {
    assert!(w >= 1);
    assert!(
        (0.0..=1.0).contains(&p),
        "busy probability out of range: {p}"
    );
    if d == DC_DISABLED || p == 0.0 {
        return StageQuantities {
            attempt_prob: 1.0,
            backoff_slots: (w as f64 - 1.0) / 2.0,
        };
    }
    // The (d+1)-th busy slot lands exactly at its expectation.
    let t = ((d as f64 + 1.0) / p).ceil();
    let wf = w as f64;
    let k = t.min(wf); // backoff draws 0..k−1 attempt before the deadline
    StageQuantities {
        attempt_prob: k / wf,
        // b < k: b backoff slots then the attempt; b ≥ k: T slots then a
        // jump. (Σ_{b<k} b + (W−k)·T) / W, attempt slot excluded.
        backoff_slots: (k * (k - 1.0) / 2.0 + (wf - k) * t) / wf,
    }
}

/// The solved deterministic-deferral fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CanoMaloneFixedPoint {
    /// Number of stations.
    pub n: usize,
    /// Per-slot attempt probability.
    pub tau: f64,
    /// Busy/collision probability `1 − (1−τ)^(N−1)`.
    pub collision_probability: f64,
}

/// Deterministic-deferral reference model of `N` saturated stations.
#[derive(Debug, Clone, PartialEq)]
pub struct CanoMaloneModel {
    config: CsmaConfig,
}

impl CanoMaloneModel {
    /// Model with the given parameter table.
    pub fn new(config: CsmaConfig) -> Self {
        CanoMaloneModel { config }
    }

    /// Model with the paper's default CA1 table.
    pub fn default_ca1() -> Self {
        Self::new(CsmaConfig::ieee1901_ca01())
    }

    /// The parameter table.
    pub fn config(&self) -> &CsmaConfig {
        &self.config
    }

    /// The attempt rate implied by a busy probability.
    pub fn tau_of_p(&self, p: f64) -> f64 {
        let stages: Vec<StageQuantities> = (0..self.config.num_stages())
            .map(|i| {
                let sp = self.config.stage(i);
                stage_response(sp.cw, sp.dc, p)
            })
            .collect();
        let visits = stage_visit_counts(&stages, p);
        tau_from_stages(&stages, &visits)
    }

    /// Solve the fixed point for `n` stations.
    pub fn solve(&self, n: usize) -> CanoMaloneFixedPoint {
        assert!(n >= 1, "need at least one station");
        let m = self.config.num_stages();
        let tau = if n == 1 {
            self.tau_of_p(0.0)
        } else if self.config.stage(m - 1).cw == 1 {
            // A unit window in the (absorbing) last stage attempts every
            // slot, so the response sticks at τ = 1 and bisection has no
            // sign change: the fixed point is saturation itself.
            1.0
        } else {
            bisect_decreasing(1e-12, 1.0 - 1e-12, |tau: f64| {
                let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
                self.tau_of_p(p) - tau
            })
        };
        CanoMaloneFixedPoint {
            n,
            tau,
            collision_probability: if n == 1 {
                0.0
            } else {
                1.0 - (1.0 - tau).powi(n as i32 - 1)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model1901::{stage_quantities, Model1901};

    #[test]
    fn collapses_to_binomial_model_without_deferral() {
        // d = ∞: the deadline never exists, both per-stage responses are
        // the plain uniform backoff — the fixed points must coincide.
        let config = CsmaConfig::dcf_like(8, 4).unwrap();
        let reference = Model1901::new(config.clone());
        let cm = CanoMaloneModel::new(config);
        for n in [2usize, 5, 10, 50] {
            let a = reference.solve(n);
            let b = cm.solve(n);
            assert!(
                (a.tau - b.tau).abs() < 1e-10,
                "N={n}: binomial τ={:.12} vs deterministic τ={:.12}",
                a.tau,
                b.tau
            );
        }
    }

    #[test]
    fn stage_response_matches_binomial_at_p_one_d_zero() {
        // p = 1, d = 0: the deadline is slot 1, so only b = 0 attempts —
        // identical to the exact binomial stage.
        let det = stage_response(8, 0, 1.0);
        let bin = stage_quantities(8, 0, 1.0);
        assert!((det.attempt_prob - bin.attempt_prob).abs() < 1e-12);
        assert!((det.backoff_slots - bin.backoff_slots).abs() < 1e-12);
    }

    #[test]
    fn genuinely_disagrees_with_binomial_under_deferral() {
        // The whole point of the second reference: with deferral on, the
        // deterministic deadline is a *different* approximation. Same
        // ballpark, but measurably apart.
        let bin = Model1901::default_ca1();
        let det = CanoMaloneModel::default_ca1();
        let gamma_bin = bin.solve(10).collision_probability;
        let gamma_det = det.solve(10).collision_probability;
        let gap = (gamma_bin - gamma_det).abs();
        assert!(gap > 1e-3, "models should not coincide: gap {gap:.2e}");
        assert!(gap < 0.1, "models should stay comparable: gap {gap:.3}");
    }

    #[test]
    fn collision_probability_increases_with_n() {
        let det = CanoMaloneModel::default_ca1();
        let mut prev = 0.0;
        for n in 1..=30 {
            let fp = det.solve(n);
            assert!(fp.tau > 0.0 && fp.tau <= 1.0);
            assert!(fp.collision_probability >= prev - 1e-12);
            prev = fp.collision_probability;
        }
    }

    #[test]
    fn lone_station_sees_idle_channel() {
        let fp = CanoMaloneModel::default_ca1().solve(1);
        assert_eq!(fp.collision_probability, 0.0);
        assert!((fp.tau - 1.0 / 4.5).abs() < 1e-9);
    }

    #[test]
    fn unit_window_last_stage_saturates() {
        let cm = CanoMaloneModel::new(CsmaConfig::from_vectors(&[1], &[0]).unwrap());
        let fp = cm.solve(3);
        assert_eq!(fp.tau, 1.0);
        assert_eq!(fp.collision_probability, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        CanoMaloneModel::default_ca1().solve(0);
    }
}
