//! Multi-class mean-field (decoupling) fixed point with convergence
//! diagnostics — the solver behind the [`Backend::MeanField`] engine
//! backend in `plc-sim`.
//!
//! [`crate::model1901`] solves the single-class fixed point by scalar
//! bisection, which is bulletproof but does not generalize: with several
//! station classes (different CSMA schedules sharing one contention
//! domain, as in the ToN extension of the paper) the fixed point lives in
//! `[0,1]^C` and there is no scalar function to bisect. This module
//! solves the coupled system
//!
//! ```text
//! τ_c = F_c(p_c)                       (per-class renewal–reward response)
//! p_c = 1 − (1−τ_c)^(n_c−1) · Π_{c'≠c} (1−τ_{c'})^(n_{c'})
//! ```
//!
//! by damped iteration `τ ← τ + α (F(p(τ)) − τ)` with **adaptive
//! damping**: whenever the residual `max_c |F_c − τ_c|` grows, the step
//! size is halved (and recovers slowly on progress), which tames the
//! oscillation the plain map exhibits for aggressive schedules and large
//! `N`. The solver never fabricates an answer: if the residual does not
//! reach the tolerance within the iteration cap it returns a typed
//! [`plc_core::error::Error::Runtime`] carrying the diagnostics, and a
//! successful solve reports the iteration count and final residual in
//! [`SolverDiagnostics`].
//!
//! ## Validity envelope
//!
//! The decoupling assumption treats the busy process seen by a station as
//! i.i.d. across slots. That is exact as `N → ∞` and demonstrably wrong
//! at small `N`, where all stations restart together after every
//! transmission (see `decoupling_overestimates_at_small_n` in
//! [`crate::model1901`]). [`gamma_tolerance`] / [`throughput_tolerance`]
//! encode the documented error envelope used by the cross-validation
//! suite and the `validate-backends` experiment; see DESIGN.md §"Analytic
//! backends".
//!
//! [`Backend::MeanField`]: https://docs.rs/plc-sim

use crate::model1901::{stage_quantities_for, stage_visit_counts, tau_from_stages};
use crate::throughput::{normalized_throughput, SlotProbabilities};
use plc_core::config::CsmaConfig;
use plc_core::error::{Error, Result};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// One class of stations sharing a CSMA schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSpec {
    /// Display label carried into the solution (e.g. `"CA1"`).
    pub label: String,
    /// The class's backoff schedule.
    pub config: CsmaConfig,
    /// Number of stations in the class (≥ 1).
    pub n: usize,
}

/// Knobs of the damped fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Initial step size `α ∈ (0, 1]` of the damped update. Adaptively
    /// halved when the residual grows.
    pub damping: f64,
    /// Iteration cap; exceeding it is a typed error, not a silent return.
    pub max_iterations: u32,
    /// Convergence threshold on the residual `max_c |F_c(τ) − τ_c|`.
    pub tolerance: f64,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            damping: 0.5,
            max_iterations: 20_000,
            tolerance: 1e-12,
        }
    }
}

/// What the solver actually did — returned alongside every solution so a
/// caller can tell a crisp fixed point from a barely-converged one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverDiagnostics {
    /// Damped iterations performed.
    pub iterations: u32,
    /// Final residual `max_c |F_c(τ) − τ_c|` at the returned point.
    pub residual: f64,
    /// Whether the residual met the tolerance (always true for a returned
    /// solution; kept explicit for serialization into reports).
    pub converged: bool,
    /// Step size in effect when the solver stopped.
    pub final_damping: f64,
}

/// Per-class quantities at the solved fixed point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassFixedPoint {
    /// Label copied from the [`ClassSpec`].
    pub label: String,
    /// Stations in the class.
    pub n: usize,
    /// Per-slot attempt probability of one station of this class.
    pub tau: f64,
    /// Busy/collision probability seen by one station of this class.
    pub collision_probability: f64,
    /// Per-stage attempt probabilities `x_i` at the fixed point.
    pub stage_attempt_probs: Vec<f64>,
    /// Expected visits to each stage per renewal cycle.
    pub stage_visits: Vec<f64>,
    /// Long-run fraction of a station's backoff slots spent in each stage
    /// (the stationary occupancy of the drift ODE; sums to 1).
    pub stage_occupancy: Vec<f64>,
    /// Expected decision slots between successes of one tagged station
    /// (`Σ_i E_i (s_i + x_i)`); `∞` when the chain never succeeds.
    pub mean_access_delay_slots: f64,
}

/// A solved mean-field fixed point for one contention domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanFieldSolution {
    /// Per-class fixed points, in input order.
    pub classes: Vec<ClassFixedPoint>,
    /// Aggregate channel slot mix (idle / success / collision).
    pub slots: SlotProbabilities,
    /// Convergence diagnostics of the solve.
    pub diagnostics: SolverDiagnostics,
}

impl MeanFieldSolution {
    /// Total stations across all classes.
    pub fn total_stations(&self) -> usize {
        self.classes.iter().map(|c| c.n).sum()
    }

    /// Normalized throughput under `timing`.
    pub fn throughput(&self, timing: &MacTiming) -> f64 {
        normalized_throughput(&self.slots, timing)
    }

    /// Expected wall-clock duration of one decision slot in µs.
    pub fn expected_slot_us(&self, timing: &MacTiming) -> f64 {
        self.slots.idle * timing.slot.as_micros()
            + self.slots.success * timing.ts.as_micros()
            + self.slots.collision * timing.tc.as_micros()
    }
}

/// Multi-class mean-field model of one saturated contention domain.
///
/// ```
/// use plc_analysis::meanfield::MeanFieldModel;
/// use plc_core::config::CsmaConfig;
///
/// let sol = MeanFieldModel::new()
///     .class("CA1", CsmaConfig::ieee1901_ca01(), 5)
///     .class("CA3", CsmaConfig::ieee1901_ca23(), 3)
///     .solve()
///     .unwrap();
/// assert!(sol.diagnostics.converged);
/// assert!(sol.classes[1].tau > sol.classes[0].tau, "CA3 is more aggressive");
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeanFieldModel {
    classes: Vec<ClassSpec>,
    options: SolverOptions,
}

impl MeanFieldModel {
    /// An empty model; add classes with [`class`](Self::class).
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-class model — the shape the engine backend uses.
    pub fn single(config: CsmaConfig, n: usize) -> Self {
        Self::new().class("class0", config, n)
    }

    /// Add a station class.
    pub fn class(mut self, label: impl Into<String>, config: CsmaConfig, n: usize) -> Self {
        self.classes.push(ClassSpec {
            label: label.into(),
            config,
            n,
        });
        self
    }

    /// Override the solver options.
    pub fn options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// The configured classes.
    pub fn classes(&self) -> &[ClassSpec] {
        &self.classes
    }

    /// Solve the coupled fixed point.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfig`] for an empty model, an empty class, or
    /// out-of-range solver options; [`Error::Runtime`] when the damped
    /// iteration does not reach the tolerance within the iteration cap
    /// (the message carries the residual, iteration count and final step
    /// size).
    pub fn solve(&self) -> Result<MeanFieldSolution> {
        self.validate()?;
        let specs = &self.classes;
        let opts = &self.options;

        // Total-station count decides the coupling; a lone station sees
        // p = 0 exactly and needs no iteration.
        let total: usize = specs.iter().map(|s| s.n).sum();
        if total == 1 {
            let taus = vec![class_tau(&specs[0].config, 0.0)];
            return Ok(self.solution_at(&taus, 0, 0.0, opts.damping));
        }

        // Damped iteration with adaptive step size.
        let mut taus: Vec<f64> = specs.iter().map(|s| class_tau(&s.config, 0.5)).collect();
        let mut damping = opts.damping;
        let mut prev_residual = f64::INFINITY;
        let mut iterations = 0u32;
        let mut residual = f64::INFINITY;
        let mut converged = false;
        while iterations < opts.max_iterations {
            iterations += 1;
            let fresh: Vec<f64> = (0..specs.len())
                .map(|c| class_tau(&specs[c].config, busy_probability(&taus, specs, c)))
                .collect();
            residual = fresh
                .iter()
                .zip(&taus)
                .map(|(f, t)| (f - t).abs())
                .fold(0.0, f64::max);
            if residual <= opts.tolerance {
                // Stop *before* applying the update: the residual was
                // measured at exactly the point we return.
                converged = true;
                break;
            }
            if residual > prev_residual {
                damping = (damping * 0.5).max(1e-3);
            } else {
                damping = (damping * 1.1).min(opts.damping);
            }
            prev_residual = residual;
            for (t, f) in taus.iter_mut().zip(&fresh) {
                *t = (*t + damping * (f - *t)).clamp(0.0, 1.0);
            }
        }
        if !converged {
            return Err(Error::runtime(format!(
                "mean-field solver did not converge: residual {residual:.3e} after \
                 {iterations} iterations (tolerance {:.1e}, final damping {damping:.4})",
                opts.tolerance
            )));
        }
        Ok(self.solution_at(&taus, iterations, residual, damping))
    }

    fn validate(&self) -> Result<()> {
        if self.classes.is_empty() {
            return Err(Error::invalid_config(
                "mean-field model needs at least one station class",
            ));
        }
        for spec in &self.classes {
            if spec.n == 0 {
                return Err(Error::invalid_config(format!(
                    "class {:?} has zero stations",
                    spec.label
                )));
            }
            spec.config.validate()?;
        }
        let o = &self.options;
        if !(o.damping > 0.0 && o.damping <= 1.0) {
            return Err(Error::invalid_config(format!(
                "damping must be in (0, 1], got {}",
                o.damping
            )));
        }
        if o.max_iterations == 0 {
            return Err(Error::invalid_config("max_iterations must be ≥ 1"));
        }
        // NaN must fail too, so the comparison is written to reject it.
        let tolerance_ok = o.tolerance > 0.0;
        if !tolerance_ok {
            return Err(Error::invalid_config(format!(
                "tolerance must be positive, got {}",
                o.tolerance
            )));
        }
        Ok(())
    }

    /// Assemble the full solution at converged attempt rates.
    fn solution_at(
        &self,
        taus: &[f64],
        iterations: u32,
        residual: f64,
        final_damping: f64,
    ) -> MeanFieldSolution {
        let specs = &self.classes;
        let classes = specs
            .iter()
            .enumerate()
            .map(|(c, spec)| {
                let p = busy_probability(taus, specs, c);
                let stages = stage_quantities_for(&spec.config, p);
                let visits = stage_visit_counts(&stages, p);
                // Occupancy weights: expected slots per cycle in each
                // stage. When the chain diverges (p → 1), all mass sits
                // in the absorbing last stage.
                let weights: Vec<f64> = stages
                    .iter()
                    .zip(&visits)
                    .map(|(s, v)| v * (s.backoff_slots + s.attempt_prob))
                    .collect();
                let cycle_slots: f64 = weights.iter().sum();
                let m = stages.len();
                let stage_occupancy = if cycle_slots.is_finite() && cycle_slots > 0.0 {
                    weights.iter().map(|w| w / cycle_slots).collect()
                } else {
                    let mut occ = vec![0.0; m];
                    occ[m - 1] = 1.0;
                    occ
                };
                ClassFixedPoint {
                    label: spec.label.clone(),
                    n: spec.n,
                    tau: taus[c],
                    collision_probability: p,
                    stage_attempt_probs: stages.iter().map(|s| s.attempt_prob).collect(),
                    stage_visits: visits,
                    stage_occupancy,
                    mean_access_delay_slots: cycle_slots,
                }
            })
            .collect();
        MeanFieldSolution {
            classes,
            slots: aggregate_slots(taus, specs),
            diagnostics: SolverDiagnostics {
                iterations,
                residual,
                converged: true,
                final_damping,
            },
        }
    }
}

/// The per-class renewal–reward response `τ = F(p)`.
fn class_tau(config: &CsmaConfig, p: f64) -> f64 {
    let stages = stage_quantities_for(config, p);
    let visits = stage_visit_counts(&stages, p);
    tau_from_stages(&stages, &visits)
}

/// Busy probability seen by one station of class `c`: the chance that any
/// of the other `n_c − 1` same-class stations or any station of another
/// class attempts in a slot. Computed as an explicit product so a class
/// at `τ = 1` never divides by zero.
fn busy_probability(taus: &[f64], specs: &[ClassSpec], c: usize) -> f64 {
    let mut others_idle = 1.0;
    for (k, spec) in specs.iter().enumerate() {
        let exp = if k == c {
            spec.n as i32 - 1
        } else {
            spec.n as i32
        };
        others_idle *= (1.0 - taus[k]).powi(exp);
    }
    (1.0 - others_idle).clamp(0.0, 1.0)
}

/// Aggregate channel slot mix for heterogeneous classes.
fn aggregate_slots(taus: &[f64], specs: &[ClassSpec]) -> SlotProbabilities {
    let idle: f64 = taus
        .iter()
        .zip(specs)
        .map(|(t, s)| (1.0 - t).powi(s.n as i32))
        .product();
    let mut success = 0.0;
    for (c, spec) in specs.iter().enumerate() {
        // Exactly one station of class c attempts, everyone else idles.
        let mut term = spec.n as f64 * taus[c] * (1.0 - taus[c]).powi(spec.n as i32 - 1);
        for (k, other) in specs.iter().enumerate() {
            if k != c {
                term *= (1.0 - taus[k]).powi(other.n as i32);
            }
        }
        success += term;
    }
    SlotProbabilities {
        idle,
        success,
        collision: (1.0 - idle - success).max(0.0),
    }
}

/// Documented error envelope of the decoupling approximation on the
/// **collision probability** γ, as a function of the domain's station
/// count. Calibrated against the slotted engine (see DESIGN.md §"Analytic
/// backends"): at small `N` all stations restart together after every
/// transmission, the busy process is strongly correlated across slots,
/// and the model overestimates γ by up to ≈ 0.05; the error decays as
/// stations decorrelate.
pub fn gamma_tolerance(n: usize) -> f64 {
    match n {
        0..=4 => 0.065,
        5..=9 => 0.055,
        10..=29 => 0.035,
        _ => 0.02,
    }
}

/// Documented error envelope on **normalized throughput** — less
/// sensitive than γ because throughput depends on the slot mix, not the
/// per-station busy view.
pub fn throughput_tolerance(n: usize) -> f64 {
    match n {
        0..=9 => 0.05,
        10..=49 => 0.03,
        _ => 0.02,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model1901::Model1901;

    #[test]
    fn single_class_matches_bisection() {
        // The adversarial anchor: the damped multi-class solver must land
        // on the same fixed point the scalar bisection finds.
        let model = Model1901::default_ca1();
        for n in [2usize, 3, 5, 10, 50, 200, 1000] {
            let fp = model.solve(n);
            let sol = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), n)
                .solve()
                .unwrap();
            let mf = &sol.classes[0];
            assert!(
                (mf.tau - fp.tau).abs() < 1e-8,
                "N={n}: mean-field τ={:.10} vs bisection τ={:.10}",
                mf.tau,
                fp.tau
            );
            assert!((mf.collision_probability - fp.collision_probability).abs() < 1e-7);
            assert!(sol.diagnostics.converged);
            assert!(sol.diagnostics.residual <= 1e-12);
        }
    }

    #[test]
    fn lone_station_sees_idle_channel() {
        let sol = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 1)
            .solve()
            .unwrap();
        let c = &sol.classes[0];
        assert_eq!(c.collision_probability, 0.0);
        assert!((c.tau - 1.0 / 4.5).abs() < 1e-12, "τ = 1/(3.5 + 1)");
        assert!(sol.diagnostics.converged);
        assert_eq!(sol.diagnostics.iterations, 0);
    }

    #[test]
    fn symmetric_split_equals_single_class() {
        // 2 + 3 stations of the same schedule must behave exactly like a
        // single class of 5.
        let single = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 5)
            .solve()
            .unwrap();
        let split = MeanFieldModel::new()
            .class("a", CsmaConfig::ieee1901_ca01(), 2)
            .class("b", CsmaConfig::ieee1901_ca01(), 3)
            .solve()
            .unwrap();
        for c in &split.classes {
            assert!((c.tau - single.classes[0].tau).abs() < 1e-8);
            assert!(
                (c.collision_probability - single.classes[0].collision_probability).abs() < 1e-7
            );
        }
        assert!((split.slots.success - single.slots.success).abs() < 1e-8);
    }

    #[test]
    fn aggregate_matches_from_tau_for_single_class() {
        let sol = MeanFieldModel::single(CsmaConfig::ieee1901_ca23(), 8)
            .solve()
            .unwrap();
        let direct = SlotProbabilities::from_tau(sol.classes[0].tau, 8);
        assert!((sol.slots.idle - direct.idle).abs() < 1e-12);
        assert!((sol.slots.success - direct.success).abs() < 1e-12);
        assert!((sol.slots.collision - direct.collision).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_classes_order_sensibly() {
        // CA2/CA3 caps CW at 32 → more aggressive than CA0/CA1 in the
        // same domain.
        let sol = MeanFieldModel::new()
            .class("CA1", CsmaConfig::ieee1901_ca01(), 5)
            .class("CA3", CsmaConfig::ieee1901_ca23(), 5)
            .solve()
            .unwrap();
        let (ca1, ca3) = (&sol.classes[0], &sol.classes[1]);
        assert!(ca3.tau > ca1.tau);
        for c in &sol.classes {
            assert!(c.tau > 0.0 && c.tau < 1.0);
            assert!(c.collision_probability > 0.0 && c.collision_probability < 1.0);
        }
        let s = &sol.slots;
        assert!((s.idle + s.success + s.collision - 1.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_is_a_distribution() {
        let sol = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 10)
            .solve()
            .unwrap();
        let occ = &sol.classes[0].stage_occupancy;
        assert_eq!(occ.len(), 4);
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(occ.iter().all(|&o| (0.0..=1.0).contains(&o)));
        assert!(sol.classes[0].mean_access_delay_slots > 0.0);
    }

    #[test]
    fn non_convergence_is_a_typed_error() {
        let err = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 50)
            .options(SolverOptions {
                damping: 0.5,
                max_iterations: 2,
                tolerance: 1e-15,
            })
            .solve()
            .unwrap_err();
        assert!(
            matches!(err, Error::Runtime { .. }),
            "expected Runtime, got {err:?}"
        );
        assert!(err.to_string().contains("did not converge"));
    }

    #[test]
    fn invalid_inputs_are_config_errors() {
        let empty = MeanFieldModel::new().solve().unwrap_err();
        assert!(matches!(empty, Error::InvalidConfig { .. }));
        let zero = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 0)
            .solve()
            .unwrap_err();
        assert!(matches!(zero, Error::InvalidConfig { .. }));
        let bad_opts = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 2)
            .options(SolverOptions {
                damping: 0.0,
                max_iterations: 10,
                tolerance: 1e-9,
            })
            .solve()
            .unwrap_err();
        assert!(matches!(bad_opts, Error::InvalidConfig { .. }));
    }

    #[test]
    fn tolerances_decay_with_n() {
        assert!(gamma_tolerance(2) >= gamma_tolerance(5));
        assert!(gamma_tolerance(5) >= gamma_tolerance(10));
        assert!(gamma_tolerance(10) >= gamma_tolerance(200));
        assert!(throughput_tolerance(5) >= throughput_tolerance(500));
    }

    #[test]
    fn fleet_scale_class_is_cheap_and_finite() {
        // The backend's 10k-station shape: cost is independent of n.
        let sol = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 10_000)
            .solve()
            .unwrap();
        // τ tends to the last stage's p→1 attempt rate ≈ 0.0177 (16 of 64
        // draws attempt, ≈ 13.9 slots spent), not to zero.
        let c = &sol.classes[0];
        assert!(c.tau > 0.0 && c.tau < 0.05);
        // (1 − τ)^9999 ≈ 1e−78: p rounds to exactly 1.0 in f64.
        assert!(c.collision_probability > 0.99 && c.collision_probability <= 1.0);
        assert!(sol.slots.success > 0.0);
    }
}
