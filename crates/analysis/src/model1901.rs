//! Decoupling-assumption fixed-point model of the IEEE 1901 backoff
//! process — the "Analysis" curve of Figure 2, following the modelling
//! approach of the paper's companion analysis (Vlachou et al., ICNP 2014
//! — reference \[5\] of the report).
//!
//! ## Model
//!
//! Consider `N` saturated stations in one contention domain. Under the
//! decoupling assumption each station sees, in every backoff slot, an
//! i.i.d. probability
//!
//! ```text
//! p = 1 − (1 − τ)^(N−1)
//! ```
//!
//! that *some other* station transmits (the slot is "busy" / a
//! transmission attempt collides), where `τ` is the per-slot attempt
//! probability of a station. The 1901 per-stage behaviour then yields, for
//! stage `i` with window `W_i` and deferral value `d_i`:
//!
//! * **attempt probability** — entering stage `i`, the station draws
//!   `BC = b ~ U{0…W_i−1}` and attempts iff at most `d_i` of those `b`
//!   pre-attempt slots are busy (otherwise the deferral counter expires
//!   first and it jumps):
//!   `x_i = (1/W_i) Σ_b P(Bin(b, p) ≤ d_i)`;
//! * **expected slots spent** — the station leaves stage `i` after
//!   `min(b, T)` backoff slots, `T` the arrival slot of the `(d_i+1)`-th
//!   busy slot:
//!   `s_i = (1/W_i) Σ_b Σ_{t<b} P(Bin(t, p) ≤ d_i)`, plus one slot for the
//!   attempt itself when it happens;
//! * **stage chain** — a stage visit ends the renewal cycle with
//!   probability `q_i = x_i (1−p)` (attempt and succeed); otherwise the
//!   station moves to stage `min(i+1, m−1)`.
//!
//! Renewal–reward over a success-to-success cycle gives
//! `τ = Σ E_i x_i / Σ E_i (s_i + x_i)` with `E_i` the expected visits to
//! stage `i` per cycle; the fixed point in `τ` is unique because the
//! right-hand side is strictly decreasing in `τ`, so bisection converges
//! unconditionally.
//!
//! Setting every `d_i = ∞` recovers a Bianchi-style model of
//! binary-exponential backoff (cross-checked against the closed form in
//! [`crate::bianchi`]).

use crate::math::{bisect_decreasing, BinomialCdfTracker};
use crate::throughput::{normalized_throughput, SlotProbabilities};
use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// Per-stage quantities at a given busy probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageQuantities {
    /// Probability of attempting a transmission during a visit to this
    /// stage (vs jumping via the deferral counter).
    pub attempt_prob: f64,
    /// Expected backoff slots spent during a visit (excluding the attempt
    /// slot).
    pub backoff_slots: f64,
}

/// Compute `x_i` and `s_i` for one stage. O(W · d).
pub fn stage_quantities(w: u32, d: u32, p: f64) -> StageQuantities {
    assert!(w >= 1);
    assert!(
        (0.0..=1.0).contains(&p),
        "busy probability out of range: {p}"
    );
    if d == DC_DISABLED || p == 0.0 {
        // No deferral (or never busy): always attempts, mean backoff
        // (W−1)/2.
        return StageQuantities {
            attempt_prob: 1.0,
            backoff_slots: (w as f64 - 1.0) / 2.0,
        };
    }
    // x = (1/W) Σ_{b=0}^{W-1} C(b),   C(b) = P(Bin(b,p) ≤ d)
    // s = (1/W) Σ_{b=0}^{W-1} Σ_{t=0}^{b-1} C(t)
    //   = (1/W) Σ_{t=0}^{W-2} (W-1-t) · C(t)
    let mut tracker = BinomialCdfTracker::new(p, d);
    let wf = w as f64;
    let mut x_sum = 0.0;
    let mut s_sum = 0.0;
    for b in 0..w as u64 {
        let c = tracker.cdf(); // C(b)
        x_sum += c;
        if b + 1 < w as u64 {
            s_sum += (w as f64 - 1.0 - b as f64) * c;
        }
        tracker.step();
    }
    StageQuantities {
        attempt_prob: x_sum / wf,
        backoff_slots: s_sum / wf,
    }
}

/// Per-stage quantities for every stage of `config` at busy probability
/// `p` (saturating stage lookup, like the engine's BPC rule).
pub(crate) fn stage_quantities_for(config: &CsmaConfig, p: f64) -> Vec<StageQuantities> {
    (0..config.num_stages())
        .map(|i| {
            let sp = config.stage(i);
            stage_quantities(sp.cw, sp.dc, p)
        })
        .collect()
}

/// Expected visits per renewal cycle to each stage, given per-stage
/// quantities and collision probability `p`.
pub(crate) fn stage_visit_counts(stages: &[StageQuantities], p: f64) -> Vec<f64> {
    let m = stages.len();
    let q: Vec<f64> = stages.iter().map(|s| s.attempt_prob * (1.0 - p)).collect();
    let mut visits = vec![0.0; m];
    if m == 1 {
        visits[0] = if q[0] > 0.0 {
            1.0 / q[0]
        } else {
            f64::INFINITY
        };
        return visits;
    }
    visits[0] = 1.0;
    for i in 1..m - 1 {
        visits[i] = visits[i - 1] * (1.0 - q[i - 1]);
    }
    // Last stage self-loops: entries · expected residencies per entry.
    let entries = visits[m - 2] * (1.0 - q[m - 2]);
    visits[m - 1] = if q[m - 1] > 0.0 {
        entries / q[m - 1]
    } else {
        f64::INFINITY
    };
    visits
}

/// Renewal–reward attempt rate `τ` of a stage chain. Degenerates to the
/// last stage's attempt rate when the visit counts diverge (`p → 1`: no
/// attempt ever succeeds and the chain lives in the absorbing last stage).
pub(crate) fn tau_from_stages(stages: &[StageQuantities], visits: &[f64]) -> f64 {
    if visits.iter().any(|v| !v.is_finite()) {
        let last = stages.last().expect("at least one stage");
        return last.attempt_prob / (last.backoff_slots + last.attempt_prob);
    }
    let mut attempts = 0.0;
    let mut slots = 0.0;
    for (i, st) in stages.iter().enumerate() {
        attempts += visits[i] * st.attempt_prob;
        slots += visits[i] * (st.backoff_slots + st.attempt_prob);
    }
    attempts / slots
}

/// The solved fixed point for a configuration and station count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedPoint {
    /// Number of stations.
    pub n: usize,
    /// Per-slot attempt probability of a station.
    pub tau: f64,
    /// Busy/collision probability seen by a station
    /// (`1 − (1−τ)^(N−1)`) — the Figure 2 quantity.
    pub collision_probability: f64,
    /// Per-stage attempt probabilities at the fixed point.
    pub stage_attempt_probs: Vec<f64>,
    /// Expected visits to each stage per renewal cycle.
    pub stage_visits: Vec<f64>,
}

/// Analytical model of `N` saturated stations running `config`.
#[derive(Debug, Clone, PartialEq)]
pub struct Model1901 {
    config: CsmaConfig,
}

impl Model1901 {
    /// Model with the given parameter table.
    pub fn new(config: CsmaConfig) -> Self {
        Model1901 { config }
    }

    /// Model with the paper's default CA1 table.
    pub fn default_ca1() -> Self {
        Self::new(CsmaConfig::ieee1901_ca01())
    }

    /// The parameter table.
    pub fn config(&self) -> &CsmaConfig {
        &self.config
    }

    /// The attempt rate `τ(p)` implied by a given busy probability — the
    /// right-hand side of the fixed-point equation.
    pub fn tau_of_p(&self, p: f64) -> f64 {
        let stages = stage_quantities_for(&self.config, p);
        let visits = stage_visit_counts(&stages, p);
        tau_from_stages(&stages, &visits)
    }

    /// Solve the fixed point for `n` stations.
    pub fn solve(&self, n: usize) -> FixedPoint {
        assert!(n >= 1, "need at least one station");
        let tau = if n == 1 {
            // Alone: p = 0, τ = 1/(s₀ + 1).
            self.tau_of_p(0.0)
        } else {
            let f = |tau: f64| {
                let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
                self.tau_of_p(p) - tau
            };
            bisect_decreasing(1e-12, 1.0 - 1e-12, f)
        };
        let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
        let stages = stage_quantities_for(&self.config, p);
        FixedPoint {
            n,
            tau,
            collision_probability: p,
            stage_attempt_probs: stages.iter().map(|s| s.attempt_prob).collect(),
            stage_visits: stage_visit_counts(&stages, p),
        }
    }

    /// Normalized throughput predicted for `n` stations under `timing`.
    pub fn throughput(&self, n: usize, timing: &MacTiming) -> f64 {
        let fp = self.solve(n);
        let probs = SlotProbabilities::from_tau(fp.tau, n);
        normalized_throughput(&probs, timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_quantities_no_deferral() {
        let q = stage_quantities(16, DC_DISABLED, 0.5);
        assert_eq!(q.attempt_prob, 1.0);
        assert_eq!(q.backoff_slots, 7.5);
    }

    #[test]
    fn stage_quantities_p_zero() {
        let q = stage_quantities(8, 0, 0.0);
        assert_eq!(q.attempt_prob, 1.0);
        assert_eq!(q.backoff_slots, 3.5);
    }

    #[test]
    fn stage_quantities_d0_closed_form() {
        // d = 0: attempt iff no busy slot among b, so
        // x = (1/W) Σ_b (1−p)^b = (1 − (1−p)^W) / (W p).
        let (w, p) = (8u32, 0.3);
        let q = stage_quantities(w, 0, p);
        let expected = (1.0 - (1.0 - p).powi(w as i32)) / (w as f64 * p);
        assert!((q.attempt_prob - expected).abs() < 1e-12);
        // s = (1/W) Σ_{t=0}^{W-2} (W-1-t)(1-p)^t — check numerically.
        let s_direct: f64 = (0..w - 1)
            .map(|t| (w as f64 - 1.0 - t as f64) * (1.0 - p).powi(t as i32))
            .sum::<f64>()
            / w as f64;
        assert!((q.backoff_slots - s_direct).abs() < 1e-12);
    }

    #[test]
    fn stage_quantities_extreme_p() {
        // p = 1, d = 0: attempt only if b = 0 → x = 1/W; every b ≥ 1 leaves
        // at the first slot → s = (W−1)/W.
        let q = stage_quantities(8, 0, 1.0);
        assert!((q.attempt_prob - 1.0 / 8.0).abs() < 1e-12);
        assert!((q.backoff_slots - 7.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn monotonicity_in_p() {
        // Busier channel → fewer attempts, fewer slots spent per stage.
        let mut prev = stage_quantities(16, 3, 0.0);
        for k in 1..=10 {
            let q = stage_quantities(16, 3, k as f64 / 10.0);
            assert!(q.attempt_prob <= prev.attempt_prob + 1e-12);
            assert!(q.backoff_slots <= prev.backoff_slots + 1e-12);
            prev = q;
        }
    }

    #[test]
    fn single_station_tau() {
        // N = 1: τ = 1/(E[b] + 1) with E[b] = 3.5 for CW₀ = 8.
        let fp = Model1901::default_ca1().solve(1);
        assert!((fp.tau - 1.0 / 4.5).abs() < 1e-9);
        assert_eq!(fp.collision_probability, 0.0);
    }

    #[test]
    fn decoupling_overestimates_at_small_n() {
        // The documented failure mode of naive decoupling for 1901 (the
        // modelling question the paper line studies): at small N the i.i.d.
        // attempt assumption ignores that all stations restart together
        // after each transmission with the recent loser pushed to a larger
        // window, so the model *overestimates* the collision probability.
        // The round model in `crate::round_model` fixes this; here we pin
        // the overestimate so regressions in either direction are caught.
        let model = Model1901::default_ca1();
        let paper = [(2, 0.074), (3, 0.134), (5, 0.218), (7, 0.267)];
        for (n, target) in paper {
            let fp = model.solve(n);
            assert!(
                fp.collision_probability > target,
                "N={n}: decoupled {:.4} should overestimate paper ≈ {target}",
                fp.collision_probability
            );
            assert!(
                (fp.collision_probability - target) < 0.05,
                "N={n}: decoupled {:.4} should stay within +0.05 of {target}",
                fp.collision_probability
            );
        }
        // The error shrinks as N grows (stations decorrelate).
        let err = |n: usize, t: f64| model.solve(n).collision_probability - t;
        assert!(err(7, 0.267) < err(2, 0.074));
    }

    #[test]
    fn collision_probability_increases_with_n() {
        let model = Model1901::default_ca1();
        let mut prev = 0.0;
        for n in 1..=20 {
            let fp = model.solve(n);
            assert!(fp.collision_probability >= prev);
            assert!(fp.tau > 0.0 && fp.tau < 1.0);
            prev = fp.collision_probability;
        }
    }

    #[test]
    fn tau_tracks_simulation_even_where_gamma_does_not() {
        // The decoupled model's *attempt rate* is close to the truth; it is
        // the γ = 1−(1−τ)^(N−1) link that breaks at small N. Measure τ from
        // the engine (attempts per decision slot per station) and compare.
        use plc_sim::runner::Simulation;
        let model = Model1901::default_ca1();
        for n in [2usize, 5] {
            let r = Simulation::ieee1901(n).horizon_us(2e7).seed(7).run();
            let m = &r.metrics;
            let decision_slots = m.idle_slots + m.successes + m.collision_events;
            let tau_sim = (m.successes + m.collided_tx) as f64 / (decision_slots as f64 * n as f64);
            let fp = model.solve(n);
            assert!(
                (fp.tau - tau_sim).abs() < 0.012,
                "N={n}: model τ={:.4} vs sim τ={tau_sim:.4}",
                fp.tau
            );
        }
    }

    #[test]
    fn throughput_prediction_roughly_tracks_simulation() {
        // Throughput is less sensitive to the γ error than the collision
        // probability; the decoupled model stays within a few percent.
        use plc_sim::paper::PaperSim;
        let model = Model1901::default_ca1();
        let timing = MacTiming::paper_default();
        for n in [1usize, 3, 5] {
            let s_model = model.throughput(n, &timing);
            let s_sim = PaperSim::with_n_and_time(n, 2e7)
                .run(5)
                .unwrap()
                .norm_throughput;
            assert!(
                (s_model - s_sim).abs() < 0.05,
                "N={n}: model S={s_model:.4} vs sim S={s_sim:.4}"
            );
        }
    }

    #[test]
    fn ca23_collides_more_at_high_n() {
        // The CA2/CA3 table caps CW at 32 → more collisions than CA0/CA1
        // when many stations contend.
        let ca01 = Model1901::default_ca1();
        let ca23 = Model1901::new(CsmaConfig::ieee1901_ca23());
        let p01 = ca01.solve(10).collision_probability;
        let p23 = ca23.solve(10).collision_probability;
        assert!(p23 > p01, "CA2/CA3 {p23} vs CA0/CA1 {p01}");
    }

    #[test]
    fn stage_visits_sane() {
        let fp = Model1901::default_ca1().solve(5);
        assert_eq!(fp.stage_visits.len(), 4);
        assert!(
            (fp.stage_visits[0] - 1.0).abs() < 1e-12,
            "stage 0 visited once per cycle"
        );
        for v in &fp.stage_visits {
            assert!(v.is_finite() && *v >= 0.0);
        }
        for x in &fp.stage_attempt_probs {
            assert!(*x > 0.0 && *x <= 1.0);
        }
    }

    #[test]
    fn deferral_lowers_attempt_rate_vs_matched_windows() {
        // Same windows, deferral on vs off: deferral reduces τ (stations
        // escalate without attempting), hence reduces collisions.
        let with_dc = Model1901::default_ca1().solve(5);
        let without_dc = Model1901::new(CsmaConfig::dcf_like(8, 4).unwrap()).solve(5);
        assert!(with_dc.tau < without_dc.tau);
        assert!(with_dc.collision_probability < without_dc.collision_probability);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        Model1901::default_ca1().solve(0);
    }
}
