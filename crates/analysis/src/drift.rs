//! Drift ODE for the transient dynamics of the 1901 backoff process,
//! and the delay distribution of the mean-field backend.
//!
//! The mean-field fixed point ([`crate::meanfield`]) describes the
//! *stationary* regime. The ToN extension of the paper ("How CSMA/CA
//! With Deferral Affects Performance and Dynamics in Power-Line
//! Communications") studies the *transient*: how the population of
//! stations distributes over backoff stages after a perturbation, which
//! is where short-term unfairness and coupling live. In the large-`N`
//! mean-field limit the empirical stage occupancy `θ(t)` (fraction of
//! stations in each stage) follows a deterministic drift ODE.
//!
//! ## The drift field
//!
//! At busy probability `p`, a station visiting stage `i` attempts with
//! probability `x_i` and spends `ℓ_i = s_i + x_i` slots; the per-slot
//! hazards of a station *currently in* stage `i` are therefore
//!
//! ```text
//! a_i = x_i / ℓ_i          (attempt this slot)
//! j_i = (1 − x_i) / ℓ_i    (deferral expiry: jump without attempting)
//! ```
//!
//! A successful attempt (probability `1 − p`) restarts at stage 0; a
//! collided attempt or a jump moves to stage `min(i+1, m−1)`. The busy
//! probability itself is tied to the occupancy through the instantaneous
//! attempt rate `τ̄(θ) = Σ_i θ_i a_i(p)` and `p = 1 − (1 − τ̄)^(N−1)`,
//! a scalar consistency equation solved by bisection inside every
//! derivative evaluation. The stationary point of this field is exactly
//! the mean-field fixed point (pinned by a test below).
//!
//! ## Delay distribution
//!
//! Freezing `p` at the fixed point turns the stage process of one tagged
//! station into an absorbing DTMC (absorption = successful attempt),
//! whose absorption-time distribution is the per-packet access delay in
//! decision slots. [`access_delay_distribution`] walks it slot by slot;
//! [`delay_summary`] converts to microseconds using the tagged station's
//! expected slot duration and extracts quantiles — this is what the
//! `MeanField` engine backend reports.

use crate::math::bisect_decreasing_iters;
use crate::model1901::stage_quantities_for;
use plc_core::config::CsmaConfig;
use plc_core::error::{Error, Result};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// Per-slot hazards of every stage at one busy probability.
fn hazards(config: &CsmaConfig, p: f64) -> Vec<(f64, f64)> {
    stage_quantities_for(config, p)
        .iter()
        .map(|s| {
            // ℓ ≥ x ≥ 1/W > 0: the denominator never vanishes.
            let l = s.backoff_slots + s.attempt_prob;
            (s.attempt_prob / l, (1.0 - s.attempt_prob) / l)
        })
        .collect()
}

/// Mean-field drift ODE of `n` saturated stations running `config`.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftModel {
    config: CsmaConfig,
    n: usize,
}

/// A sampled trajectory of the drift ODE.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftTrajectory {
    /// Integration step in slots.
    pub dt: f64,
    /// Stage occupancy at each sample (index 0 = the initial state).
    pub occupancy: Vec<Vec<f64>>,
    /// Instantaneous attempt rate `τ̄(θ)` at each sample.
    pub tau: Vec<f64>,
    /// Instantaneous busy probability at each sample.
    pub busy: Vec<f64>,
}

impl DriftModel {
    /// Model for `n ≥ 1` stations.
    pub fn new(config: CsmaConfig, n: usize) -> Result<Self> {
        if n == 0 {
            return Err(Error::invalid_config(
                "drift model needs at least one station",
            ));
        }
        config.validate()?;
        Ok(DriftModel { config, n })
    }

    /// Number of backoff stages.
    pub fn num_stages(&self) -> usize {
        self.config.num_stages()
    }

    /// The fresh-start occupancy: everyone in stage 0.
    pub fn fresh_start(&self) -> Vec<f64> {
        let mut occ = vec![0.0; self.num_stages()];
        occ[0] = 1.0;
        occ
    }

    /// Uniform occupancy over the stages.
    pub fn uniform_start(&self) -> Vec<f64> {
        vec![1.0 / self.num_stages() as f64; self.num_stages()]
    }

    /// The busy probability consistent with occupancy `occ`: the root of
    /// `1 − (1 − τ̄(p))^(N−1) − p`, solved by bisection (both endpoints
    /// have the required signs, so the solve cannot fail).
    pub fn consistent_busy(&self, occ: &[f64]) -> f64 {
        if self.n == 1 {
            return 0.0;
        }
        let f = |p: f64| {
            let tau = self.attempt_rate(occ, p);
            1.0 - (1.0 - tau).powi(self.n as i32 - 1) - p
        };
        bisect_decreasing_iters(0.0, 1.0, 60, f)
    }

    /// Instantaneous attempt rate `τ̄(θ) = Σ_i θ_i a_i(p)`.
    pub fn attempt_rate(&self, occ: &[f64], p: f64) -> f64 {
        hazards(&self.config, p)
            .iter()
            .zip(occ)
            .map(|((a, _), th)| th * a)
            .sum()
    }

    /// The drift field `dθ/dt` at occupancy `occ` (time in slots).
    pub fn derivative(&self, occ: &[f64]) -> Vec<f64> {
        let m = self.num_stages();
        assert_eq!(occ.len(), m, "occupancy dimension mismatch");
        let p = self.consistent_busy(occ);
        let haz = hazards(&self.config, p);
        let mut d = vec![0.0; m];
        for (i, &(a, j)) in haz.iter().enumerate() {
            let next = (i + 1).min(m - 1);
            let outflow = occ[i] * (a + j);
            d[i] -= outflow;
            // Success restarts at stage 0; collision or jump escalates.
            d[0] += occ[i] * a * (1.0 - p);
            d[next] += occ[i] * (a * p + j);
        }
        d
    }

    /// One RK4 step of size `dt` slots, projected back onto the simplex
    /// (clamping and renormalization guard floating-point drift only;
    /// the field itself conserves mass).
    pub fn rk4_step(&self, occ: &[f64], dt: f64) -> Vec<f64> {
        let add = |a: &[f64], b: &[f64], w: f64| -> Vec<f64> {
            a.iter().zip(b).map(|(x, y)| x + w * y).collect()
        };
        let k1 = self.derivative(occ);
        let k2 = self.derivative(&add(occ, &k1, dt / 2.0));
        let k3 = self.derivative(&add(occ, &k2, dt / 2.0));
        let k4 = self.derivative(&add(occ, &k3, dt));
        let mut next: Vec<f64> = occ
            .iter()
            .enumerate()
            .map(|(i, &o)| o + dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]))
            .collect();
        for v in &mut next {
            *v = v.max(0.0);
        }
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for v in &mut next {
                *v /= total;
            }
        }
        next
    }

    /// Integrate `steps` RK4 steps of size `dt` from `start`, sampling
    /// every state (including the initial one).
    pub fn trajectory(&self, start: &[f64], dt: f64, steps: usize) -> DriftTrajectory {
        let mut occ = normalize(start);
        let mut traj = DriftTrajectory {
            dt,
            occupancy: Vec::with_capacity(steps + 1),
            tau: Vec::with_capacity(steps + 1),
            busy: Vec::with_capacity(steps + 1),
        };
        for _ in 0..=steps {
            let p = self.consistent_busy(&occ);
            traj.busy.push(p);
            traj.tau.push(self.attempt_rate(&occ, p));
            traj.occupancy.push(occ.clone());
            occ = self.rk4_step(&occ, dt);
        }
        traj
    }

    /// Integrate until the drift field's max component drops below `tol`
    /// and return the equilibrium occupancy.
    ///
    /// # Errors
    ///
    /// [`Error::Runtime`] when `max_steps` RK4 steps of size `dt` do not
    /// reach the tolerance.
    pub fn relax(&self, start: &[f64], dt: f64, max_steps: usize, tol: f64) -> Result<Vec<f64>> {
        let mut occ = normalize(start);
        for _ in 0..max_steps {
            let d = self.derivative(&occ);
            if d.iter().all(|v| v.abs() < tol) {
                return Ok(occ);
            }
            occ = self.rk4_step(&occ, dt);
        }
        Err(Error::runtime(format!(
            "drift relaxation did not reach |dθ/dt| < {tol:.1e} within {max_steps} steps"
        )))
    }
}

fn normalize(occ: &[f64]) -> Vec<f64> {
    assert!(!occ.is_empty(), "occupancy must be non-empty");
    assert!(
        occ.iter().all(|&v| v >= 0.0 && v.is_finite()),
        "occupancy entries must be finite and non-negative"
    );
    let total: f64 = occ.iter().sum();
    assert!(total > 0.0, "occupancy must have positive mass");
    occ.iter().map(|v| v / total).collect()
}

/// Access-delay distribution of one tagged station at frozen busy
/// probability `p`, in decision slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelayDistribution {
    /// `pmf[t]` = P(success exactly `t + 1` slots after the backoff
    /// started).
    pub pmf: Vec<f64>,
    /// `(slots, P(delay ≤ slots))` pairs, one per slot.
    pub cdf: Vec<(f64, f64)>,
    /// Mean delay in slots, conditioned on absorption within the walked
    /// horizon.
    pub mean_slots: f64,
    /// Probability mass beyond the walked horizon.
    pub truncated_mass: f64,
}

/// Walk the absorbing stage DTMC for `max_slots` slots.
pub fn access_delay_distribution(
    config: &CsmaConfig,
    p: f64,
    max_slots: usize,
) -> DelayDistribution {
    let haz = hazards(config, p);
    let m = haz.len();
    let mut pi = vec![0.0; m];
    pi[0] = 1.0;
    let mut pmf = Vec::with_capacity(max_slots);
    let mut cdf = Vec::with_capacity(max_slots);
    let mut absorbed = 0.0;
    let mut mean_num = 0.0;
    for t in 1..=max_slots {
        let mut next = vec![0.0; m];
        let mut succ = 0.0;
        for (i, &(a, j)) in haz.iter().enumerate() {
            let nxt = (i + 1).min(m - 1);
            succ += pi[i] * a * (1.0 - p);
            next[nxt] += pi[i] * (a * p + j);
            next[i] += pi[i] * (1.0 - a - j);
        }
        pi = next;
        absorbed += succ;
        mean_num += t as f64 * succ;
        pmf.push(succ);
        cdf.push((t as f64, absorbed));
    }
    DelayDistribution {
        pmf,
        cdf,
        mean_slots: if absorbed > 0.0 {
            mean_num / absorbed
        } else {
            f64::INFINITY
        },
        truncated_mass: (1.0 - absorbed).max(0.0),
    }
}

/// Expected wall-clock duration in µs of one decision slot as seen by a
/// tagged *waiting* station: the other `n − 1` stations produce an idle
/// slot, exactly one other success, or a collision among the others.
pub fn tagged_slot_duration_us(tau: f64, n: usize, timing: &MacTiming) -> f64 {
    if n <= 1 {
        return timing.slot.as_micros();
    }
    let p = 1.0 - (1.0 - tau).powi(n as i32 - 1);
    let one_other = (n as f64 - 1.0) * tau * (1.0 - tau).powi(n as i32 - 2);
    (1.0 - p) * timing.slot.as_micros()
        + one_other * timing.ts.as_micros()
        + (p - one_other) * timing.tc.as_micros()
}

/// Access-delay summary of the mean-field backend: slot-domain moments
/// and quantiles plus their µs conversions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelaySummary {
    /// Mean access delay in decision slots (conditioned on absorption
    /// within the walked horizon).
    pub mean_slots: f64,
    /// Median delay in slots (`None` if the walked horizon is too short).
    pub p50_slots: Option<f64>,
    /// 90th percentile in slots.
    pub p90_slots: Option<f64>,
    /// 99th percentile in slots.
    pub p99_slots: Option<f64>,
    /// Expected per-slot wall-clock duration used for conversion, µs.
    pub slot_us: f64,
    /// Mean access delay in µs.
    pub mean_us: f64,
    /// Probability mass beyond the walked horizon.
    pub truncated_mass: f64,
}

impl DelaySummary {
    /// 99th-percentile access delay in µs (`None` when the walked
    /// horizon was too short to pin the quantile).
    pub fn p99_us(&self) -> Option<f64> {
        self.p99_slots.map(|s| s * self.slot_us)
    }
}

/// Delay summary for one tagged station of a class at attempt rate
/// `tau` / busy probability `p` in an `n`-station domain.
pub fn delay_summary(
    config: &CsmaConfig,
    tau: f64,
    p: f64,
    n: usize,
    timing: &MacTiming,
    max_slots: usize,
) -> DelaySummary {
    let dist = access_delay_distribution(config, p, max_slots);
    let slot_us = tagged_slot_duration_us(tau, n, timing);
    DelaySummary {
        mean_slots: dist.mean_slots,
        p50_slots: plc_stats::quantile_from_cdf(&dist.cdf, 0.5),
        p90_slots: plc_stats::quantile_from_cdf(&dist.cdf, 0.9),
        p99_slots: plc_stats::quantile_from_cdf(&dist.cdf, 0.99),
        slot_us,
        mean_us: dist.mean_slots * slot_us,
        truncated_mass: dist.truncated_mass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meanfield::MeanFieldModel;

    fn ca1() -> CsmaConfig {
        CsmaConfig::ieee1901_ca01()
    }

    #[test]
    fn solver_fixed_point_is_drift_equilibrium() {
        // The tentpole consistency check: the stationary occupancy the
        // fixed-point solver reports must sit (numerically) on a zero of
        // the drift field.
        for n in [2usize, 5, 20, 100] {
            let sol = MeanFieldModel::single(ca1(), n).solve().unwrap();
            let c = &sol.classes[0];
            let drift = DriftModel::new(ca1(), n).unwrap();
            let p = drift.consistent_busy(&c.stage_occupancy);
            assert!(
                (p - c.collision_probability).abs() < 1e-7,
                "N={n}: drift p={p:.8} vs solver p={:.8}",
                c.collision_probability
            );
            let d = drift.derivative(&c.stage_occupancy);
            for (i, v) in d.iter().enumerate() {
                assert!(
                    v.abs() < 1e-6,
                    "N={n}: dθ_{i}/dt = {v:.3e} at the solver fixed point"
                );
            }
        }
    }

    #[test]
    fn relaxation_reaches_the_fixed_point() {
        let n = 5;
        let sol = MeanFieldModel::single(ca1(), n).solve().unwrap();
        let drift = DriftModel::new(ca1(), n).unwrap();
        let eq = drift
            .relax(&drift.uniform_start(), 2.0, 1500, 1e-9)
            .unwrap();
        for (a, b) in eq.iter().zip(&sol.classes[0].stage_occupancy) {
            assert!((a - b).abs() < 1e-5, "relaxed {a:.8} vs solver {b:.8}");
        }
    }

    #[test]
    fn trajectory_conserves_mass_and_records_everything() {
        let drift = DriftModel::new(ca1(), 20).unwrap();
        let traj = drift.trajectory(&drift.fresh_start(), 1.0, 150);
        assert_eq!(traj.occupancy.len(), 151);
        assert_eq!(traj.tau.len(), 151);
        assert_eq!(traj.busy.len(), 151);
        for occ in &traj.occupancy {
            let total: f64 = occ.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert!(occ.iter().all(|&v| v >= 0.0));
        }
        // A fresh-start population (everyone aggressive in stage 0)
        // initially sees a busier channel than at equilibrium, and the
        // transient decays toward the fixed point.
        let p_star =
            MeanFieldModel::single(ca1(), 20).solve().unwrap().classes[0].collision_probability;
        assert!(traj.busy[0] > p_star);
        let last = traj.busy.last().unwrap();
        assert!((last - p_star).abs() < 0.5 * (traj.busy[0] - p_star).abs());
    }

    #[test]
    fn lone_station_never_sees_busy_slots() {
        let drift = DriftModel::new(ca1(), 1).unwrap();
        assert_eq!(drift.consistent_busy(&drift.fresh_start()), 0.0);
    }

    #[test]
    fn delay_distribution_lone_station_is_geometric() {
        // p = 0: every stage-0 slot succeeds with hazard 1/(s₀+1) = 2/9,
        // so the delay is geometric with mean 4.5 slots.
        let dist = access_delay_distribution(&ca1(), 0.0, 4000);
        assert!(dist.truncated_mass < 1e-9);
        assert!((dist.mean_slots - 4.5).abs() < 1e-6, "{}", dist.mean_slots);
        // CDF is non-decreasing.
        for w in dist.cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn delay_summary_quantiles_are_ordered() {
        let sol = MeanFieldModel::single(ca1(), 10).solve().unwrap();
        let c = &sol.classes[0];
        let timing = MacTiming::paper_default();
        let s = delay_summary(&ca1(), c.tau, c.collision_probability, 10, &timing, 20_000);
        let (p50, p90, p99) = (
            s.p50_slots.unwrap(),
            s.p90_slots.unwrap(),
            s.p99_slots.unwrap(),
        );
        assert!(p50 <= p90 && p90 <= p99);
        assert!(s.truncated_mass < 1e-6);
        assert!(
            s.mean_us > s.mean_slots * timing.slot.as_micros(),
            "busy slots stretch time"
        );
        // The DTMC mean matches the renewal cycle length from the solver.
        assert!(
            (s.mean_slots - c.mean_access_delay_slots).abs() / c.mean_access_delay_slots < 0.01,
            "DTMC mean {} vs renewal cycle {}",
            s.mean_slots,
            c.mean_access_delay_slots
        );
    }

    #[test]
    fn zero_stations_rejected() {
        assert!(DriftModel::new(ca1(), 0).is_err());
    }

    #[test]
    fn relax_timeout_is_typed() {
        let drift = DriftModel::new(ca1(), 50).unwrap();
        let err = drift
            .relax(&drift.fresh_start(), 0.1, 1, 1e-14)
            .unwrap_err();
        assert!(matches!(err, Error::Runtime { .. }));
    }
}
