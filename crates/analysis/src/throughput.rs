//! Slot-structure throughput formulas.
//!
//! Given the per-slot attempt probability `τ` of each of `N` stations, the
//! channel alternates between idle slots, successful transmissions and
//! collisions with the classic probabilities below; normalized throughput
//! is payload airtime over expected slot time — the same quantity the
//! simulators report as `successes · frame_length / t`.

use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// The three per-slot channel-state probabilities induced by `N` stations
/// attempting independently with probability `τ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlotProbabilities {
    /// `P(idle) = (1−τ)^N`.
    pub idle: f64,
    /// `P(success) = N τ (1−τ)^(N−1)`.
    pub success: f64,
    /// `P(collision) = 1 − idle − success`.
    pub collision: f64,
}

impl SlotProbabilities {
    /// Compute from the decoupled attempt rate.
    pub fn from_tau(tau: f64, n: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&tau),
            "τ must be a probability, got {tau}"
        );
        assert!(n >= 1);
        let nf = n as f64;
        let idle = (1.0 - tau).powi(n as i32);
        let success = nf * tau * (1.0 - tau).powi(n as i32 - 1);
        let collision = (1.0 - idle - success).max(0.0);
        SlotProbabilities {
            idle,
            success,
            collision,
        }
    }
}

/// Normalized throughput:
/// `S = P_succ · L / (P_idle σ + P_succ Ts + P_coll Tc)`.
pub fn normalized_throughput(p: &SlotProbabilities, timing: &MacTiming) -> f64 {
    let denom = p.idle * timing.slot.as_micros()
        + p.success * timing.ts.as_micros()
        + p.collision * timing.tc.as_micros();
    if denom == 0.0 {
        return 0.0;
    }
    p.success * timing.frame_length.as_micros() / denom
}

/// Expected MAC-layer delay between two successful transmissions of a
/// tagged station, in µs: the renewal time of the network divided by the
/// station's share of successes (`1/N` by symmetry).
pub fn mean_intersuccess_time(p: &SlotProbabilities, timing: &MacTiming, n: usize) -> f64 {
    assert!(n >= 1);
    if p.success == 0.0 {
        return f64::INFINITY;
    }
    let slot_time = p.idle * timing.slot.as_micros()
        + p.success * timing.ts.as_micros()
        + p.collision * timing.tc.as_micros();
    // Slots per network success = 1 / P_succ; per tagged-station success,
    // multiply by N.
    n as f64 * slot_time / p.success
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        for n in [1usize, 2, 5, 20] {
            for tau in [0.01, 0.1, 0.3, 0.9] {
                let p = SlotProbabilities::from_tau(tau, n);
                assert!((p.idle + p.success + p.collision - 1.0).abs() < 1e-12);
                assert!(p.idle >= 0.0 && p.success >= 0.0 && p.collision >= 0.0);
            }
        }
    }

    #[test]
    fn single_station_never_collides() {
        let p = SlotProbabilities::from_tau(0.2, 1);
        assert!(p.collision.abs() < 1e-12);
        assert!((p.success - 0.2).abs() < 1e-12);
        assert!((p.idle - 0.8).abs() < 1e-12);
    }

    #[test]
    fn throughput_closed_form_check() {
        // τ = 1 with N = 1: every slot a success → S = L / Ts.
        let timing = MacTiming::paper_default();
        let p = SlotProbabilities::from_tau(1.0, 1);
        let s = normalized_throughput(&p, &timing);
        assert!((s - 2050.0 / 2542.64).abs() < 1e-12);
    }

    #[test]
    fn throughput_zero_when_silent() {
        let timing = MacTiming::paper_default();
        let p = SlotProbabilities::from_tau(0.0, 5);
        assert_eq!(normalized_throughput(&p, &timing), 0.0);
    }

    #[test]
    fn throughput_has_interior_maximum() {
        // As a function of τ, throughput rises then falls (collisions
        // dominate) — the CW tradeoff the paper describes in §2.
        let timing = MacTiming::paper_default();
        let n = 10;
        let s_at = |tau: f64| normalized_throughput(&SlotProbabilities::from_tau(tau, n), &timing);
        let low = s_at(0.001);
        let mid = s_at(0.02);
        let high = s_at(0.5);
        assert!(mid > low, "too-large CW wastes slots");
        assert!(mid > high, "too-small CW wastes collisions");
    }

    #[test]
    fn intersuccess_time_scales_with_n() {
        let timing = MacTiming::paper_default();
        let p2 = SlotProbabilities::from_tau(0.1, 2);
        let p4 = SlotProbabilities::from_tau(0.1, 4);
        let d2 = mean_intersuccess_time(&p2, &timing, 2);
        let d4 = mean_intersuccess_time(&p4, &timing, 4);
        assert!(d4 > d2, "more stations → longer per-station gaps");
        assert!(d2 > 0.0);
    }

    #[test]
    fn intersuccess_infinite_when_silent() {
        let timing = MacTiming::paper_default();
        let p = SlotProbabilities::from_tau(0.0, 3);
        assert!(mean_intersuccess_time(&p, &timing, 3).is_infinite());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_tau() {
        SlotProbabilities::from_tau(1.5, 2);
    }
}
