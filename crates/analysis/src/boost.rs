//! Configuration "boosting": searching the (CW, DC) parameter space for
//! throughput-optimal tables.
//!
//! The report positions its simulator for exactly this: "Our simulator can
//! be efficiently employed to evaluate the performance of different MAC
//! configurations". The analytical model makes the search cheap — each
//! candidate costs one fixed-point solve instead of a full simulation — and
//! the winning configurations can then be validated by simulation (the
//! `boost` experiment does both).
//!
//! Two searches are provided:
//!
//! * [`optimize_constant_window`] — the classic single-stage optimum: pick
//!   one fixed CW (no deferral, no doubling) maximizing throughput for a
//!   known N. Its closed-form approximation `CW* ≈ N √(2 Tc/σ)` is a
//!   useful sanity anchor.
//! * [`boost_search`] — enumerate structured 1901-style tables (geometric
//!   window progressions × deferral patterns) and rank by model
//!   throughput, optionally with a short-term-fairness guard (bounding the
//!   ratio of the last window to the first, since giant last stages are
//!   what starve losers).

use crate::drift::{delay_summary, DelaySummary};
use crate::meanfield::{MeanFieldModel, MeanFieldSolution};
use crate::model1901::Model1901;
use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::error::{Error, Result};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The parameter table.
    pub config: CsmaConfig,
    /// Model-predicted normalized throughput at the target N.
    pub throughput: f64,
    /// Model-predicted collision probability at the target N.
    pub collision_probability: f64,
}

/// Find the best single-stage constant window in `4..=4096` (powers of
/// two) for `n` stations.
pub fn optimize_constant_window(n: usize, timing: &MacTiming) -> Candidate {
    assert!(n >= 1);
    let mut best: Option<Candidate> = None;
    let mut w = 4u32;
    while w <= 4096 {
        let cfg = CsmaConfig::constant_window(w).expect("valid");
        let model = Model1901::new(cfg.clone());
        let s = model.throughput(n, timing);
        let fp = model.solve(n);
        let cand = Candidate {
            config: cfg,
            throughput: s,
            collision_probability: fp.collision_probability,
        };
        if best.as_ref().is_none_or(|b| cand.throughput > b.throughput) {
            best = Some(cand);
        }
        w *= 2;
    }
    best.expect("non-empty sweep")
}

/// The closed-form approximation of the optimal constant window,
/// `CW* ≈ N √(2 Tc / σ)` (from maximizing slotted-CSMA throughput for
/// small τ).
pub fn approx_optimal_window(n: usize, timing: &MacTiming) -> f64 {
    n as f64 * (2.0 * timing.tc.as_micros() / timing.slot.as_micros()).sqrt()
}

/// Options for [`boost_search`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostOptions {
    /// Number of backoff stages in the candidate tables.
    pub stages: usize,
    /// Upper bound on `CW_last / CW_0` — a fairness guard: larger spreads
    /// mean heavier short-term starvation of collision losers. Use
    /// `f64::INFINITY` to disable.
    pub max_window_spread: f64,
    /// How many top candidates to return.
    pub top_k: usize,
}

impl Default for BoostOptions {
    fn default() -> Self {
        BoostOptions {
            stages: 4,
            max_window_spread: f64::INFINITY,
            top_k: 5,
        }
    }
}

/// Enumerate structured candidate tables and return the `top_k` by model
/// throughput at `n` stations.
///
/// The candidate space is the cross product of
/// `CW₀ ∈ {4, 8, 16, 32, 64, 128}`, window growth `g ∈ {1, 2, 4}`
/// (so `CW_i = CW₀ · g^i`, capped at 2¹⁶) and deferral patterns
/// `{standard 1901 (0,1,3,15…), aggressive (0,0,1,3…), off}` truncated to
/// the requested stage count — 54 candidates by default, each costing one
/// fixed-point solve.
pub fn boost_search(n: usize, timing: &MacTiming, opts: &BoostOptions) -> Vec<Candidate> {
    assert!(n >= 1);
    assert!(opts.stages >= 1);
    let cw0_choices = [4u32, 8, 16, 32, 64, 128];
    let growth_choices = [1u32, 2, 4];
    let standard_dc = [0u32, 1, 3, 15, 15, 15, 15, 15];
    let aggressive_dc = [0u32, 0, 1, 3, 7, 15, 15, 15];

    let mut candidates = Vec::new();
    for &cw0 in &cw0_choices {
        for &g in &growth_choices {
            let mut cw = Vec::with_capacity(opts.stages);
            let mut ok = true;
            for i in 0..opts.stages {
                let w = (cw0 as u64) * (g as u64).pow(i as u32);
                if w > 1 << 16 {
                    ok = false;
                    break;
                }
                cw.push(w as u32);
            }
            if !ok {
                continue;
            }
            let spread = *cw.last().unwrap() as f64 / cw[0] as f64;
            if spread > opts.max_window_spread {
                continue;
            }
            for dc_pattern in [&standard_dc[..], &aggressive_dc[..]] {
                let dc: Vec<u32> = dc_pattern.iter().copied().take(opts.stages).collect();
                push_candidate(&mut candidates, &cw, &dc, n, timing);
            }
            // Deferral disabled.
            let dc_off = vec![DC_DISABLED; opts.stages];
            push_candidate(&mut candidates, &cw, &dc_off, n, timing);
        }
    }

    candidates.sort_by(|a, b| b.throughput.partial_cmp(&a.throughput).expect("finite"));
    candidates.truncate(opts.top_k);
    candidates
}

/// One analytic screen of a candidate schedule at `n` stations: the
/// mean-field fixed point (the same decoupling solve behind
/// `Backend::MeanField` in `plc-sim`) plus the drift-DTMC access-delay
/// summary — throughput, collision probability and delay quantiles in
/// one call, milliseconds per schedule. This is the screening API the
/// `plc-boost` optimizer uses to rank whole candidate spaces before any
/// slotted simulation runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleScreen {
    /// Model-predicted normalized throughput.
    pub throughput: f64,
    /// Fixed-point busy probability (the tagged attempt's collision
    /// probability under decoupling).
    pub collision_probability: f64,
    /// Access-delay distribution summary of a tagged station.
    pub delay: DelaySummary,
    /// The full fixed point with solver diagnostics.
    pub solution: MeanFieldSolution,
}

/// Bound the delay-DTMC walk: far enough for the p99 where feasible,
/// but capped — at extreme contention the conditional delay is
/// astronomical and the summary reports truncated mass instead.
fn delay_walk_slots(mean_slots: f64) -> usize {
    if mean_slots.is_finite() {
        (mean_slots * 50.0).ceil().clamp(1_000.0, 100_000.0) as usize
    } else {
        100_000
    }
}

/// Screen one `(CW_i, d_i)` schedule at `n` stations: solve the
/// mean-field fixed point and derive throughput / collision probability
/// / access-delay quantiles. Errors on `n == 0`, invalid timing, or a
/// solver failure.
pub fn screen_schedule(
    config: &CsmaConfig,
    n: usize,
    timing: &MacTiming,
) -> Result<ScheduleScreen> {
    if n == 0 {
        return Err(Error::invalid_config(
            "schedule screening needs at least one station",
        ));
    }
    if !timing.is_valid() {
        return Err(Error::invalid_config(
            "schedule screening needs strictly positive slot/Ts/Tc timing",
        ));
    }
    let solution = MeanFieldModel::single(config.clone(), n).solve()?;
    let class = &solution.classes[0];
    let delay = delay_summary(
        config,
        class.tau,
        class.collision_probability,
        n,
        timing,
        delay_walk_slots(class.mean_access_delay_slots),
    );
    Ok(ScheduleScreen {
        throughput: solution.throughput(timing),
        collision_probability: class.collision_probability,
        delay,
        solution,
    })
}

fn push_candidate(out: &mut Vec<Candidate>, cw: &[u32], dc: &[u32], n: usize, timing: &MacTiming) {
    let Ok(cfg) = CsmaConfig::from_vectors(cw, dc) else {
        return;
    };
    let model = Model1901::new(cfg.clone());
    let fp = model.solve(n);
    let s = model.throughput(n, timing);
    if s.is_finite() {
        out.push(Candidate {
            config: cfg,
            throughput: s,
            collision_probability: fp.collision_probability,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_window_optimum_tracks_n() {
        let timing = MacTiming::paper_default();
        let w2 = optimize_constant_window(2, &timing).config.cw_min();
        let w20 = optimize_constant_window(20, &timing).config.cw_min();
        assert!(w20 > w2, "optimal window grows with N: {w2} vs {w20}");
        // The closed form says CW* ≈ N·12.8; the power-of-two sweep should
        // land within a factor of two of it.
        let approx = approx_optimal_window(20, &timing);
        let ratio = w20 as f64 / approx;
        assert!((0.5..=2.0).contains(&ratio), "W*={w20}, approx {approx:.0}");
    }

    #[test]
    fn boosted_beats_default_at_large_n() {
        // The default CA1 table is tuned for few stations; at N = 20 the
        // search must find something strictly better.
        let timing = MacTiming::paper_default();
        let n = 20;
        let default_s = Model1901::default_ca1().throughput(n, &timing);
        let best = &boost_search(n, &timing, &BoostOptions::default())[0];
        assert!(
            best.throughput > default_s + 0.01,
            "boosted {} vs default {default_s}",
            best.throughput
        );
    }

    #[test]
    fn default_table_is_near_optimal_at_small_n() {
        // At N = 2 the standard table should be close to the best found
        // (within a few percent) — 1901 was designed for small homes.
        let timing = MacTiming::paper_default();
        let default_s = Model1901::default_ca1().throughput(2, &timing);
        let best = &boost_search(2, &timing, &BoostOptions::default())[0];
        assert!(
            best.throughput - default_s < 0.06,
            "gap {}",
            best.throughput - default_s
        );
    }

    #[test]
    fn fairness_guard_restricts_spread() {
        let timing = MacTiming::paper_default();
        let opts = BoostOptions {
            max_window_spread: 8.0,
            top_k: 50,
            ..Default::default()
        };
        let cands = boost_search(10, &timing, &opts);
        assert!(!cands.is_empty());
        for c in &cands {
            let spread = c.config.cw_max() as f64 / c.config.cw_min() as f64;
            assert!(spread <= 8.0, "spread {spread} violates guard");
        }
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let timing = MacTiming::paper_default();
        let opts = BoostOptions {
            top_k: 3,
            ..Default::default()
        };
        let cands = boost_search(5, &timing, &opts);
        assert_eq!(cands.len(), 3);
        assert!(cands[0].throughput >= cands[1].throughput);
        assert!(cands[1].throughput >= cands[2].throughput);
    }

    #[test]
    fn screen_schedule_matches_the_fixed_point_and_orders_delay() {
        let timing = MacTiming::paper_default();
        let ca1 = CsmaConfig::ieee1901_ca01();
        let s5 = screen_schedule(&ca1, 5, &timing).unwrap();
        let s20 = screen_schedule(&ca1, 20, &timing).unwrap();
        assert!(s5.throughput > 0.0 && s5.throughput < 1.0);
        assert!(
            s20.collision_probability > s5.collision_probability,
            "more stations must collide more"
        );
        let (p5, p20) = (
            s5.delay.p99_us().expect("walk covers the p99 at n=5"),
            s20.delay.p99_us().expect("walk covers the p99 at n=20"),
        );
        assert!(p20 > p5, "p99 delay must grow with contention");
        assert!(screen_schedule(&ca1, 0, &timing).is_err());
    }

    #[test]
    fn single_stage_search_space() {
        let timing = MacTiming::paper_default();
        let opts = BoostOptions {
            stages: 1,
            top_k: 100,
            ..Default::default()
        };
        let cands = boost_search(5, &timing, &opts);
        assert!(!cands.is_empty());
        for c in &cands {
            assert_eq!(c.config.num_stages(), 1);
        }
    }
}
