//! # plc-analysis — analytical models of CSMA/CA performance
//!
//! The "Analysis" curves of the paper's evaluation:
//!
//! * [`model1901::Model1901`] — decoupling-assumption fixed point for the
//!   IEEE 1901 backoff process (backoff counter + deferral counter +
//!   stage chain), following the companion analysis the report cites as
//!   reference \[5\] (Vlachou, Banchs, Herzen, Thiran — ICNP 2014). Predicts
//!   the per-slot attempt rate τ, the collision probability
//!   `1 − (1 − τ)^(N−1)` plotted in Figure 2, and normalized throughput.
//! * [`coupled::CoupledModel`] — the primary "Analysis" curve: a
//!   champion-conditioned, residual-tracking round model that lands on
//!   Figure 2 at every N (validated within ±0.01 of the simulator).
//! * [`round_model::RoundModel`] — a simpler round-based mean-field
//!   (fresh redraws, i.i.d. stations); kept as a comparison point in the
//!   model-assumptions experiment alongside the naive decoupled model.
//! * [`bianchi::BianchiModel`] — the classic 802.11 DCF fixed point, both
//!   as the comparison baseline and as a closed-form cross-check of the
//!   general stage-chain machinery (disable the deferral counter and the
//!   two coincide).
//! * [`meanfield::MeanFieldModel`] — multi-class decoupling fixed point
//!   with a damped adaptive solver and convergence diagnostics; the
//!   engine behind the `Backend::MeanField` simulation backend in
//!   `plc-sim`.
//! * [`drift::DriftModel`] — drift ODE for the transient stage-occupancy
//!   dynamics (ToN extension), plus the access-delay distribution of the
//!   mean-field backend.
//! * [`cano_malone::CanoMaloneModel`] — deterministic-deferral reference
//!   model (Cano & Malone style), the independent second opinion of the
//!   backend cross-validation suite.
//! * [`throughput`] — slot-structure throughput/delay formulas shared by
//!   both models.
//! * [`boost`] — parameter-space search for throughput-optimal (CW, DC)
//!   tables, the "boosting" use case.
//!
//! Everything is deterministic, allocation-light and fast: one fixed-point
//! solve is microseconds, so whole parameter sweeps run interactively.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bianchi;
pub mod boost;
pub mod cano_malone;
pub mod coupled;
pub mod drift;
pub mod math;
pub mod meanfield;
pub mod model1901;
pub mod round_model;
pub mod throughput;

pub use bianchi::{BianchiFixedPoint, BianchiModel};
pub use boost::{
    boost_search, optimize_constant_window, screen_schedule, BoostOptions, Candidate,
    ScheduleScreen,
};
pub use cano_malone::{CanoMaloneFixedPoint, CanoMaloneModel};
pub use coupled::{CoupledFixedPoint, CoupledModel};
pub use drift::{delay_summary, DelayDistribution, DelaySummary, DriftModel, DriftTrajectory};
pub use meanfield::{
    gamma_tolerance, throughput_tolerance, ClassSpec, MeanFieldModel, MeanFieldSolution,
    SolverDiagnostics, SolverOptions,
};
pub use model1901::{FixedPoint, Model1901};
pub use round_model::{RoundFixedPoint, RoundModel};
pub use throughput::{normalized_throughput, SlotProbabilities};
