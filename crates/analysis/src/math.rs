//! Numerical building blocks for the analytical models.
//!
//! The 1901 decoupling-assumption model needs, per backoff stage, sums of
//! binomial CDFs over the whole contention window. The incremental
//! recurrences here keep that O(CW · d) with no factorials and no
//! catastrophic cancellation — exact enough for CW up to 2¹⁶ in `f64`.

/// Incremental tracker of `P(Bin(b, p) ≤ d)` as `b` grows one slot at a
/// time.
///
/// Maintains the probability mass `P(Bin(b,p) = k)` for `k = 0..=d` and the
/// CDF value. Update per step is O(d); the recurrences are
///
/// ```text
/// P(X_{b+1} = k) = (1-p)·P(X_b = k) + p·P(X_b = k-1)
/// P(X_{b+1} ≤ d) = P(X_b ≤ d) − p·P(X_b = d)
/// ```
#[derive(Debug, Clone)]
pub struct BinomialCdfTracker {
    p: f64,
    /// pmf[k] = P(Bin(b, p) = k) for the current b.
    pmf: Vec<f64>,
    cdf: f64,
    b: u64,
}

impl BinomialCdfTracker {
    /// Start at `b = 0`: `P(Bin(0,p) ≤ d) = 1`, all mass at 0.
    ///
    /// `p` must be a probability; `d` is the CDF threshold.
    pub fn new(p: f64, d: u32) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        let mut pmf = vec![0.0; d as usize + 1];
        pmf[0] = 1.0;
        BinomialCdfTracker {
            p,
            pmf,
            cdf: 1.0,
            b: 0,
        }
    }

    /// Current `b`.
    pub fn b(&self) -> u64 {
        self.b
    }

    /// Current CDF value `P(Bin(b, p) ≤ d)`.
    pub fn cdf(&self) -> f64 {
        self.cdf.clamp(0.0, 1.0)
    }

    /// Advance `b → b + 1`.
    pub fn step(&mut self) {
        let d = self.pmf.len() - 1;
        // CDF update uses the pre-step pmf at k = d.
        self.cdf -= self.p * self.pmf[d];
        // pmf update, in place from the top down.
        for k in (0..=d).rev() {
            let from_below = if k > 0 { self.pmf[k - 1] } else { 0.0 };
            self.pmf[k] = (1.0 - self.p) * self.pmf[k] + self.p * from_below;
        }
        self.b += 1;
    }
}

/// `P(Bin(n, p) ≤ d)` computed directly (convenience; O(n·d)).
pub fn binomial_cdf(n: u64, p: f64, d: u32) -> f64 {
    let mut t = BinomialCdfTracker::new(p, d);
    for _ in 0..n {
        t.step();
    }
    t.cdf()
}

/// `P(Bin(n, p) = k)` via the stable multiplicative recurrence.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    if k > n {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // Work in log domain: ln C(n,k) + k ln p + (n-k) ln(1-p).
    let mut ln_c = 0.0f64;
    let k_small = k.min(n - k);
    for i in 0..k_small {
        ln_c += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    (ln_c + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

/// Root of a continuous, strictly decreasing function `f` on `[lo, hi]` by
/// bisection; `f(lo) ≥ 0 ≥ f(hi)` is required (asserted loosely).
///
/// Runs a fixed 200 iterations, more than enough for `f64` resolution on a
/// unit interval; returns the midpoint.
pub fn bisect_decreasing(lo: f64, hi: f64, f: impl FnMut(f64) -> f64) -> f64 {
    bisect_decreasing_iters(lo, hi, 200, f)
}

/// [`bisect_decreasing`] with an explicit iteration budget.
///
/// The drift ODE solves a scalar consistency equation inside every
/// derivative evaluation; there a ~60-iteration budget (interval width
/// `2⁻⁶⁰` ≈ 1e−18) is plenty and keeps the integration cheap.
pub fn bisect_decreasing_iters(
    mut lo: f64,
    mut hi: f64,
    iters: u32,
    mut f: impl FnMut(f64) -> f64,
) -> f64 {
    assert!(lo < hi);
    let flo = f(lo);
    let fhi = f(hi);
    assert!(
        flo >= 0.0 && fhi <= 0.0,
        "bisect_decreasing needs a sign change: f({lo}) = {flo}, f({hi}) = {fhi}"
    );
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if f(mid) >= 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_matches_direct_pmf_sums() {
        let p = 0.3;
        let d = 3;
        let mut t = BinomialCdfTracker::new(p, d);
        for b in 1..=40u64 {
            t.step();
            let direct: f64 = (0..=d as u64).map(|k| binomial_pmf(b, p, k)).sum();
            assert!(
                (t.cdf() - direct).abs() < 1e-12,
                "b={b}: tracker {} vs direct {direct}",
                t.cdf()
            );
        }
    }

    #[test]
    fn cdf_edge_cases() {
        assert_eq!(binomial_cdf(0, 0.5, 0), 1.0);
        assert_eq!(binomial_cdf(10, 0.0, 0), 1.0);
        assert!((binomial_cdf(10, 1.0, 9) - 0.0).abs() < 1e-12);
        assert!((binomial_cdf(10, 1.0, 10) - 1.0).abs() < 1e-12);
        // P(Bin(4, 0.5) ≤ 2) = (1+4+6)/16
        assert!((binomial_cdf(4, 0.5, 2) - 11.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn pmf_known_values() {
        assert!((binomial_pmf(4, 0.5, 2) - 6.0 / 16.0).abs() < 1e-12);
        assert!((binomial_pmf(10, 0.2, 0) - 0.8f64.powi(10)).abs() < 1e-12);
        assert_eq!(binomial_pmf(3, 0.4, 5), 0.0);
        assert_eq!(binomial_pmf(5, 0.0, 0), 1.0);
        assert_eq!(binomial_pmf(5, 1.0, 5), 1.0);
        // Large-n stability: sum over a window of k must stay ≤ 1.
        let s: f64 = (0..=60_000u64).map(|k| binomial_pmf(60_000, 0.1, k)).sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_symmetric() {
        for k in 0..=8u64 {
            assert!((binomial_pmf(8, 0.5, k) - binomial_pmf(8, 0.5, 8 - k)).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn tracker_rejects_bad_p() {
        BinomialCdfTracker::new(1.5, 0);
    }

    #[test]
    fn bisect_finds_root() {
        // f(x) = 0.5 − x, decreasing; root at 0.5.
        let r = bisect_decreasing(0.0, 1.0, |x| 0.5 - x);
        assert!((r - 0.5).abs() < 1e-12);
        // Nonlinear: e^(−x) − x has root ≈ 0.5671432904.
        let r2 = bisect_decreasing(0.0, 1.0, |x| (-x).exp() - x);
        assert!((r2 - 0.567143290409).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sign change")]
    fn bisect_rejects_no_root() {
        bisect_decreasing(0.0, 1.0, |x| 1.0 + x);
    }
}
