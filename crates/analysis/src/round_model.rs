//! Round-based mean-field model of the IEEE 1901 backoff process — the
//! workspace's primary "Analysis" curve for Figure 2.
//!
//! ## Why the naive decoupling fails here
//!
//! The classical (Bianchi-style) decoupling assumption treats the busy
//! probability of every slot, and the collision probability of every
//! attempt, as one i.i.d. constant `p = 1 − (1−τ)^(N−1)`. For 1901 this
//! visibly overestimates collisions at small N (the workspace reproduces
//! this as an experiment): after *every* transmission all stations restart
//! their countdowns together, and the deferral counter pushes recent losers
//! to higher stages, so the station attempting next is facing opponents
//! with systematically *larger* windows than the average τ suggests.
//! Investigating such modelling assumptions is exactly the subject of the
//! companion analysis the report cites as \[5\].
//!
//! ## The round model
//!
//! Between two consecutive transmissions there are **no busy slots** — the
//! medium is busy only when somebody transmits. The whole process is
//! therefore a sequence of *contention rounds*:
//!
//! 1. at a round start every station `s` holds a backoff value `b_s`; the
//!    round lasts `min_s b_s` idle slots and ends with the stations in
//!    `argmin` transmitting (one → success, several → collision);
//! 2. the winner returns to stage 0; colliders advance one stage; every
//!    other station senses one busy event: it either spends one deferral
//!    credit (`k → k+1` while `k < d_i`) or, with credits exhausted, jumps
//!    to the next stage and redraws.
//!
//! The mean-field approximation: each station is an i.i.d. sample of a
//! stationary distribution `π` over classes `(stage i, credits used k)`,
//! and redraws `b ~ U{0…CW_i−1}` fresh at every round start. (Fresh
//! redrawing is exact for every class that redraws on busy — e.g. all of
//! stage 0, whose `d₀ = 0` — and an approximation for credit-spending
//! survivors, whose residual backoff we replace by a fresh draw.)
//! `π` is the fixed point of the induced per-round transition kernel; all
//! Figure-2/throughput quantities follow from it in closed form.

use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// Cap on tracked deferral credits per stage, to bound the class space for
/// exotic configs (the standard tables need at most 16).
const MAX_TRACKED_CREDITS: u32 = 63;

/// A per-station class: backoff stage plus deferral credits already spent
/// at this stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StationClass {
    /// Backoff stage.
    pub stage: usize,
    /// Busy rounds already absorbed at this stage (`0..=d_i`).
    pub credits_used: u32,
}

/// Solved round-model fixed point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundFixedPoint {
    /// Station count.
    pub n: usize,
    /// Per-attempt collision probability — Figure 2's quantity, equal to
    /// `ΣCᵢ / ΣAᵢ` in expectation.
    pub collision_probability: f64,
    /// Probability a round ends in a success (vs a collision).
    pub round_success_probability: f64,
    /// Expected idle backoff slots per round.
    pub idle_slots_per_round: f64,
    /// Expected transmitters per round (1·P(success) + E\[colliders\]).
    pub transmitters_per_round: f64,
    /// Stationary class distribution.
    pub class_distribution: Vec<(StationClass, f64)>,
    /// Stationary marginal over stages.
    pub stage_marginal: Vec<f64>,
}

/// The round-based mean-field model. See the [module docs](self).
#[derive(Debug, Clone, PartialEq)]
pub struct RoundModel {
    config: CsmaConfig,
    /// Enumerated classes, index-aligned with distributions.
    classes: Vec<StationClass>,
}

impl RoundModel {
    /// Model for the given parameter table.
    pub fn new(config: CsmaConfig) -> Self {
        let mut classes = Vec::new();
        for i in 0..config.num_stages() {
            let d = config.stage(i).dc;
            let tracked = if d == DC_DISABLED {
                0
            } else {
                d.min(MAX_TRACKED_CREDITS)
            };
            for k in 0..=tracked {
                classes.push(StationClass {
                    stage: i,
                    credits_used: k,
                });
            }
        }
        RoundModel { config, classes }
    }

    /// Model with the paper's default CA1 table.
    pub fn default_ca1() -> Self {
        Self::new(CsmaConfig::ieee1901_ca01())
    }

    /// The parameter table.
    pub fn config(&self) -> &CsmaConfig {
        &self.config
    }

    /// The enumerated `(stage, credits)` classes.
    pub fn classes(&self) -> &[StationClass] {
        &self.classes
    }

    fn class_index(&self, stage: usize, credits_used: u32) -> usize {
        self.classes
            .iter()
            .position(|c| c.stage == stage && c.credits_used == credits_used)
            .expect("class enumerated")
    }

    /// Largest window in the table (support bound for draw values).
    fn max_window(&self) -> u32 {
        self.config.cw_max()
    }

    /// Per-value draw pmf of the mixture induced by the stage marginal:
    /// `E[v] = Σ_i π̃_i · 1{v < W_i} / W_i`, and the survival
    /// `G[v] = P(draw > v)`.
    fn mixture(&self, stage_marginal: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let wmax = self.max_window() as usize;
        let mut pmf = vec![0.0; wmax];
        for (i, &pi) in stage_marginal.iter().enumerate() {
            let w = self.config.stage(i).cw as usize;
            let per = pi / w as f64;
            for slot in pmf.iter_mut().take(w) {
                *slot += per;
            }
        }
        let mut surv = vec![0.0; wmax + 1];
        for v in (0..wmax).rev() {
            surv[v] = surv[v + 1] + pmf[v];
        }
        // surv[v] = P(draw ≥ v); convert to P(draw > v) by shifting.
        let g: Vec<f64> = (0..wmax).map(|v| surv[v + 1]).collect();
        (pmf, g)
    }

    /// One mean-field iteration: given the class distribution, build the
    /// tagged station's round-transition kernel and return the updated
    /// distribution plus the per-round win/tie masses.
    fn step_distribution(&self, pi: &[f64], n: usize) -> (Vec<f64>, f64, f64) {
        let m = self.config.num_stages();
        let stage_marginal = self.stage_marginal_of(pi);
        let (pmf, g) = self.mixture(&stage_marginal);
        let others = (n - 1) as i32;

        let mut next = vec![0.0; self.classes.len()];
        let mut win_mass = 0.0;
        let mut tie_mass = 0.0;

        for (ci, class) in self.classes.iter().enumerate() {
            let weight = pi[ci];
            if weight == 0.0 {
                continue;
            }
            let sp = self.config.stage(class.stage);
            let w = sp.cw as usize;
            let inv_w = 1.0 / w as f64;
            let mut p_win = 0.0;
            let mut p_tie = 0.0;
            for v in 0..w {
                let g_v = g[v];
                let ge_v = g[v] + pmf[v];
                let win = g_v.powi(others);
                let tie = ge_v.powi(others) - win;
                p_win += inv_w * win;
                p_tie += inv_w * tie;
            }
            let p_defer = (1.0 - p_win - p_tie).max(0.0);

            win_mass += weight * p_win;
            tie_mass += weight * p_tie;

            // Win → stage 0, fresh credits.
            next[self.class_index(0, 0)] += weight * p_win;
            // Collide → next stage (saturating), fresh credits.
            let adv = (class.stage + 1).min(m - 1);
            next[self.class_index(adv, 0)] += weight * p_tie;
            // Defer → spend a credit or jump.
            let d = sp.dc;
            if d == DC_DISABLED {
                next[ci] += weight * p_defer;
            } else if class.credits_used >= d.min(MAX_TRACKED_CREDITS) {
                next[self.class_index(adv, 0)] += weight * p_defer;
            } else {
                next[self.class_index(class.stage, class.credits_used + 1)] += weight * p_defer;
            }
        }

        // Normalize (guards drift from float error).
        let total: f64 = next.iter().sum();
        if total > 0.0 {
            for x in &mut next {
                *x /= total;
            }
        }
        (next, win_mass, tie_mass)
    }

    fn stage_marginal_of(&self, pi: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.config.num_stages()];
        for (ci, class) in self.classes.iter().enumerate() {
            out[class.stage] += pi[ci];
        }
        out
    }

    /// Solve the fixed point for `n` stations.
    pub fn solve(&self, n: usize) -> RoundFixedPoint {
        assert!(n >= 1, "need at least one station");
        if n == 1 {
            // Alone: every round is a win from stage 0.
            let w0 = self.config.stage(0).cw as f64;
            let mut class_distribution: Vec<(StationClass, f64)> =
                self.classes.iter().map(|&c| (c, 0.0)).collect();
            class_distribution[self.class_index(0, 0)].1 = 1.0;
            let mut stage_marginal = vec![0.0; self.config.num_stages()];
            stage_marginal[0] = 1.0;
            return RoundFixedPoint {
                n,
                collision_probability: 0.0,
                round_success_probability: 1.0,
                idle_slots_per_round: (w0 - 1.0) / 2.0,
                transmitters_per_round: 1.0,
                class_distribution,
                stage_marginal,
            };
        }

        // Damped mean-field iteration from "everyone fresh at stage 0".
        let mut pi = vec![0.0; self.classes.len()];
        pi[self.class_index(0, 0)] = 1.0;
        let damping = 0.5;
        for _ in 0..20_000 {
            let (next, _, _) = self.step_distribution(&pi, n);
            let mut delta = 0.0;
            for i in 0..pi.len() {
                let blended = damping * next[i] + (1.0 - damping) * pi[i];
                delta += (blended - pi[i]).abs();
                pi[i] = blended;
            }
            if delta < 1e-13 {
                break;
            }
        }

        let (_, win_mass, tie_mass) = self.step_distribution(&pi, n);
        let gamma = if win_mass + tie_mass > 0.0 {
            tie_mass / (win_mass + tie_mass)
        } else {
            0.0
        };

        // Network-level round structure: N i.i.d. draws from the mixture.
        let stage_marginal = self.stage_marginal_of(&pi);
        let (pmf, g) = self.mixture(&stage_marginal);
        let wmax = self.max_window() as usize;
        let mut p_succ_round = 0.0;
        let mut idle_slots = 0.0;
        let mut transmitters = 0.0;
        let nf = n as f64;
        for v in 0..wmax {
            let ge = g[v] + pmf[v];
            let p_min_here = ge.powi(n as i32) - g[v].powi(n as i32);
            let p_exactly_one = nf * pmf[v] * g[v].powi(n as i32 - 1);
            p_succ_round += p_exactly_one;
            idle_slots += v as f64 * p_min_here;
            // E[transmitters | min = v] = N·pmf / (1 − g) conditioned on ≥1 at v…
            // simpler: E[#draws = v AND min = v] = N·pmf[v]·P(other N−1 ≥ v).
            transmitters += nf * pmf[v] * ge.powi(n as i32 - 1);
        }

        RoundFixedPoint {
            n,
            collision_probability: gamma,
            round_success_probability: p_succ_round,
            idle_slots_per_round: idle_slots,
            transmitters_per_round: transmitters,
            class_distribution: self
                .classes
                .iter()
                .copied()
                .zip(pi.iter().copied())
                .collect(),
            stage_marginal,
        }
    }

    /// Normalized throughput for `n` stations under `timing`:
    /// `P_succ · L / (E[idle slots] σ + P_succ Ts + P_coll Tc)`.
    pub fn throughput(&self, n: usize, timing: &MacTiming) -> f64 {
        let fp = self.solve(n);
        let p_succ = fp.round_success_probability;
        let p_coll = 1.0 - p_succ;
        let denom = fp.idle_slots_per_round * timing.slot.as_micros()
            + p_succ * timing.ts.as_micros()
            + p_coll * timing.tc.as_micros();
        if denom == 0.0 {
            return 0.0;
        }
        p_succ * timing.frame_length.as_micros() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_enumeration_ca1() {
        let m = RoundModel::default_ca1();
        // 1 + 2 + 4 + 16 classes for d = [0, 1, 3, 15].
        assert_eq!(m.classes().len(), 23);
        assert_eq!(
            m.classes()[0],
            StationClass {
                stage: 0,
                credits_used: 0
            }
        );
    }

    #[test]
    fn single_station_closed_form() {
        let fp = RoundModel::default_ca1().solve(1);
        assert_eq!(fp.collision_probability, 0.0);
        assert_eq!(fp.round_success_probability, 1.0);
        assert!((fp.idle_slots_per_round - 3.5).abs() < 1e-12);
    }

    #[test]
    fn tracks_figure2_shape_with_known_bias() {
        // The fresh-draw round model is a *comparison point*, not the
        // primary analysis (`crate::coupled` is): redrawing every round
        // discards deferral survivors' residual backoffs, which
        // *underestimates* attempt clustering at larger N, while the
        // i.i.d. station sampling slightly overestimates ties at N = 2.
        // Pin the resulting signature so either bias regressing is caught.
        let model = RoundModel::default_ca1();
        let paper = [(2, 0.074), (4, 0.178), (7, 0.267)];
        for (n, target) in paper {
            let fp = model.solve(n);
            assert!(
                (fp.collision_probability - target).abs() < 0.05,
                "N={n}: round model {:.4} should stay within ±0.05 of {target}",
                fp.collision_probability
            );
        }
        assert!(model.solve(2).collision_probability > 0.074, "over at N=2");
        assert!(model.solve(7).collision_probability < 0.267, "under at N=7");
    }

    #[test]
    fn beats_decoupled_model_at_small_n() {
        // At N = 2 the naive decoupled model overshoots harder than the
        // round model does.
        use plc_sim::paper::PaperSim;
        let sim = PaperSim::with_n_and_time(2, 2e7)
            .run(5)
            .unwrap()
            .collision_pr;
        let round = RoundModel::default_ca1().solve(2).collision_probability;
        let decoupled = crate::model1901::Model1901::default_ca1()
            .solve(2)
            .collision_probability;
        assert!(
            (round - sim).abs() < (decoupled - sim).abs(),
            "round {round:.4}, decoupled {decoupled:.4}, sim {sim:.4}"
        );
    }

    #[test]
    fn throughput_roughly_tracks_simulation() {
        use plc_sim::paper::PaperSim;
        let model = RoundModel::default_ca1();
        let timing = MacTiming::paper_default();
        for n in [1usize, 2, 5] {
            let s_model = model.throughput(n, &timing);
            let s_sim = PaperSim::with_n_and_time(n, 2e7)
                .run(5)
                .unwrap()
                .norm_throughput;
            assert!(
                (s_model - s_sim).abs() < 0.05,
                "N={n}: model S={s_model:.4} vs sim S={s_sim:.4}"
            );
        }
    }

    #[test]
    fn monotone_in_n() {
        let model = RoundModel::default_ca1();
        let mut prev = 0.0;
        for n in 1..=15 {
            let fp = model.solve(n);
            assert!(
                fp.collision_probability >= prev - 1e-9,
                "N={n}: {} < {prev}",
                fp.collision_probability
            );
            prev = fp.collision_probability;
        }
    }

    #[test]
    fn distribution_is_normalized_and_loaded() {
        let fp = RoundModel::default_ca1().solve(5);
        let total: f64 = fp.class_distribution.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let stage_total: f64 = fp.stage_marginal.iter().sum();
        assert!((stage_total - 1.0).abs() < 1e-9);
        // With 5 saturated stations, upper stages are definitely occupied.
        assert!(fp.stage_marginal[0] > 0.0);
        assert!(fp.stage_marginal[3] > 0.0);
    }

    #[test]
    fn transmitters_per_round_sane() {
        let fp = RoundModel::default_ca1().solve(4);
        assert!(fp.transmitters_per_round >= 1.0);
        assert!(fp.transmitters_per_round < 2.0);
        // Consistency: E[tx] = P_succ·1 + E[colliders]·P_coll, and
        // γ = (E[tx] − P_succ)/E[tx].
        let gamma_check =
            (fp.transmitters_per_round - fp.round_success_probability) / fp.transmitters_per_round;
        assert!((gamma_check - fp.collision_probability).abs() < 1e-9);
    }

    #[test]
    fn dcf_like_table_works_too() {
        let m = RoundModel::new(CsmaConfig::dcf_like(16, 5).unwrap());
        assert_eq!(m.classes().len(), 5, "one class per stage when DC disabled");
        let fp = m.solve(5);
        assert!(fp.collision_probability > 0.0 && fp.collision_probability < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        RoundModel::default_ca1().solve(0);
    }
}
