//! Champion-conditioned coupled mean-field model — the workspace's primary
//! "Analysis" curve for Figure 2.
//!
//! ## Why a third model
//!
//! Two standard approximations both fail for 1901 (the workspace keeps
//! them for comparison — studying these modelling assumptions is the
//! subject of the companion analysis the report cites as \[5\]):
//!
//! * the slot-level decoupling of [`crate::model1901`] overestimates
//!   collisions at small N — all stations restart their countdowns
//!   together after every transmission, and the deferral counter parks
//!   recent losers at *larger* windows than the population average, so
//!   attempts are anti-correlated across stations;
//! * a fresh-redraw round model underestimates them — deferral survivors
//!   keep a *residual* backoff that concentrates their attempts.
//!
//! This model keeps both effects and is validated to track the exact
//! finite-state machine within ±0.003 over N = 2…7:
//!
//! 1. **Round structure.** Between two transmissions there are no busy
//!    slots, so the process is a sequence of contention rounds: every
//!    station holds a backoff value `bc`; the minimum wins the round
//!    (ties collide); deferring stations spend a deferral credit (or jump
//!    stages when credits are exhausted) and carry the *residual*
//!    `bc − r − 1` into the next round.
//! 2. **Champion conditioning.** The station that transmitted last
//!    ("champion") is tracked by its own state distribution `π_W` —
//!    fresh at stage 0 right after every success — while the other
//!    `N − 1` stations are i.i.d. samples of a loser distribution `π_L`.
//!    This captures the winner/loser anti-correlation exactly at N = 2
//!    and to first order beyond.
//! 3. **Full per-station state.** Both distributions live on
//!    `(stage, credits used, bc)` — 1192 states for the CA1 table — so
//!    residual backoffs are exact within the mean field.
//!
//! The pair `(π_W, π_L)` is iterated to its fixed point; collision
//! probability, round composition and throughput follow in closed form.

use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::timing::MacTiming;
use serde::{Deserialize, Serialize};

/// Cap on tracked deferral credits (the standard tables need ≤ 16).
const MAX_TRACKED_CREDITS: u32 = 63;

/// One per-station state: backoff stage, deferral credits already spent at
/// this stage, current backoff value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FullState {
    /// Backoff stage.
    pub stage: usize,
    /// Busy rounds absorbed at this stage.
    pub credits_used: u32,
    /// Remaining backoff value.
    pub bc: u32,
}

/// Solved coupled fixed point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoupledFixedPoint {
    /// Station count.
    pub n: usize,
    /// Per-attempt collision probability — the Figure 2 quantity
    /// (`ΣCᵢ / ΣAᵢ` in expectation).
    pub collision_probability: f64,
    /// Probability that a round ends in a success.
    pub round_success_probability: f64,
    /// Expected idle backoff slots per round.
    pub idle_slots_per_round: f64,
    /// Expected transmitters per round.
    pub transmitters_per_round: f64,
    /// Stationary stage marginal of a loser-pool station.
    pub loser_stage_marginal: Vec<f64>,
    /// Stationary stage marginal of the champion.
    pub champion_stage_marginal: Vec<f64>,
}

/// The coupled champion/loser mean-field model. See the [module
/// docs](self).
///
/// # Examples
///
/// ```
/// use plc_analysis::CoupledModel;
///
/// // Figure 2's analysis point at N = 5: ≈ 0.21.
/// let fp = CoupledModel::default_ca1().solve(5);
/// assert!((fp.collision_probability - 0.21).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoupledModel {
    config: CsmaConfig,
    /// All `(stage, credits, bc)` states, enumerated densely.
    states: Vec<FullState>,
    /// `index_of[stage][credits]` → base index of the `bc = 0` state.
    base: Vec<Vec<usize>>,
    /// Largest window (bc support bound).
    wmax: usize,
}

impl CoupledModel {
    /// Model for the given parameter table.
    pub fn new(config: CsmaConfig) -> Self {
        let mut states = Vec::new();
        let mut base = Vec::new();
        for i in 0..config.num_stages() {
            let sp = config.stage(i);
            let tracked = if sp.dc == DC_DISABLED {
                0
            } else {
                sp.dc.min(MAX_TRACKED_CREDITS)
            };
            let mut per_stage = Vec::new();
            for k in 0..=tracked {
                per_stage.push(states.len());
                for bc in 0..sp.cw {
                    states.push(FullState {
                        stage: i,
                        credits_used: k,
                        bc,
                    });
                }
            }
            base.push(per_stage);
        }
        let wmax = config.cw_max() as usize;
        CoupledModel {
            config,
            states,
            base,
            wmax,
        }
    }

    /// Model with the paper's default CA1 table.
    pub fn default_ca1() -> Self {
        Self::new(CsmaConfig::ieee1901_ca01())
    }

    /// The parameter table.
    pub fn config(&self) -> &CsmaConfig {
        &self.config
    }

    /// Number of per-station states tracked.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    fn idx(&self, stage: usize, credits: u32, bc: u32) -> usize {
        self.base[stage][credits as usize] + bc as usize
    }

    /// Spread `mass` uniformly over the fresh draws of `stage`.
    fn add_fresh(&self, dist: &mut [f64], stage: usize, mass: f64) {
        let w = self.config.stage(stage).cw;
        let per = mass / w as f64;
        let b0 = self.idx(stage, 0, 0);
        for v in 0..w as usize {
            dist[b0 + v] += per;
        }
    }

    /// Deferred update of a state after surviving a round of length `r`
    /// (`r < bc`): returns `(state index, jumped)`.
    fn defer_target(&self, s: FullState, r: u32) -> usize {
        let sp = self.config.stage(s.stage);
        let m = self.config.num_stages();
        if sp.dc == DC_DISABLED {
            return self.idx(s.stage, 0, s.bc - r - 1);
        }
        let tracked = sp.dc.min(MAX_TRACKED_CREDITS);
        if s.credits_used >= tracked {
            // Credits exhausted: jump to the next stage and redraw — handled
            // by the caller via add_fresh, signalled with usize::MAX.
            let _ = m;
            usize::MAX
        } else {
            self.idx(s.stage, s.credits_used + 1, s.bc - r - 1)
        }
    }

    /// bc marginal of a distribution.
    fn bc_marginal(&self, dist: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.wmax];
        for (si, &p) in dist.iter().enumerate() {
            out[self.states[si].bc as usize] += p;
        }
        out
    }

    /// Survival function `G(v) = P(bc > v)` from a bc pmf.
    fn survival(pmf: &[f64]) -> Vec<f64> {
        let mut g = vec![0.0; pmf.len() + 1];
        for v in (0..pmf.len()).rev() {
            g[v] = g[v + 1] + pmf[v];
        }
        // g[v] currently P(bc ≥ v); shift to P(bc > v).
        (0..pmf.len()).map(|v| g[v + 1]).collect()
    }

    /// Solve the coupled fixed point for `n` stations.
    pub fn solve(&self, n: usize) -> CoupledFixedPoint {
        assert!(n >= 1, "need at least one station");
        let m = self.config.num_stages();
        let ns = self.states.len();

        if n == 1 {
            let w0 = self.config.stage(0).cw as f64;
            let mut champ_marg = vec![0.0; m];
            champ_marg[0] = 1.0;
            return CoupledFixedPoint {
                n,
                collision_probability: 0.0,
                round_success_probability: 1.0,
                idle_slots_per_round: (w0 - 1.0) / 2.0,
                transmitters_per_round: 1.0,
                loser_stage_marginal: champ_marg.clone(),
                champion_stage_marginal: champ_marg,
            };
        }

        // Initialize: champion fresh at 0; losers fresh at stage min(1, m−1)
        // (a plausible post-loss state; the fixed point is insensitive).
        let mut pi_w = vec![0.0; ns];
        self.add_fresh(&mut pi_w, 0, 1.0);
        let mut pi_l = vec![0.0; ns];
        self.add_fresh(&mut pi_l, 1.min(m - 1), 1.0);

        let damping = 0.6;
        for _ in 0..5_000 {
            let (nw, nl) = self.step(&pi_w, &pi_l, n);
            let mut delta = 0.0;
            for i in 0..ns {
                let bw = damping * nw[i] + (1.0 - damping) * pi_w[i];
                let bl = damping * nl[i] + (1.0 - damping) * pi_l[i];
                delta += (bw - pi_w[i]).abs() + (bl - pi_l[i]).abs();
                pi_w[i] = bw;
                pi_l[i] = bl;
            }
            if delta < 1e-12 {
                break;
            }
        }

        self.quantities(&pi_w, &pi_l, n)
    }

    /// One synchronous update of `(π_W, π_L)`.
    fn step(&self, pi_w: &[f64], pi_l: &[f64], n: usize) -> (Vec<f64>, Vec<f64>) {
        let ns = self.states.len();
        let m = self.config.num_stages();
        let others_l = n - 2; // losers seen by a tagged loser besides the champion

        let lb = self.bc_marginal(pi_l);
        let wb = self.bc_marginal(pi_w);
        let gl = Self::survival(&lb); // P(loser bc > v)
        let gw = Self::survival(&wb); // P(champion bc > v)

        // P(min of the N−1 losers > v) and split of min events.
        let g_all_l: Vec<f64> = (0..self.wmax).map(|v| gl[v].powi((n - 1) as i32)).collect();
        // Champion update --------------------------------------------------
        let mut next_w = vec![0.0; ns];
        let mut champion_into_pool = vec![0.0; ns]; // flows into π_L'
        let mut fresh0_mass = 0.0; // new champion after any success

        for (si, &p) in pi_w.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let s = self.states[si];
            let b = s.bc as usize;
            // Champion wins: all N−1 losers strictly above b.
            fresh0_mass += p * g_all_l[b];
            // Champion ties at b: min of losers == b.
            let p_min_l_eq_b = if b == 0 {
                1.0 - g_all_l[0]
            } else {
                gl[b - 1].powi((n - 1) as i32) - g_all_l[b]
            };
            let adv = (s.stage + 1).min(m - 1);
            self.add_fresh(&mut next_w, adv, p * p_min_l_eq_b);
            // Losers' min at r < b: split success (exactly one loser at r)
            // vs loser collision.
            for r in 0..b {
                let p_min_l_eq_r = if r == 0 {
                    1.0 - gl[0].powi((n - 1) as i32)
                } else {
                    gl[r - 1].powi((n - 1) as i32) - gl[r].powi((n - 1) as i32)
                };
                if p_min_l_eq_r == 0.0 {
                    continue;
                }
                let p_one = (n - 1) as f64 * lb[r] * gl[r].powi((n - 2) as i32);
                let p_coll = (p_min_l_eq_r - p_one).max(0.0);
                // Deferred champion state after round length r.
                let tgt = self.defer_target(s, r as u32);
                if p_one > 0.0 {
                    // Loser success: new champion fresh; old one joins pool.
                    fresh0_mass += p * p_one;
                    if tgt == usize::MAX {
                        // Jump while entering the pool.
                        let adv = (s.stage + 1).min(m - 1);
                        self.add_fresh(&mut champion_into_pool, adv, p * p_one);
                    } else {
                        champion_into_pool[tgt] += p * p_one;
                    }
                }
                if p_coll > 0.0 {
                    // Losers collided: champion keeps the title, deferred.
                    if tgt == usize::MAX {
                        let adv = (s.stage + 1).min(m - 1);
                        self.add_fresh(&mut next_w, adv, p * p_coll);
                    } else {
                        next_w[tgt] += p * p_coll;
                    }
                }
            }
        }
        self.add_fresh(&mut next_w, 0, fresh0_mass);

        // Tagged-loser update ----------------------------------------------
        // Others of a tagged loser: the champion + (N−2) losers.
        let g_others: Vec<f64> = (0..self.wmax)
            .map(|v| gw[v] * gl[v].powi(others_l as i32))
            .collect();
        let mut stay = vec![0.0; ns];
        let mut win_exit = 0.0;
        for (si, &p) in pi_l.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let s = self.states[si];
            let b = s.bc as usize;
            // Tagged wins: everyone else above b → leaves the pool.
            win_exit += p * g_others[b];
            // Tagged ties: min of others == b → collision, advance fresh.
            let p_tie = if b == 0 {
                1.0 - g_others[0]
            } else {
                let ge_prev = gw[b - 1] * gl[b - 1].powi(others_l as i32);
                ge_prev - g_others[b]
            };
            let adv = (s.stage + 1).min(m - 1);
            self.add_fresh(&mut stay, adv, p * p_tie);
            // Tagged defers at r < b.
            for r in 0..b {
                let p_min_eq_r = if r == 0 {
                    1.0 - g_others[0]
                } else {
                    gw[r - 1] * gl[r - 1].powi(others_l as i32) - g_others[r]
                };
                // p_min_eq_r as written includes ties AT b when r == b; here
                // r < b strictly so it is exactly "others' min == r".
                if p_min_eq_r == 0.0 {
                    continue;
                }
                let tgt = self.defer_target(s, r as u32);
                if tgt == usize::MAX {
                    let adv = (s.stage + 1).min(m - 1);
                    self.add_fresh(&mut stay, adv, p * p_min_eq_r);
                } else {
                    stay[tgt] += p * p_min_eq_r;
                }
            }
        }

        // Pool recomposition: (N−1)·stay-per-loser + champion inflow, then
        // renormalize to a probability distribution.
        let pool_n = (n - 1) as f64;
        let mut next_l = vec![0.0; ns];
        for i in 0..ns {
            next_l[i] = pool_n * stay[i] + champion_into_pool[i];
        }
        let total: f64 = next_l.iter().sum();
        debug_assert!(
            (total - pool_n).abs() < 1e-6 || total == 0.0,
            "pool mass drift: {total} vs {pool_n} (win_exit {win_exit})"
        );
        if total > 0.0 {
            for x in &mut next_l {
                *x /= total;
            }
        }
        let totw: f64 = next_w.iter().sum();
        if totw > 0.0 {
            for x in &mut next_w {
                *x /= totw;
            }
        }
        (next_w, next_l)
    }

    /// Derived round quantities at a fixed point.
    fn quantities(&self, pi_w: &[f64], pi_l: &[f64], n: usize) -> CoupledFixedPoint {
        let lb = self.bc_marginal(pi_l);
        let wb = self.bc_marginal(pi_w);
        let gl = Self::survival(&lb);
        let gw = Self::survival(&wb);

        let mut p_succ = 0.0;
        let mut transmitters = 0.0;
        let mut idle = 0.0;
        for v in 0..self.wmax {
            let ge_l = gl[v] + lb[v]; // P(loser bc ≥ v)
            let ge_w = gw[v] + wb[v]; // P(champion bc ≥ v)
                                      // Exactly one at the global min v: champion alone, or one loser.
            p_succ += wb[v] * gl[v].powi((n - 1) as i32)
                + (n - 1) as f64 * lb[v] * gw[v] * gl[v].powi((n - 2) as i32);
            // E[# stations at v that are at the global min]: each needs all
            // the *other* stations at ≥ v.
            transmitters += wb[v] * ge_l.powi((n - 1) as i32)
                + (n - 1) as f64 * lb[v] * ge_w * ge_l.powi((n - 2) as i32);
            // P(global min > v) — contributes one idle slot each.
            idle += gw[v] * gl[v].powi((n - 1) as i32);
        }

        let gamma = if transmitters > 0.0 {
            ((transmitters - p_succ) / transmitters).max(0.0)
        } else {
            0.0
        };

        let stage_marg = |dist: &[f64]| {
            let mut out = vec![0.0; self.config.num_stages()];
            for (si, &p) in dist.iter().enumerate() {
                out[self.states[si].stage] += p;
            }
            out
        };

        CoupledFixedPoint {
            n,
            collision_probability: gamma,
            round_success_probability: p_succ.min(1.0),
            idle_slots_per_round: idle,
            transmitters_per_round: transmitters,
            loser_stage_marginal: stage_marg(pi_l),
            champion_stage_marginal: stage_marg(pi_w),
        }
    }

    /// Normalized throughput for `n` stations under `timing`.
    pub fn throughput(&self, n: usize, timing: &MacTiming) -> f64 {
        let fp = self.solve(n);
        let p_succ = fp.round_success_probability;
        let p_coll = 1.0 - p_succ;
        let denom = fp.idle_slots_per_round * timing.slot.as_micros()
            + p_succ * timing.ts.as_micros()
            + p_coll * timing.tc.as_micros();
        if denom == 0.0 {
            return 0.0;
        }
        p_succ * timing.frame_length.as_micros() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_enumeration_ca1() {
        let m = CoupledModel::default_ca1();
        // 8·1 + 16·2 + 32·4 + 64·16 = 1192 states.
        assert_eq!(m.num_states(), 1192);
    }

    #[test]
    fn single_station_closed_form() {
        let fp = CoupledModel::default_ca1().solve(1);
        assert_eq!(fp.collision_probability, 0.0);
        assert!((fp.idle_slots_per_round - 3.5).abs() < 1e-12);
    }

    #[test]
    fn figure2_analysis_curve() {
        // The primary analysis must land on the paper's Figure 2 values.
        let model = CoupledModel::default_ca1();
        let expected = [
            (2, 0.074),
            (3, 0.134),
            (4, 0.178),
            (5, 0.218),
            (6, 0.244),
            (7, 0.267),
        ];
        for (n, target) in expected {
            let fp = model.solve(n);
            assert!(
                (fp.collision_probability - target).abs() < 0.015,
                "N={n}: coupled model {:.4} vs paper ≈ {target}",
                fp.collision_probability
            );
        }
    }

    #[test]
    fn matches_simulation_within_a_point() {
        use plc_sim::paper::PaperSim;
        let model = CoupledModel::default_ca1();
        for n in [2usize, 4, 7] {
            let fp = model.solve(n);
            let sim = PaperSim::with_n_and_time(n, 2e7).run(77).unwrap();
            assert!(
                (fp.collision_probability - sim.collision_pr).abs() < 0.012,
                "N={n}: coupled {:.4} vs simulation {:.4}",
                fp.collision_probability,
                sim.collision_pr
            );
        }
    }

    #[test]
    fn throughput_matches_simulation() {
        use plc_sim::paper::PaperSim;
        let model = CoupledModel::default_ca1();
        let timing = MacTiming::paper_default();
        for n in [1usize, 2, 5] {
            let s_model = model.throughput(n, &timing);
            let s_sim = PaperSim::with_n_and_time(n, 2e7)
                .run(5)
                .unwrap()
                .norm_throughput;
            assert!(
                (s_model - s_sim).abs() < 0.02,
                "N={n}: model S={s_model:.4} vs sim S={s_sim:.4}"
            );
        }
    }

    #[test]
    fn monotone_in_n() {
        let model = CoupledModel::default_ca1();
        let mut prev = 0.0;
        for n in 1..=12 {
            let fp = model.solve(n);
            assert!(
                fp.collision_probability >= prev - 1e-9,
                "N={n}: {} < {prev}",
                fp.collision_probability
            );
            prev = fp.collision_probability;
        }
    }

    #[test]
    fn champion_sits_lower_than_losers() {
        // The champion is fresh at stage 0 after every success, so its
        // stage marginal must be concentrated strictly below the losers'.
        let fp = CoupledModel::default_ca1().solve(4);
        assert!(
            fp.champion_stage_marginal[0] > fp.loser_stage_marginal[0] + 0.2,
            "champion {:?} vs losers {:?}",
            fp.champion_stage_marginal,
            fp.loser_stage_marginal
        );
    }

    #[test]
    fn best_of_the_three_models() {
        // The coupled model must beat both the slot-decoupled model and
        // the fresh-draw round model against the simulator at N = 2 and 7.
        use plc_sim::paper::PaperSim;
        for n in [2usize, 7] {
            let sim = PaperSim::with_n_and_time(n, 2e7)
                .run(5)
                .unwrap()
                .collision_pr;
            let coupled = CoupledModel::default_ca1().solve(n).collision_probability;
            let decoupled = crate::model1901::Model1901::default_ca1()
                .solve(n)
                .collision_probability;
            let round = crate::round_model::RoundModel::default_ca1()
                .solve(n)
                .collision_probability;
            assert!(
                (coupled - sim).abs() <= (decoupled - sim).abs() + 1e-9,
                "N={n}: coupled {coupled:.4} vs decoupled {decoupled:.4} (sim {sim:.4})"
            );
            assert!(
                (coupled - sim).abs() <= (round - sim).abs() + 1e-9,
                "N={n}: coupled {coupled:.4} vs round {round:.4} (sim {sim:.4})"
            );
        }
    }

    #[test]
    fn dcf_like_table_supported() {
        let m = CoupledModel::new(CsmaConfig::dcf_like(16, 4).unwrap());
        let fp = m.solve(5);
        assert!(fp.collision_probability > 0.0 && fp.collision_probability < 0.6);
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn zero_stations_rejected() {
        CoupledModel::default_ca1().solve(0);
    }
}
