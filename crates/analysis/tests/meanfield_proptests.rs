//! Property tests over the mean-field fixed-point solver: for *any*
//! valid (CW_i, d_i) schedule the damped iteration either converges
//! within the cap — returning a point that actually satisfies the
//! residual bound with every probability inside [0, 1] — or fails with
//! a typed [`plc_core::error::Error`]. It never panics and never
//! silently returns a non-fixed point.

use plc_analysis::meanfield::{MeanFieldModel, SolverOptions};
use plc_core::config::{CsmaConfig, DC_DISABLED};
use plc_core::error::Error;
use proptest::prelude::*;

/// A random valid backoff schedule: 1–5 stages, windows in [1, 256],
/// deferral counters small or disabled.
fn schedules() -> impl Strategy<Value = CsmaConfig> {
    prop::collection::vec(
        (1u32..=256, prop_oneof![Just(DC_DISABLED), 0u32..=31]),
        1..=5,
    )
    .prop_map(|stages| {
        let (cw, dc): (Vec<u32>, Vec<u32>) = stages.into_iter().unzip();
        CsmaConfig::from_vectors(&cw, &dc).expect("generated schedule is valid")
    })
}

/// Every probability in a solution that must live in the unit interval.
fn check_unit_interval(sol: &plc_analysis::MeanFieldSolution) {
    let eps = 1e-12;
    for class in &sol.classes {
        assert!(
            (-eps..=1.0 + eps).contains(&class.tau),
            "tau out of range: {}",
            class.tau
        );
        assert!(
            (-eps..=1.0 + eps).contains(&class.collision_probability),
            "p out of range: {}",
            class.collision_probability
        );
        for &x in &class.stage_attempt_probs {
            assert!((-eps..=1.0 + eps).contains(&x), "x_i out of range: {x}");
        }
        for &o in &class.stage_occupancy {
            assert!(
                (-eps..=1.0 + eps).contains(&o),
                "occupancy out of range: {o}"
            );
        }
    }
    for p in [sol.slots.idle, sol.slots.success, sol.slots.collision] {
        assert!(
            (-eps..=1.0 + eps).contains(&p),
            "slot prob out of range: {p}"
        );
    }
    let total = sol.slots.idle + sol.slots.success + sol.slots.collision;
    assert!(
        (total - 1.0).abs() < 1e-9,
        "slot probabilities must partition the slot, got {total}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random schedules at random population sizes converge under the
    /// default options, and the returned point satisfies the advertised
    /// residual bound.
    #[test]
    fn random_schedules_converge_to_a_verified_fixed_point(
        config in schedules(),
        n in 1usize..=300,
    ) {
        let sol = MeanFieldModel::single(config, n)
            .solve()
            .expect("default options converge on valid schedules");
        prop_assert!(sol.diagnostics.converged);
        prop_assert!(
            sol.diagnostics.residual <= SolverOptions::default().tolerance,
            "reported residual {} exceeds the tolerance",
            sol.diagnostics.residual
        );
        check_unit_interval(&sol);
    }

    /// Damping anywhere in (0, 1] keeps every probability inside the
    /// unit interval — the clamped update can never overshoot into
    /// nonsense even with a full-step (undamped) iteration.
    #[test]
    fn any_damping_keeps_probabilities_in_the_unit_interval(
        config in schedules(),
        n in 2usize..=100,
        damping in 0.05f64..=1.0,
    ) {
        let result = MeanFieldModel::single(config, n)
            .options(SolverOptions { damping, ..SolverOptions::default() })
            .solve();
        match result {
            Ok(sol) => check_unit_interval(&sol),
            // A hostile damping choice may legitimately fail to converge;
            // it must do so through the typed runtime error.
            Err(Error::Runtime { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// A starved iteration cap produces the typed non-convergence error,
    /// never a panic and never a silently-returned non-fixed point.
    #[test]
    fn starved_iteration_caps_fail_with_a_typed_error(
        config in schedules(),
        n in 2usize..=300,
        cap in 1u32..=2,
    ) {
        let result = MeanFieldModel::single(config, n)
            .options(SolverOptions {
                tolerance: 1e-15,
                max_iterations: cap,
                ..SolverOptions::default()
            })
            .solve();
        match result {
            // One or two iterations can only converge by luck; accept it
            // but hold the result to the same bound.
            Ok(sol) => {
                prop_assert!(sol.diagnostics.converged);
                prop_assert!(sol.diagnostics.residual <= 1e-15);
            }
            Err(Error::Runtime { .. }) => {}
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }

    /// Multi-class models obey the same contract: a mixed pair of random
    /// schedules yields per-class probabilities in range and a slot
    /// partition that sums to one.
    #[test]
    fn multi_class_solutions_stay_consistent(
        a in schedules(),
        b in schedules(),
        na in 1usize..=50,
        nb in 1usize..=50,
    ) {
        let sol = MeanFieldModel::new()
            .class("a", a, na)
            .class("b", b, nb)
            .solve()
            .expect("default options converge on valid schedules");
        prop_assert!(sol.diagnostics.converged);
        prop_assert_eq!(sol.total_stations(), na + nb);
        check_unit_interval(&sol);
    }
}

/// Out-of-range solver options are configuration errors, caught before
/// any iteration runs.
#[test]
fn invalid_options_are_config_errors() {
    for options in [
        SolverOptions {
            damping: 0.0,
            ..SolverOptions::default()
        },
        SolverOptions {
            damping: 1.5,
            ..SolverOptions::default()
        },
        SolverOptions {
            max_iterations: 0,
            ..SolverOptions::default()
        },
        SolverOptions {
            tolerance: 0.0,
            ..SolverOptions::default()
        },
    ] {
        let err = MeanFieldModel::single(CsmaConfig::ieee1901_ca01(), 5)
            .options(options)
            .solve()
            .expect_err("invalid options must be rejected");
        assert!(matches!(err, Error::InvalidConfig { .. }), "got {err}");
    }
}
