//! Three-way comparison pinned as golden JSON: the slotted engine
//! (seeded, hence deterministic), the mean-field decoupling fixed point,
//! and the Cano–Malone deterministic-deferral reference over a small-N
//! CA1 grid. The committed table is the regression anchor for *all
//! three* estimators at once — any drift in the engine, the solver, or
//! the reference model shows up as a byte diff here.
//!
//! Bless a new golden after an intentional change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p plc-analysis --test three_way_golden
//! ```

use plc_analysis::{CanoMaloneModel, MeanFieldModel};
use plc_core::config::CsmaConfig;
use plc_sim::Simulation;
use std::fmt::Write as _;
use std::path::PathBuf;

const STATION_COUNTS: [usize; 6] = [2, 3, 5, 7, 10, 20];
const HORIZON_US: f64 = 2.0e6;
const SEED: u64 = 424_242;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/three_way_comparison.json")
}

/// Render the comparison table as stable JSON: six decimal places
/// everywhere, one row object per line, keys in a fixed order.
fn render() -> String {
    let config = CsmaConfig::ieee1901_ca01();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"config\": \"CA1\",\n");
    let _ = writeln!(out, "  \"horizon_us\": {HORIZON_US:.1},");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"rows\": [\n");
    for (i, &n) in STATION_COUNTS.iter().enumerate() {
        let slotted = Simulation::ieee1901(n)
            .config(config.clone())
            .horizon_us(HORIZON_US)
            .seed(SEED)
            .run();
        let mf = MeanFieldModel::single(config.clone(), n)
            .solve()
            .expect("mean-field converges on the CA1 table");
        let cm = CanoMaloneModel::new(config.clone()).solve(n);
        let class = &mf.classes[0];
        let _ = write!(
            out,
            "    {{\"n\": {n}, \
             \"slotted_gamma\": {:.6}, \"slotted_throughput\": {:.6}, \
             \"meanfield_gamma\": {:.6}, \"meanfield_tau\": {:.6}, \
             \"cano_malone_gamma\": {:.6}, \"cano_malone_tau\": {:.6}}}",
            slotted.collision_probability,
            slotted.norm_throughput,
            class.collision_probability,
            class.tau,
            cm.collision_probability,
            cm.tau,
        );
        out.push_str(if i + 1 < STATION_COUNTS.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn three_way_comparison_matches_golden() {
    let rendered = render();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); bless it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "three-way comparison drifted from the golden table; if the \
         change is intentional, re-bless with UPDATE_GOLDEN=1"
    );
}

/// The golden is not just frozen bytes — sanity-check the relationships
/// it encodes: both analytic models track the seeded engine within the
/// documented small-N envelope, and the two *independent* analytic
/// references agree with each other much more tightly than either is
/// required to agree with the stochastic engine.
#[test]
fn golden_relationships_hold() {
    let config = CsmaConfig::ieee1901_ca01();
    for n in STATION_COUNTS {
        let mf = MeanFieldModel::single(config.clone(), n).solve().unwrap();
        let cm = CanoMaloneModel::new(config.clone()).solve(n);
        // Deterministic deferral (Cano-Malone) attempts slightly more
        // often than the binomial-deferral chain, so it sits above the
        // mean-field point — but the two independent references stay
        // within 0.03 of each other, tighter than the 0.065 small-N
        // envelope either needs against the stochastic engine.
        let gap = cm.collision_probability - mf.classes[0].collision_probability;
        assert!(
            (0.0..0.03).contains(&gap),
            "N={n}: mean-field vs Cano-Malone gap {gap:.4} out of range"
        );
        assert!(
            (mf.classes[0].tau - cm.tau).abs() < 0.03,
            "N={n}: attempt rates disagree"
        );
    }
}
