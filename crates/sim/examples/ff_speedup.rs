//! Measures the idle-slot fast-forward win on the saturated N=50
//! workload pinned by bench-snapshot (`engine_1901_n50_sat_500s`).
//!
//! ```console
//! cargo run --release -p plc-sim --example ff_speedup
//! ```

use plc_sim::runner::Simulation;
use std::time::Instant;

fn time_run(n: usize, ff: bool) -> (f64, plc_sim::runner::SimReport) {
    let started = Instant::now();
    let report = Simulation::ieee1901(n)
        .horizon_us(5.0e8)
        .seed(1)
        .fast_forward(ff)
        .run();
    (started.elapsed().as_secs_f64(), report)
}

fn main() {
    time_run(5, true); // warm-up
    for n in [1, 2, 5, 10, 20, 50] {
        let (fast_secs, fast) = time_run(n, true);
        let (slow_secs, slow) = time_run(n, false);
        assert_eq!(fast, slow, "fast-forward must not change results");
        println!(
            "N={n:<3} ff on {fast_secs:7.3} s   ff off {slow_secs:7.3} s   speedup {:5.2}x",
            slow_secs / fast_secs
        );
    }
}
