//! Zero-allocation pins for the engine hot loops.
//!
//! The SoA contention core, the batched RNG draw buffer and the reused
//! scratch vectors exist so that steady-state stepping never touches
//! the heap. This test pins that property with a counting global
//! allocator: running the same scenario for horizon `H` and `2·H` must
//! perform the **same number of allocations** — everything the engine
//! allocates happens at build time or during the first steps (warmup
//! growth of reusable buffers), never per step thereafter.
//!
//! The counter is thread-local, so tests running concurrently in other
//! threads cannot perturb a measurement.

use plc_sim::multiclass::{ClassStationSpec, MultiClassConfig, MultiClassEngine};
use plc_sim::runner::Simulation;
use plc_sim::traffic::TrafficModel;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations performed by `f` on this thread.
fn allocs_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCS.with(|c| c.get());
    let out = f();
    (out, ALLOCS.with(|c| c.get()) - before)
}

/// Build + run the given scenario and return its allocation count.
/// Successes are asserted so a silently-idle run can't pass vacuously.
fn engine_allocs(horizon_us: f64, fast_forward: bool, soa: bool) -> u64 {
    let sim = Simulation::ieee1901(10)
        .horizon_us(horizon_us)
        .seed(42)
        .fast_forward(fast_forward)
        .soa(soa);
    let (report, count) = allocs_during(|| sim.run());
    assert!(report.successes > 0);
    count
}

#[test]
fn saturated_run_does_not_allocate_per_step() {
    // Doubling the horizon doubles the steps; if the steady-state loop
    // allocated even once per step, the counts would differ by
    // thousands. Build-time and warmup allocations are identical.
    let short = engine_allocs(1e6, true, true);
    let long = engine_allocs(2e6, true, true);
    assert_eq!(
        short, long,
        "hot loop allocated ({long} allocs at 2x horizon vs {short})"
    );
}

#[test]
fn per_slot_path_does_not_allocate_per_step() {
    let short = engine_allocs(1e6, false, true);
    let long = engine_allocs(2e6, false, true);
    assert_eq!(short, long, "per-slot path allocated per step");
}

#[test]
fn object_reference_path_does_not_allocate_per_step() {
    let short = engine_allocs(1e6, true, false);
    let long = engine_allocs(2e6, true, false);
    assert_eq!(short, long, "per-object path allocated per step");
}

#[test]
fn multiclass_round_does_not_allocate_per_round() {
    let run = |horizon_us: f64| {
        let (successes, count) = allocs_during(|| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut stations = Vec::new();
            for _ in 0..4 {
                stations.push(ClassStationSpec::new(
                    plc_mac::Backoff1901::new(
                        plc_core::config::CsmaConfig::ieee1901_ca01(),
                        &mut rng,
                    ),
                    plc_core::priority::Priority::CA1,
                    TrafficModel::Saturated,
                ));
            }
            let cfg = MultiClassConfig {
                horizon: plc_core::units::Microseconds(horizon_us),
                ..Default::default()
            };
            let mut engine = MultiClassEngine::new(cfg, stations, 7);
            engine.run().successes
        });
        assert!(successes > 0);
        count
    };
    let short = run(1e6);
    let long = run(2e6);
    assert_eq!(short, long, "multiclass PRS/backoff round allocated");
}
