//! Byte-identity pins for the idle-slot fast-forward.
//!
//! The engine's fast path absorbs runs of guaranteed-idle slots in one
//! jump (see `SlottedEngine::run`). The optimization claims *exactness*:
//! with it on or off, the event trace, the metrics struct and the sweep
//! JSON export are byte-for-byte identical — not statistically close,
//! identical. These tests pin that claim across every feature that
//! interacts with the skip bound: both protocols, beacons, impulse
//! noise, unsaturated traffic, PB errors, bursts, and the multi-class
//! engine's PRS-aware variant. A property test drives randomized beacon
//! and noise schedules through both paths.

use parking_lot::Mutex;
use plc_faults::NoiseBurst;
use plc_sim::bursting::BurstPolicy;
use plc_sim::runner::{SimReport, Simulation};
use plc_sim::trace::{TraceEvent, VecTraceSink};
use plc_sim::traffic::TrafficModel;
use proptest::prelude::*;
use std::sync::Arc;

/// Run `sim` twice — fast-forward on and off — and assert the reports
/// and full event traces match exactly. Returns the (shared) report.
fn assert_ff_equivalent(sim: Simulation) -> (SimReport, Vec<TraceEvent>) {
    let fast_sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let slow_sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let fast = sim.clone().fast_forward(true).sink(fast_sink.clone()).run();
    let slow = sim.fast_forward(false).sink(slow_sink.clone()).run();
    assert_eq!(fast, slow, "reports must be identical");
    let fast_events = std::mem::take(&mut fast_sink.lock().events);
    let slow_events = &slow_sink.lock().events;
    assert_eq!(
        fast_events.len(),
        slow_events.len(),
        "event counts must match"
    );
    for (i, (a, b)) in fast_events.iter().zip(slow_events.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged");
    }
    (fast, fast_events)
}

#[test]
fn equivalent_1901_single_station() {
    // N = 1 is the best case for the fast path: every backoff is a pure
    // idle run. The trace must still be identical slot for slot.
    let (report, events) = assert_ff_equivalent(Simulation::ieee1901(1).horizon_us(2e6).seed(1));
    assert!(report.successes > 0);
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::IdleSlot { .. })));
}

#[test]
fn equivalent_1901_contending() {
    let (report, _) = assert_ff_equivalent(Simulation::ieee1901(3).horizon_us(2e6).seed(2));
    assert!(report.collided_tx > 0, "3 stations must collide");
}

#[test]
fn equivalent_dcf() {
    let (report, _) = assert_ff_equivalent(Simulation::dcf(2).horizon_us(2e6).seed(3));
    assert!(report.successes > 0);
}

#[test]
fn equivalent_with_beacons() {
    let (report, events) = assert_ff_equivalent(
        Simulation::ieee1901(2)
            .horizon_us(2e6)
            .seed(4)
            .beacons(plc_sim::engine::BeaconSchedule::standard_50hz()),
    );
    assert!(report.metrics.beacons > 0, "beacons must fire");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Beacon { .. })));
}

#[test]
fn equivalent_with_noise() {
    let noise = vec![
        NoiseBurst {
            start_us: 1e5,
            duration_us: 5e4,
        },
        NoiseBurst {
            start_us: 9e5,
            duration_us: 2e5,
        },
    ];
    let (report, _) =
        assert_ff_equivalent(Simulation::ieee1901(2).horizon_us(2e6).seed(5).noise(noise));
    let errored: u64 = report
        .metrics
        .per_station
        .iter()
        .map(|s| s.pbs_errored)
        .sum();
    assert!(errored > 0, "noise bursts must corrupt PBs");
}

#[test]
fn equivalent_poisson_traffic() {
    // Unsaturated stations exercise the next-arrival clamp: the skip must
    // stop exactly where advance_to would enqueue a frame.
    let (report, _) =
        assert_ff_equivalent(Simulation::ieee1901(3).horizon_us(2e6).seed(6).traffic(
            TrafficModel::Poisson {
                rate_per_us: 2e-4,
                queue_cap: 16,
            },
        ));
    assert!(report.successes > 0);
}

#[test]
fn equivalent_pb_errors_and_bursts() {
    let (report, _) = assert_ff_equivalent(
        Simulation::ieee1901(2)
            .horizon_us(2e6)
            .seed(7)
            .pb_error_prob(0.1)
            .burst(BurstPolicy::INT6300),
    );
    let errored: u64 = report
        .metrics
        .per_station
        .iter()
        .map(|s| s.pbs_errored)
        .sum();
    assert!(errored > 0);
}

#[test]
fn equivalent_everything_at_once() {
    let (report, _) = assert_ff_equivalent(
        Simulation::ieee1901(3)
            .horizon_us(3e6)
            .seed(8)
            .beacons(plc_sim::engine::BeaconSchedule::standard_50hz())
            .noise([NoiseBurst {
                start_us: 5e5,
                duration_us: 1e5,
            }])
            .pb_error_prob(0.05)
            .burst(BurstPolicy::INT6300)
            .traffic(TrafficModel::OnOff {
                rate_per_us: 5e-4,
                mean_on_us: 2e5,
                mean_off_us: 1e5,
                queue_cap: 8,
            }),
    );
    assert!(report.metrics.beacons > 0);
}

#[test]
fn sweep_json_is_byte_identical() {
    use plc_sim::sweep::SweepGrid;
    let json = |ff: bool| {
        SweepGrid::new(11)
            .config(
                "1901",
                Simulation::ieee1901(2).horizon_us(5e5).fast_forward(ff),
            )
            .config("dcf", Simulation::dcf(2).horizon_us(5e5).fast_forward(ff))
            .stations([1, 2, 5])
            .replications(2)
            .workers(2)
            .run()
            .to_json()
    };
    assert_eq!(json(true), json(false), "sweep JSON must not change");
}

#[test]
fn multiclass_prs_equivalence() {
    use plc_core::config::CsmaConfig;
    use plc_core::priority::Priority;
    use plc_mac::Backoff1901;
    use plc_sim::multiclass::{ClassStationSpec, MultiClassConfig, MultiClassEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let run = |ff: bool| {
        let mut rng = SmallRng::seed_from_u64(21);
        let mut stations = Vec::new();
        for _ in 0..2 {
            stations.push(ClassStationSpec::new(
                Backoff1901::new(CsmaConfig::ieee1901_ca01(), &mut rng),
                Priority::CA1,
                TrafficModel::Saturated,
            ));
        }
        stations.push(ClassStationSpec::new(
            Backoff1901::new(CsmaConfig::ieee1901_ca23(), &mut rng),
            Priority::CA2,
            TrafficModel::Poisson {
                rate_per_us: 1e-5,
                queue_cap: 8,
            },
        ));
        let cfg = MultiClassConfig {
            horizon: plc_core::units::Microseconds(2e6),
            fast_forward: ff,
            ..Default::default()
        };
        let sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let mut engine = MultiClassEngine::new(cfg, stations, 21);
        engine.add_sink(sink.clone());
        engine.run();
        let events = std::mem::take(&mut sink.lock().events);
        (engine.metrics().clone(), events)
    };
    let (fast_metrics, fast_events) = run(true);
    let (slow_metrics, slow_events) = run(false);
    assert_eq!(fast_metrics, slow_metrics, "multiclass metrics diverged");
    assert_eq!(
        fast_events.len(),
        slow_events.len(),
        "multiclass event counts diverged"
    );
    for (i, (a, b)) in fast_events.iter().zip(slow_events.iter()).enumerate() {
        assert_eq!(a, b, "multiclass event {i} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized beacon/noise schedules: the fast path must stop at
    /// every beacon and noise edge exactly where the slow path does, so
    /// traces, beacon counts and PB error totals all agree.
    #[test]
    fn skips_never_jump_past_beacon_or_noise_edges(
        seed in 0u64..1000,
        n in 1usize..4,
        beacon_period in 2e4f64..8e4,
        beacon_air in 1e2f64..2e3,
        noise_start in 0f64..4e5,
        noise_len in 1e3f64..1e5,
        gap in 1e3f64..1e5,
    ) {
        let noise = vec![
            NoiseBurst { start_us: noise_start, duration_us: noise_len },
            NoiseBurst { start_us: noise_start + noise_len + gap, duration_us: noise_len },
        ];
        let sim = Simulation::ieee1901(n)
            .horizon_us(5e5)
            .seed(seed)
            .beacons(plc_sim::engine::BeaconSchedule {
                period: plc_core::units::Microseconds(beacon_period),
                duration: plc_core::units::Microseconds(beacon_air),
            })
            .noise(noise);
        let fast_sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let slow_sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let fast = sim.clone().fast_forward(true).sink(fast_sink.clone()).run();
        let slow = sim.fast_forward(false).sink(slow_sink.clone()).run();
        prop_assert_eq!(&fast.metrics, &slow.metrics);
        prop_assert_eq!(fast.metrics.beacons, slow.metrics.beacons);
        let fe = std::mem::take(&mut fast_sink.lock().events);
        let se = std::mem::take(&mut slow_sink.lock().events);
        prop_assert_eq!(fe, se);
    }
}
