//! Byte-identity pins for the struct-of-arrays contention core.
//!
//! The engine's hot path now runs on `ContentionCore`: parallel BC/DC/
//! BPC/stage arrays swept in one pass, with backoff redraws batched into
//! a per-step draw buffer. The rebuild claims *exactness*: with the SoA
//! core on or off, the event trace (including per-slot snapshots), the
//! metrics struct, observer snapshots and the sweep JSON export are
//! byte-for-byte identical — not statistically close, identical. The
//! batched draws consume the RNG stream in exactly the per-object call
//! order, so even the raw generator state matches slot for slot.
//!
//! These tests pin that claim across both protocols, beacons, impulse
//! noise, unsaturated traffic, PB errors, bursts, retry-limit drops,
//! per-slot snapshot emission, observers, and both fast-forward modes.
//! A property test drives randomized populations and seeds through all
//! four (soa × fast-forward) engine configurations.

use parking_lot::Mutex;
use plc_faults::NoiseBurst;
use plc_mac::retry::RetryPolicy;
use plc_sim::bursting::BurstPolicy;
use plc_sim::runner::{SimReport, Simulation};
use plc_sim::trace::{TraceEvent, VecTraceSink};
use plc_sim::traffic::TrafficModel;
use proptest::prelude::*;
use std::sync::Arc;

/// Run `sim` with the SoA core on and off and assert the reports and
/// full event traces match exactly. Both runs keep whatever
/// fast-forward setting `sim` carries. Returns the (shared) report.
fn assert_soa_equivalent(sim: Simulation) -> (SimReport, Vec<TraceEvent>) {
    let soa_sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let obj_sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let soa = sim.clone().soa(true).sink(soa_sink.clone()).run();
    let obj = sim.soa(false).sink(obj_sink.clone()).run();
    assert_eq!(soa, obj, "reports must be identical");
    let soa_events = std::mem::take(&mut soa_sink.lock().events);
    let obj_events = &obj_sink.lock().events;
    assert_eq!(
        soa_events.len(),
        obj_events.len(),
        "event counts must match"
    );
    for (i, (a, b)) in soa_events.iter().zip(obj_events.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged");
    }
    (soa, soa_events)
}

#[test]
fn equivalent_1901_saturated() {
    let (report, _) = assert_soa_equivalent(Simulation::ieee1901(3).horizon_us(2e6).seed(1));
    assert!(report.collided_tx > 0, "3 stations must collide");
}

#[test]
fn equivalent_1901_without_fast_forward() {
    // The slow per-slot path exercises idle_sweep on every idle slot.
    let (report, _) = assert_soa_equivalent(
        Simulation::ieee1901(3)
            .horizon_us(1e6)
            .seed(2)
            .fast_forward(false),
    );
    assert!(report.successes > 0);
}

#[test]
fn equivalent_dcf() {
    let (report, _) = assert_soa_equivalent(Simulation::dcf(3).horizon_us(2e6).seed(3));
    assert!(report.successes > 0);
}

#[test]
fn equivalent_with_per_slot_snapshots() {
    // Snapshot events reconstruct BackoffSnapshot from the SoA arrays
    // (stage/cw/bc/dc/bpc); any drift in the synthesis shows up here.
    let (_, events) = assert_soa_equivalent(
        Simulation::ieee1901(2)
            .horizon_us(2e5)
            .seed(4)
            .snapshots(true),
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::Snapshot { .. })));
    let (_, dcf_events) =
        assert_soa_equivalent(Simulation::dcf(2).horizon_us(2e5).seed(4).snapshots(true));
    assert!(dcf_events
        .iter()
        .any(|e| matches!(e, TraceEvent::Snapshot { .. })));
}

#[test]
fn equivalent_with_retry_drops() {
    // Finite retry at high error rate forces FrameDropped bookkeeping
    // through the collision/failure pre-pass.
    let (report, events) = assert_soa_equivalent(
        Simulation::ieee1901(4)
            .horizon_us(2e6)
            .seed(5)
            .pb_error_prob(0.6)
            .retry(RetryPolicy::Limited { max_attempts: 2 }),
    );
    let dropped: u64 = report.metrics.per_station.iter().map(|s| s.dropped).sum();
    assert!(dropped > 0, "drops must occur");
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::FrameDropped { .. })));
}

#[test]
fn equivalent_poisson_traffic() {
    // Unsaturated stations exercise the active[] flags: stations leave
    // and re-enter the backlog, and reactivation draws one immediate BC.
    let (report, _) =
        assert_soa_equivalent(Simulation::ieee1901(3).horizon_us(2e6).seed(6).traffic(
            TrafficModel::Poisson {
                rate_per_us: 2e-4,
                queue_cap: 16,
            },
        ));
    assert!(report.successes > 0);
}

#[test]
fn equivalent_everything_at_once() {
    let (report, _) = assert_soa_equivalent(
        Simulation::ieee1901(3)
            .horizon_us(3e6)
            .seed(7)
            .beacons(plc_sim::engine::BeaconSchedule::standard_50hz())
            .noise([NoiseBurst {
                start_us: 5e5,
                duration_us: 1e5,
            }])
            .pb_error_prob(0.05)
            .burst(BurstPolicy::INT6300)
            .retry(RetryPolicy::Limited { max_attempts: 7 })
            .traffic(TrafficModel::OnOff {
                rate_per_us: 5e-4,
                mean_on_us: 2e5,
                mean_off_us: 1e5,
                queue_cap: 8,
            }),
    );
    assert!(report.metrics.beacons > 0);
}

#[test]
fn observer_snapshots_are_identical() {
    // EngineObs synthesizes per-station backoff state from the core.
    let observe = |soa: bool| {
        let collector = Arc::new(Mutex::new(plc_obs::CollectingObserver::default()));
        let report = Simulation::ieee1901(3)
            .horizon_us(1e6)
            .seed(8)
            .soa(soa)
            .observer(collector.clone(), 500)
            .run();
        let snaps = std::mem::take(&mut collector.lock().engine);
        (report, snaps)
    };
    let (soa_report, soa_snaps) = observe(true);
    let (obj_report, obj_snaps) = observe(false);
    assert_eq!(soa_report, obj_report);
    assert!(!soa_snaps.is_empty(), "periodic snapshots must arrive");
    assert_eq!(soa_snaps, obj_snaps, "observer snapshots diverged");
}

#[test]
fn sweep_json_is_byte_identical() {
    use plc_sim::sweep::SweepGrid;
    let json = |soa: bool| {
        SweepGrid::new(13)
            .config("1901", Simulation::ieee1901(2).horizon_us(5e5).soa(soa))
            .config("dcf", Simulation::dcf(2).horizon_us(5e5).soa(soa))
            .stations([1, 2, 5])
            .replications(2)
            .workers(2)
            .run()
            .to_json()
    };
    assert_eq!(json(true), json(false), "sweep JSON must not change");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized populations and seeds through all four engine modes:
    /// the SoA core must agree with the per-object path with the
    /// fast-forward both on and off, under mixed traffic and errors.
    #[test]
    fn soa_matches_objects_for_random_populations(
        seed in 0u64..1000,
        n in 1usize..6,
        dcf in any::<bool>(),
        ff in any::<bool>(),
        rate in 1e-5f64..1e-3,
        pb_err in 0f64..0.3,
    ) {
        let base = if dcf { Simulation::dcf(n) } else { Simulation::ieee1901(n) };
        let sim = base
            .horizon_us(3e5)
            .seed(seed)
            .fast_forward(ff)
            .pb_error_prob(pb_err)
            .traffic(TrafficModel::Poisson { rate_per_us: rate, queue_cap: 8 });
        let soa_sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let obj_sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let soa = sim.clone().soa(true).sink(soa_sink.clone()).run();
        let obj = sim.soa(false).sink(obj_sink.clone()).run();
        prop_assert_eq!(&soa.metrics, &obj.metrics);
        let se = std::mem::take(&mut soa_sink.lock().events);
        let oe = std::mem::take(&mut obj_sink.lock().events);
        prop_assert_eq!(se, oe);
    }
}
