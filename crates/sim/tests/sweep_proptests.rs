//! Property tests over the sweep engine's seed derivation and
//! scheduling-independence guarantees.

use plc_sim::sweep::{derive_seed, splitmix64, SweepGrid};
use plc_sim::Simulation;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Per-point seed derivation is injective over (point_index,
    /// replication): a 100 × 100 grid of cells (10 000 samples) anchored
    /// at arbitrary offsets never produces a duplicate seed, for any
    /// master seed.
    #[test]
    fn seed_derivation_is_injective(
        master in any::<u64>(),
        point_base in 0u64..((1 << 32) - 100),
        rep_base in 0u64..((1 << 32) - 100),
    ) {
        let mut seen = HashSet::with_capacity(10_000);
        for dp in 0..100u64 {
            for dr in 0..100u64 {
                let seed = derive_seed(master, point_base + dp, rep_base + dr);
                prop_assert!(
                    seen.insert(seed),
                    "duplicate seed for master {master}, point {}, rep {}",
                    point_base + dp,
                    rep_base + dr
                );
            }
        }
        prop_assert_eq!(seen.len(), 10_000);
    }

    /// The SplitMix64 finalizer is a bijection: distinct inputs map to
    /// distinct outputs.
    #[test]
    fn splitmix64_never_collides(base in any::<u64>()) {
        let mut seen = HashSet::with_capacity(1000);
        for k in 0..1000u64 {
            prop_assert!(seen.insert(splitmix64(base.wrapping_add(k))));
        }
    }

    /// Replication streams of *adjacent* master seeds are disjoint — the
    /// regression the sweep derivation exists to prevent (`seed + k`
    /// schemes collide at (master, k+1) vs (master+1, k)).
    #[test]
    fn adjacent_masters_have_disjoint_streams(master in any::<u64>(), point in 0u64..1000) {
        for k in 0..50u64 {
            prop_assert_ne!(
                derive_seed(master, point, k + 1),
                derive_seed(master.wrapping_add(1), point, k)
            );
            prop_assert_ne!(
                derive_seed(master, point + 1, k),
                derive_seed(master.wrapping_add(1), point, k)
            );
        }
    }
}

/// The same grid exports byte-identical JSON with 1 worker and with N
/// workers: scheduling cannot leak into results.
#[test]
fn one_worker_and_many_workers_export_identical_json() {
    let grid = SweepGrid::new(0xDE7E_12A1)
        .config("ca1", Simulation::ieee1901(1).horizon_us(3.0e5))
        .config("dcf", Simulation::dcf(1).horizon_us(3.0e5))
        .stations([2, 3, 5])
        .replications(3);

    let serial = grid.clone().workers(1).run();
    let json_serial = serial.to_json();
    for workers in [2, 4, 8] {
        let pooled = grid.clone().workers(workers).run();
        assert_eq!(
            json_serial,
            pooled.to_json(),
            "{workers}-worker sweep diverged from the serial sweep"
        );
    }
}
