//! Topology equivalence suite.
//!
//! The topology layer's core contract: a fully-connected [`Topology`] is
//! *byte-identical* to the pre-topology single-domain engine — reports,
//! trace event streams and sweep JSON — and spatial topologies degrade
//! it in exactly the physically expected directions (hidden terminals
//! jam, exposed cells defer, isolated cells reuse the medium).
//!
//! The numeric pins below were captured on the engine *before* the
//! topology layer landed; they keep every refactor honest about the
//! legacy path.

use parking_lot::Mutex;
use plc_sim::runner::Simulation;
use plc_sim::{Backend, Scenario, SweepGrid, Topology, TraceEvent, VecTraceSink};
use proptest::prelude::*;
use std::sync::Arc;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 1_469_598_103_934_665_603;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(1_099_511_628_211);
    }
    h
}

fn events_of(sim: Simulation) -> (plc_sim::SimReport, Vec<TraceEvent>) {
    let sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let report = sim.sink(sink.clone()).run();
    let events = sink.lock().events.clone();
    (report, events)
}

/// Two 2-station cells `gap_m` apart: ~34 dB cross-SNR at 10 m (sensed),
/// the hidden band at 80 m, full isolation at 200 m (short-link channel,
/// default thresholds).
fn two_cells(gap_m: f64) -> Topology {
    Topology::builder()
        .cell(&[(0.0, 0.0), (2.0, 0.0)])
        .cell(&[(gap_m, 0.0), (gap_m + 2.0, 0.0)])
        .build()
        .unwrap()
}

// ---------------------------------------------------------------------
// Pre-topology golden pins: the legacy path must not move.
// ---------------------------------------------------------------------

#[test]
fn fully_connected_pins_pre_topology_goldens() {
    struct Pin {
        n: usize,
        horizon: f64,
        seed: u64,
        p: f64,
        s: f64,
        successes: u64,
        collided_tx: u64,
        idle_slots: u64,
        elapsed_us: f64,
        events: usize,
    }
    let pins = [
        Pin {
            n: 4,
            horizon: 1e6,
            seed: 42,
            p: 0.19759036144578312,
            s: 0.6823498206668956,
            successes: 333,
            collided_tx: 82,
            idle_slots: 1030,
            elapsed_us: 1000439.9199999949,
            events: 2233,
        },
        Pin {
            n: 3,
            horizon: 2e6,
            seed: 7,
            p: 0.12125,
            s: 0.7200360386243548,
            successes: 703,
            collided_tx: 97,
            idle_slots: 2060,
            elapsed_us: 2001497.0400000392,
            events: 4411,
        },
        Pin {
            n: 6,
            horizon: 5e5,
            seed: 11,
            p: 0.215962441314554,
            s: 0.681836396229651,
            successes: 167,
            collided_tx: 46,
            idle_slots: 369,
            elapsed_us: 502099.92000000575,
            events: 984,
        },
    ];
    for pin in pins {
        let legacy = Simulation::ieee1901(pin.n)
            .horizon_us(pin.horizon)
            .seed(pin.seed);
        let scenario = Scenario::ieee1901(Topology::fully_connected(pin.n))
            .simulation()
            .horizon_us(pin.horizon)
            .seed(pin.seed);
        let (lr, le) = events_of(legacy);
        let (sr, se) = events_of(scenario);
        assert_eq!(lr, sr, "n={}: scenario ≠ legacy report", pin.n);
        assert_eq!(le, se, "n={}: scenario ≠ legacy trace", pin.n);
        assert_eq!(lr.collision_probability, pin.p, "n={}", pin.n);
        assert_eq!(lr.norm_throughput, pin.s, "n={}", pin.n);
        assert_eq!(lr.successes, pin.successes, "n={}", pin.n);
        assert_eq!(lr.collided_tx, pin.collided_tx, "n={}", pin.n);
        assert_eq!(lr.metrics.idle_slots, pin.idle_slots, "n={}", pin.n);
        assert_eq!(lr.elapsed_us, pin.elapsed_us, "n={}", pin.n);
        assert_eq!(le.len(), pin.events, "n={}", pin.n);
    }
}

#[test]
fn dcf_pins_pre_topology_golden() {
    let (lr, le) = events_of(Simulation::dcf(3).horizon_us(1e6).seed(5));
    let (sr, se) = events_of(
        Scenario::dcf(Topology::fully_connected(3))
            .simulation()
            .horizon_us(1e6)
            .seed(5),
    );
    assert_eq!(lr, sr);
    assert_eq!(le, se);
    assert_eq!(lr.collision_probability, 0.22355769230769232);
    assert_eq!(lr.successes, 323);
    assert_eq!(lr.collided_tx, 93);
}

#[test]
fn sweep_json_pins_pre_topology_golden() {
    let json = SweepGrid::new(99)
        .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
        .stations([2, 4])
        .replications(2)
        .workers(2)
        .run()
        .to_json();
    assert!(
        json.starts_with(
            "{\"master_seed\":99,\"replications\":2,\"points\":[{\"Ok\":{\"config\":\"ca1\",\"n\":2,"
        ),
        "sweep JSON prefix changed: {}",
        &json[..80.min(json.len())]
    );
    // Pinned bytes include the `attempts` field points gained alongside
    // the retry budget.
    assert_eq!(json.len(), 1274, "sweep JSON length changed");
    assert_eq!(fnv1a(&json), 638720701505164574, "sweep JSON bytes changed");
}

#[test]
fn fully_connected_run_topology_wraps_the_legacy_report() {
    let sim = Simulation::ieee1901(3).horizon_us(1e6).seed(9);
    let md = sim.try_run_topology().unwrap();
    let legacy = sim.run();
    assert_eq!(md.report, legacy);
    assert_eq!(md.cells, vec![legacy]);
    assert_eq!(md.jammed_tx, 0);
    assert_eq!(md.sensed_defers, 0);
}

// ---------------------------------------------------------------------
// Single-cell spatial topology ≡ legacy engine with the derived timing.
// ---------------------------------------------------------------------

#[test]
fn uniform_link_cell_reproduces_legacy_timings_byte_identically() {
    // A symmetric 4 m cell derives one MacTiming for both stations; the
    // spatial path must then reduce to the legacy engine run with that
    // timing — same seed, same trace, same metrics.
    let topo = Topology::builder()
        .cell(&[(0.0, 0.0), (4.0, 0.0)])
        .link_payload_bytes(36 * 1024)
        .build()
        .unwrap();
    let derived = topo.station_timing(0).unwrap();
    assert_eq!(derived, topo.station_timing(1).unwrap());

    let sink = Arc::new(Mutex::new(VecTraceSink::new()));
    let md = Simulation::ieee1901(2)
        .topology(topo)
        .horizon_us(1e6)
        .seed(21)
        .sink(sink.clone())
        .try_run_topology()
        .unwrap();
    let spatial_events = sink.lock().events.clone();

    let (legacy, legacy_events) = events_of(
        Simulation::ieee1901(2)
            .timing(derived)
            .horizon_us(1e6)
            .seed(21),
    );
    assert_eq!(md.cells.len(), 1);
    assert_eq!(
        md.cells[0], legacy,
        "per-cell report ≠ legacy with derived timing"
    );
    assert_eq!(md.report.metrics, legacy.metrics, "merged metrics ≠ legacy");
    assert_eq!(spatial_events, legacy_events, "trace streams differ");
    assert_eq!(md.jammed_tx, 0);
    assert_eq!(md.sensed_defers, 0);
    // The derived timing is genuinely different from the paper default,
    // so this equivalence is not vacuous.
    assert_ne!(
        derived,
        plc_core::timing::MacTiming::paper_default(),
        "link-derived timing should differ from the paper default"
    );
}

// ---------------------------------------------------------------------
// Hidden-terminal golden: interference without carrier sense destroys
// throughput relative to the same cells in isolation.
// ---------------------------------------------------------------------

#[test]
fn hidden_terminal_cells_lose_throughput() {
    let run = |topo: Topology| {
        Simulation::ieee1901(4)
            .topology(topo)
            .horizon_us(2e6)
            .seed(3)
            .try_run_topology()
            .unwrap()
    };
    let isolated = run(two_cells(200.0));
    let hidden = run(two_cells(80.0));

    assert_eq!(isolated.jammed_tx, 0);
    assert_eq!(isolated.sensed_defers, 0);
    assert!(
        isolated.report.metrics.mpdus_ok > 0,
        "isolated cells must deliver"
    );

    // Hidden band: cells cannot sense each other, only jam.
    assert_eq!(hidden.sensed_defers, 0, "hidden cells must never defer");
    assert!(hidden.jammed_tx > 0, "hidden cells must jam each other");
    for c in 0..2 {
        assert!(
            hidden.cells[c].metrics.mpdus_ok < isolated.cells[c].metrics.mpdus_ok,
            "cell {c}: hidden-terminal victim must deliver strictly less \
             ({} vs isolated {})",
            hidden.cells[c].metrics.mpdus_ok,
            isolated.cells[c].metrics.mpdus_ok
        );
    }
    assert!(
        hidden.report.norm_throughput < isolated.report.norm_throughput,
        "aggregate throughput must degrade under hidden interference"
    );
}

#[test]
fn exposed_cells_sense_and_share_the_medium() {
    let exposed = Simulation::ieee1901(4)
        .topology(two_cells(10.0))
        .horizon_us(2e6)
        .seed(3)
        .try_run_topology()
        .unwrap();
    assert!(
        exposed.sensed_defers > 0,
        "cells in sense range must defer to each other"
    );
    assert!(
        exposed.report.metrics.mpdus_ok > 0,
        "sensing cells still share the medium and deliver"
    );
}

#[test]
fn isolated_cells_reuse_the_medium() {
    // Two isolated cells each behave like an independent 2-station
    // network; aggregate delivery ≈ 2× a single cell, and normalized
    // throughput (vs one wire's airtime) exceeds any single-domain run.
    let single = Simulation::ieee1901(2).horizon_us(2e6).seed(3).run();
    let reuse = Simulation::ieee1901(4)
        .topology(two_cells(200.0))
        .horizon_us(2e6)
        .seed(3)
        .try_run_topology()
        .unwrap();
    assert!(
        reuse.report.metrics.mpdus_ok as f64 > 1.5 * single.metrics.mpdus_ok as f64,
        "spatial reuse must nearly double delivery: {} vs single {}",
        reuse.report.metrics.mpdus_ok,
        single.metrics.mpdus_ok
    );
    assert!(
        reuse.report.norm_throughput > single.norm_throughput,
        "aggregate normalized throughput exceeds one domain under reuse"
    );
}

// ---------------------------------------------------------------------
// Domain sharding: worker count must never change a byte.
// ---------------------------------------------------------------------

#[test]
fn domain_workers_do_not_change_results() {
    // Mixed component structure: a hidden-coupled pair plus two isolated
    // cells — the sharded path must reproduce the sequential one exactly,
    // traces included.
    let topo = Topology::builder()
        .cell(&[(0.0, 0.0), (2.0, 0.0)])
        .cell(&[(80.0, 0.0), (82.0, 0.0)])
        .cell(&[(400.0, 0.0), (402.0, 0.0)])
        .cell(&[(700.0, 0.0), (702.0, 0.0), (704.0, 0.0)])
        .build()
        .unwrap();
    assert_eq!(topo.components().len(), 3);

    let run = |workers: usize| {
        let sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let md = Simulation::ieee1901(topo.num_stations())
            .topology(topo.clone())
            .horizon_us(1e6)
            .seed(17)
            .domain_workers(workers)
            .sink(sink.clone())
            .try_run_topology()
            .unwrap();
        let events = sink.lock().events.clone();
        (md, events)
    };
    let (a, ae) = run(1);
    let (b, be) = run(4);
    assert_eq!(a, b, "domain worker count changed the report");
    assert_eq!(ae, be, "domain worker count changed the trace stream");
    assert!(!ae.is_empty());
}

#[test]
fn trace_station_ids_are_global() {
    let topo = two_cells(200.0);
    let sink = Arc::new(Mutex::new(VecTraceSink::new()));
    Simulation::ieee1901(4)
        .topology(topo)
        .horizon_us(5e5)
        .seed(2)
        .sink(sink.clone())
        .try_run_topology()
        .unwrap();
    let events = sink.lock().events.clone();
    let mut seen = [false; 4];
    for ev in &events {
        if let TraceEvent::Success { station, .. } = ev {
            seen[*station] = true;
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "every station must appear under its global id: {seen:?}"
    );
}

// ---------------------------------------------------------------------
// Backend gating.
// ---------------------------------------------------------------------

#[test]
fn meanfield_rejects_multidomain_topologies() {
    let sim = Simulation::ieee1901(4)
        .topology(two_cells(200.0))
        .backend(Backend::MeanField);
    let err = sim.try_run().unwrap_err();
    assert!(
        err.to_string()
            .contains("mean-field backend does not model"),
        "unexpected error: {err}"
    );
    let err = sim.try_run_topology().unwrap_err();
    assert!(
        err.to_string()
            .contains("mean-field backend does not model"),
        "unexpected error: {err}"
    );
}

#[test]
fn spatial_try_build_is_a_typed_error() {
    let err = Simulation::ieee1901(4)
        .topology(two_cells(200.0))
        .try_build()
        .map(|_| ())
        .unwrap_err();
    assert!(
        err.to_string().contains("no single slotted engine"),
        "unexpected error: {err}"
    );
}

#[test]
fn spatial_topologies_gate_unsupported_knobs() {
    let base = || Simulation::ieee1901(4).topology(two_cells(200.0));
    let err = base()
        .beacons(plc_sim::BeaconSchedule {
            period: plc_core::units::Microseconds(33_333.0),
            duration: plc_core::units::Microseconds(110.48),
        })
        .try_run_topology()
        .unwrap_err();
    assert!(err.to_string().contains("beacon"), "{err}");
    let err = base().snapshots(true).try_run_topology().unwrap_err();
    assert!(err.to_string().contains("snapshots"), "{err}");
}

// ---------------------------------------------------------------------
// SoA fallback: the rejection reason is typed and counted.
// ---------------------------------------------------------------------

#[test]
fn soa_fallback_reason_is_typed_and_counted() {
    use plc_core::config::CsmaConfig;
    // dc = 0xFFFF is a legal MAC parameter but collides with the packed
    // disabled-DC sentinel, so the SoA core must decline — with a reason.
    let cfg = CsmaConfig::from_vectors(&[8, 16], &[0xFFFF, 0xFFFF]).unwrap();
    let registry = plc_obs::Registry::new();
    let sim = Simulation::ieee1901(2)
        .config(cfg.clone())
        .horizon_us(2e5)
        .seed(1)
        .registry(&registry);
    let engine = sim.try_build().unwrap();
    let why = engine
        .soa_rejection()
        .expect("unrepresentable DC must surface a rejection reason");
    assert!(
        why.to_string().contains("disabled-DC sentinel"),
        "unexpected reason: {why}"
    );
    assert_eq!(
        registry.snapshot().counter("engine.soa_fallbacks"),
        Some(1),
        "the fallback must be counted"
    );
    // The per-object fallback is exact: same results as soa(false).
    let with_fallback = sim.run();
    let reference = Simulation::ieee1901(2)
        .config(cfg)
        .horizon_us(2e5)
        .seed(1)
        .soa(false)
        .run();
    assert_eq!(with_fallback, reference);
}

#[test]
fn representable_configs_do_not_count_fallbacks() {
    let registry = plc_obs::Registry::new();
    Simulation::ieee1901(2)
        .horizon_us(2e5)
        .seed(1)
        .registry(&registry)
        .run();
    assert_eq!(registry.snapshot().counter("engine.soa_fallbacks"), Some(0));
}

#[test]
fn multidomain_registry_counters_flow() {
    let registry = plc_obs::Registry::new();
    let md = Simulation::ieee1901(4)
        .topology(two_cells(80.0))
        .horizon_us(1e6)
        .seed(3)
        .registry(&registry)
        .try_run_topology()
        .unwrap();
    let snap = registry.snapshot();
    assert_eq!(snap.counter("multidomain.cells"), Some(2));
    assert_eq!(snap.counter("multidomain.components"), Some(1));
    assert_eq!(snap.counter("multidomain.jammed_tx"), Some(md.jammed_tx));
    assert_eq!(
        snap.counter("multidomain.sensed_defers"),
        Some(md.sensed_defers)
    );
}

// ---------------------------------------------------------------------
// Random hearing matrices: determinism and conservation under any
// coupling structure.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_hearing_matrices_run_deterministically(
        n in 2usize..7,
        assign_pool in proptest::collection::vec(0usize..3, 6),
        sense_bits in proptest::collection::vec(any::<bool>(), 36),
        interfere_bits in proptest::collection::vec(any::<bool>(), 36),
        seed in any::<u64>(),
    ) {
        let assign = &assign_pool[..n];
        // Group stations into cells by assignment label (first-seen
        // order); within-cell pairs always sense, cross pairs follow the
        // random bits (from_matrices symmetrizes and folds sense into
        // interference).
        let mut labels: Vec<usize> = Vec::new();
        let mut cells: Vec<Vec<usize>> = Vec::new();
        for (i, &a) in assign.iter().enumerate() {
            match labels.iter().position(|&l| l == a) {
                Some(c) => cells[c].push(i),
                None => {
                    labels.push(a);
                    cells.push(vec![i]);
                }
            }
        }
        let same_cell = |i: usize, j: usize| assign[i] == assign[j];
        let mut sense = vec![vec![false; n]; n];
        let mut interfere = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                sense[i][j] = same_cell(i, j) || sense_bits[i * 6 + j];
                interfere[i][j] = interfere_bits[i * 6 + j];
            }
        }
        let topo = Topology::from_matrices(cells, sense, interfere).unwrap();
        let num_cells = topo.num_cells();
        let sim = Simulation::ieee1901(n)
            .topology(topo)
            .horizon_us(5e4)
            .seed(seed);
        let a = sim.try_run_topology().unwrap();
        let b = sim.try_run_topology().unwrap();
        prop_assert_eq!(&a, &b, "same seed must reproduce byte-identically");
        let c = sim.clone().domain_workers(3).try_run_topology().unwrap();
        prop_assert_eq!(&a, &c, "worker count must not change results");

        prop_assert_eq!(a.report.metrics.per_station.len(), n);
        prop_assert_eq!(a.cells.len(), num_cells);
        let per_station: u64 = a.report.metrics.per_station.iter().map(|s| s.successes).sum();
        prop_assert_eq!(per_station, a.report.metrics.successes);
        let cell_succ: u64 = a.cells.iter().map(|c| c.successes).sum();
        prop_assert_eq!(cell_succ, a.report.metrics.successes);
        prop_assert!(a.report.elapsed_us >= 5e4);
    }
}
