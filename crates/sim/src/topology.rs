//! Station topology: who hears whom, who interferes with whom.
//!
//! The paper's testbed puts every station on one power strip — a single
//! shared contention domain, which is what the legacy
//! `Simulation::ieee1901(n)` constructors model. Real deployments are a
//! *graph of media*: stations sit at outlets, links attenuate with cable
//! run length, and two logical networks on the same wire may hear each
//! other fully (exposed stations), partially (hidden stations that jam
//! without being sensed), or not at all (spatial reuse).
//!
//! [`Topology`] captures that graph. It has two representations:
//!
//! * **Fully connected** — the legacy single-domain scenario. O(1) to
//!   build and store for any station count (no matrices, no channel
//!   evaluation), and simulations over it reduce *byte-identically* to
//!   the legacy engine path.
//! * **Spatial** — stations at explicit 2-D positions grouped into
//!   *cells* (logical networks). Per-link SNR is computed from a base
//!   [`ChannelModel`] with the link's Euclidean distance, and two derived
//!   n×n matrices drive the multi-domain engine:
//!
//!   * the **hearing (carrier-sense) matrix**: `sense[i][j]` is true when
//!     the link SNR reaches the sense threshold — station `i` defers to
//!     `j`'s transmissions;
//!   * the **interference matrix**: `interfere[i][j]` is true when the
//!     link SNR reaches the (lower) interference threshold — `j`'s
//!     transmissions corrupt `i`'s concurrent receptions even when they
//!     cannot be sensed. Sensing implies interference
//!     (`sense ⊆ interfere`).
//!
//! A cross-cell pair in the band between the two thresholds is the
//! classic *hidden terminal*: it jams but is never deferred to.
//!
//! Build one with [`Topology::builder`]; the multi-domain run path is
//! documented in [`crate::multidomain`].

use plc_core::error::{Error, Result};
use plc_core::timing::MacTiming;
use plc_phy::{ChannelModel, PhyRate};

/// Default carrier-sense threshold (dB): a link at or above this SNR is
/// reliably detected by the 1901 preamble correlator.
pub const DEFAULT_SENSE_THRESHOLD_DB: f64 = 10.0;

/// Default interference threshold (dB): a link at or above this SNR
/// deposits enough energy to corrupt a concurrent reception, even when
/// it is too weak to carrier-sense.
pub const DEFAULT_INTERFERENCE_THRESHOLD_DB: f64 = 0.0;

/// The station graph a simulation runs over. See the [module
/// docs](self) for the semantics of the two representations.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    repr: Repr,
}

#[derive(Debug, Clone, PartialEq)]
enum Repr {
    /// Every station hears every station, one logical network. The
    /// legacy single-domain scenario; deliberately matrix-free so that
    /// `Topology::fully_connected(10_000)` costs nothing.
    FullyConnected {
        n: usize,
    },
    Spatial(Box<Spatial>),
}

#[derive(Debug, Clone, PartialEq)]
struct Spatial {
    /// Station positions (metres), global station order.
    positions: Vec<(f64, f64)>,
    /// Cell membership: `cells[c]` lists the global ids of cell `c`'s
    /// stations, ascending. Global ids are assigned in cell order, so
    /// the lists are contiguous ranges.
    cells: Vec<Vec<usize>>,
    /// Station → cell index.
    cell_of: Vec<usize>,
    /// Pairwise link SNR (dB); `snr[i][j] == snr[j][i]`, diagonal is the
    /// channel's zero-distance SNR.
    snr_db: Vec<Vec<f64>>,
    /// Hearing matrix (carrier sense), symmetric, false on the diagonal.
    sense: Vec<Vec<bool>>,
    /// Interference matrix, symmetric, false on the diagonal;
    /// `sense[i][j]` implies `interfere[i][j]`.
    interfere: Vec<Vec<bool>>,
    /// Per-station MAC timing derived from the station's weakest
    /// same-cell link (`Some` iff a link payload was configured).
    timing: Option<Vec<MacTiming>>,
    sense_threshold_db: f64,
    interference_threshold_db: f64,
}

impl Topology {
    /// The legacy scenario: `n` stations, one shared medium, one logical
    /// network. Simulations over this topology take the single-domain
    /// engine path unchanged (byte-identical traces, metrics and sweep
    /// output).
    pub fn fully_connected(n: usize) -> Self {
        Topology {
            repr: Repr::FullyConnected { n },
        }
    }

    /// Start building a spatial multi-cell topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::new()
    }

    /// `n` stations grouped into isolated cells of `cell_size` (the last
    /// cell takes the remainder): stations sit 1 m apart inside a cell
    /// (well inside sense range) and cells sit 1 km apart (below the
    /// interference threshold), so every cell is an independent
    /// contention domain on the legacy fast path. This is the shape the
    /// sweep engine can restamp to any station count — see
    /// [`Simulation::cells_of`](crate::Simulation::cells_of).
    pub fn isolated_cells(n: usize, cell_size: usize) -> Self {
        assert!(cell_size >= 1, "cell_size must be at least 1");
        if n == 0 {
            return Topology::fully_connected(0);
        }
        let mut b = Topology::builder();
        let mut placed = 0usize;
        let mut cell_index = 0usize;
        while placed < n {
            let len = cell_size.min(n - placed);
            let positions: Vec<(f64, f64)> = (0..len)
                .map(|i| (cell_index as f64 * 1_000.0 + i as f64, 0.0))
                .collect();
            b = b.cell(&positions);
            placed += len;
            cell_index += 1;
        }
        b.build()
            .expect("isolated-cells layout is always a valid topology")
    }

    /// Build a spatial topology directly from explicit matrices — the
    /// escape hatch for property tests and for hearing data measured on
    /// real deployments rather than derived from the synthetic channel.
    ///
    /// `cells[c]` lists the global station ids of cell `c` (the ids must
    /// partition `0..n` where `n` is the matrix dimension). `sense` and
    /// `interfere` must be `n×n`; they are symmetrized with OR, the
    /// diagonal is cleared, and `sense` is folded into `interfere`
    /// (sensing implies interference). Within-cell pairs must sense each
    /// other — members of one logical network that cannot hear each
    /// other are a configuration error, not a hidden-terminal scenario.
    pub fn from_matrices(
        cells: Vec<Vec<usize>>,
        sense: Vec<Vec<bool>>,
        interfere: Vec<Vec<bool>>,
    ) -> Result<Self> {
        let n = sense.len();
        if n == 0 {
            return Err(Error::invalid_config("topology needs at least one station"));
        }
        if sense.iter().any(|r| r.len() != n)
            || interfere.len() != n
            || interfere.iter().any(|r| r.len() != n)
        {
            return Err(Error::invalid_config(
                "sense and interference matrices must both be n×n",
            ));
        }
        let mut cell_of = vec![usize::MAX; n];
        for (c, members) in cells.iter().enumerate() {
            if members.is_empty() {
                return Err(Error::invalid_config(format!("cell {c} is empty")));
            }
            for &i in members {
                if i >= n || cell_of[i] != usize::MAX {
                    return Err(Error::invalid_config(format!(
                        "cells must partition stations 0..{n}: station {i} \
                         is out of range or assigned twice"
                    )));
                }
                cell_of[i] = c;
            }
        }
        if cell_of.contains(&usize::MAX) {
            return Err(Error::invalid_config(format!(
                "cells must partition stations 0..{n}: some station is unassigned"
            )));
        }
        let mut sense_m = vec![vec![false; n]; n];
        let mut interfere_m = vec![vec![false; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                sense_m[i][j] = sense[i][j] || sense[j][i];
                interfere_m[i][j] =
                    interfere[i][j] || interfere[j][i] || sense[i][j] || sense[j][i];
            }
        }
        for members in &cells {
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    if !sense_m[i][j] {
                        return Err(Error::invalid_config(format!(
                            "stations {i} and {j} share cell {} but cannot \
                             sense each other; every within-cell pair must \
                             be in carrier-sense range",
                            cell_of[i]
                        )));
                    }
                }
            }
        }
        let snr = vec![vec![f64::NAN; n]; n];
        Ok(Topology {
            repr: Repr::Spatial(Box::new(Spatial {
                positions: vec![(0.0, 0.0); n],
                cells,
                cell_of,
                snr_db: snr,
                sense: sense_m,
                interfere: interfere_m,
                timing: None,
                sense_threshold_db: DEFAULT_SENSE_THRESHOLD_DB,
                interference_threshold_db: DEFAULT_INTERFERENCE_THRESHOLD_DB,
            })),
        })
    }

    /// Total station count across all cells.
    pub fn num_stations(&self) -> usize {
        match &self.repr {
            Repr::FullyConnected { n } => *n,
            Repr::Spatial(s) => s.cell_of.len(),
        }
    }

    /// Number of logical networks (cells).
    pub fn num_cells(&self) -> usize {
        match &self.repr {
            Repr::FullyConnected { .. } => 1,
            Repr::Spatial(s) => s.cells.len(),
        }
    }

    /// Whether this is the matrix-free legacy representation that routes
    /// through the single-domain engine unchanged.
    pub fn is_fully_connected(&self) -> bool {
        matches!(self.repr, Repr::FullyConnected { .. })
    }

    /// The cell (logical network) a station belongs to.
    pub fn cell_of(&self, station: usize) -> usize {
        match &self.repr {
            Repr::FullyConnected { .. } => 0,
            Repr::Spatial(s) => s.cell_of[station],
        }
    }

    /// Global station ids of cell `c`, ascending.
    pub fn cell_members(&self, c: usize) -> Vec<usize> {
        match &self.repr {
            Repr::FullyConnected { n } => {
                assert_eq!(c, 0, "fully-connected topology has one cell");
                (0..*n).collect()
            }
            Repr::Spatial(s) => s.cells[c].clone(),
        }
    }

    /// Can station `i` carrier-sense station `j`'s transmissions?
    pub fn hears(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        match &self.repr {
            Repr::FullyConnected { .. } => true,
            Repr::Spatial(s) => s.sense[i][j],
        }
    }

    /// Does a transmission by `j` corrupt a concurrent reception at `i`?
    /// True whenever [`hears`](Self::hears) is true; additionally true in
    /// the hidden-terminal band between the two thresholds.
    pub fn interferes(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        match &self.repr {
            Repr::FullyConnected { .. } => true,
            Repr::Spatial(s) => s.interfere[i][j],
        }
    }

    /// Mean link SNR between two stations in dB, when the topology was
    /// built from positions (`None` for the matrix-free representations).
    pub fn link_snr_db(&self, i: usize, j: usize) -> Option<f64> {
        match &self.repr {
            Repr::FullyConnected { .. } => None,
            Repr::Spatial(s) => {
                let v = s.snr_db[i][j];
                v.is_finite().then_some(v)
            }
        }
    }

    /// Per-station MAC timing derived from the station's weakest
    /// same-cell link, when the builder configured a link payload
    /// ([`TopologyBuilder::link_payload_bytes`]). `None` means the
    /// simulation's configured timing applies to every station.
    pub fn station_timing(&self, station: usize) -> Option<MacTiming> {
        match &self.repr {
            Repr::FullyConnected { .. } => None,
            Repr::Spatial(s) => s.timing.as_ref().map(|t| t[station]),
        }
    }

    /// Whether any two cells are coupled — by carrier sense or by
    /// interference. Uncoupled cells are fully independent simulations.
    pub fn cells_coupled(&self, a: usize, b: usize) -> bool {
        match &self.repr {
            Repr::FullyConnected { .. } => false,
            Repr::Spatial(s) => s.cells[a].iter().any(|&i| {
                s.cells[b]
                    .iter()
                    .any(|&j| s.sense[i][j] || s.interfere[i][j])
            }),
        }
    }

    /// Connected components of the cell-coupling graph, each a sorted
    /// list of cell indices. Components are independent: the multi-domain
    /// runner shards them across [`crate::batch::BatchRunner`] workers.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let c = self.num_cells();
        let mut comp_of = vec![usize::MAX; c];
        let mut comps: Vec<Vec<usize>> = Vec::new();
        for start in 0..c {
            if comp_of[start] != usize::MAX {
                continue;
            }
            let id = comps.len();
            let mut stack = vec![start];
            let mut members = Vec::new();
            comp_of[start] = id;
            while let Some(a) = stack.pop() {
                members.push(a);
                for (b, slot) in comp_of.iter_mut().enumerate() {
                    if *slot == usize::MAX && self.cells_coupled(a, b) {
                        *slot = id;
                        stack.push(b);
                    }
                }
            }
            members.sort_unstable();
            comps.push(members);
        }
        comps
    }

    /// Configured carrier-sense threshold (dB), when spatial.
    pub fn sense_threshold_db(&self) -> Option<f64> {
        match &self.repr {
            Repr::FullyConnected { .. } => None,
            Repr::Spatial(s) => Some(s.sense_threshold_db),
        }
    }

    /// Configured interference threshold (dB), when spatial.
    pub fn interference_threshold_db(&self) -> Option<f64> {
        match &self.repr {
            Repr::FullyConnected { .. } => None,
            Repr::Spatial(s) => Some(s.interference_threshold_db),
        }
    }
}

/// Builder for spatial topologies. Cells are appended with
/// [`cell`](TopologyBuilder::cell); stations receive global ids in the
/// order the cells (and positions within each cell) were added.
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    channel: ChannelModel,
    sense_threshold_db: f64,
    interference_threshold_db: f64,
    cells: Vec<Vec<(f64, f64)>>,
    link_payload_bytes: Option<usize>,
}

impl Default for TopologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TopologyBuilder {
    /// A builder with the short-link channel preset and default
    /// thresholds.
    pub fn new() -> Self {
        TopologyBuilder {
            channel: ChannelModel::short_link(),
            sense_threshold_db: DEFAULT_SENSE_THRESHOLD_DB,
            interference_threshold_db: DEFAULT_INTERFERENCE_THRESHOLD_DB,
            cells: Vec::new(),
            link_payload_bytes: None,
        }
    }

    /// Base channel model. Each link evaluates this model with
    /// `distance_m` replaced by the pair's Euclidean distance, so
    /// `snr0_db` and `atten_db_per_m` shape the whole topology.
    pub fn channel(mut self, channel: ChannelModel) -> Self {
        self.channel = channel;
        self
    }

    /// Carrier-sense threshold in dB (default
    /// [`DEFAULT_SENSE_THRESHOLD_DB`]).
    pub fn sense_threshold_db(mut self, db: f64) -> Self {
        self.sense_threshold_db = db;
        self
    }

    /// Interference threshold in dB (default
    /// [`DEFAULT_INTERFERENCE_THRESHOLD_DB`]); must not exceed the sense
    /// threshold.
    pub fn interference_threshold_db(mut self, db: f64) -> Self {
        self.interference_threshold_db = db;
        self
    }

    /// Append one cell (logical network) of stations at the given
    /// positions (metres).
    pub fn cell(mut self, positions: &[(f64, f64)]) -> Self {
        self.cells.push(positions.to_vec());
        self
    }

    /// Derive each station's MAC timing from its weakest same-cell link
    /// carrying MPDUs of this payload size: the link's tone map (at
    /// mains phase 0) yields a [`PhyRate`], whose airtime for the
    /// payload rebuilds `Ts`/`Tc` through
    /// [`MacTiming::from_payload`]. Without this call every station uses
    /// the simulation's configured timing.
    pub fn link_payload_bytes(mut self, payload_bytes: usize) -> Self {
        self.link_payload_bytes = Some(payload_bytes);
        self
    }

    /// Validate and build. Typed [`Error::InvalidConfig`] on: no cells,
    /// an empty cell, non-finite positions, inverted thresholds, a
    /// within-cell pair below the sense threshold, or (with a link
    /// payload) a within-cell link too weak to carry any data.
    pub fn build(self) -> Result<Topology> {
        if self.cells.is_empty() || self.cells.iter().all(|c| c.is_empty()) {
            return Err(Error::invalid_config("topology needs at least one station"));
        }
        if self.cells.iter().any(|c| c.is_empty()) {
            return Err(Error::invalid_config("topology cells must be non-empty"));
        }
        if self.interference_threshold_db > self.sense_threshold_db {
            return Err(Error::invalid_config(format!(
                "interference threshold ({} dB) must not exceed the sense \
                 threshold ({} dB): anything strong enough to carrier-sense \
                 also interferes",
                self.interference_threshold_db, self.sense_threshold_db
            )));
        }
        let mut positions = Vec::new();
        let mut cells = Vec::new();
        let mut cell_of = Vec::new();
        for (c, ps) in self.cells.iter().enumerate() {
            let mut members = Vec::with_capacity(ps.len());
            for &(x, y) in ps {
                if !x.is_finite() || !y.is_finite() {
                    return Err(Error::invalid_config(format!(
                        "cell {c} has a non-finite station position"
                    )));
                }
                members.push(positions.len());
                positions.push((x, y));
                cell_of.push(c);
            }
            cells.push(members);
        }
        let n = positions.len();
        let dist = |i: usize, j: usize| -> f64 {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt()
        };
        let mut snr_db = vec![vec![0.0; n]; n];
        let mut sense = vec![vec![false; n]; n];
        let mut interfere = vec![vec![false; n]; n];
        for i in 0..n {
            snr_db[i][i] = self.channel.snr0_db;
            for j in (i + 1)..n {
                let link = ChannelModel {
                    distance_m: dist(i, j),
                    ..self.channel.clone()
                };
                let snr = link.mean_snr_db();
                snr_db[i][j] = snr;
                snr_db[j][i] = snr;
                let s = snr >= self.sense_threshold_db;
                let f = snr >= self.interference_threshold_db;
                sense[i][j] = s;
                sense[j][i] = s;
                // Sensing implies interference.
                interfere[i][j] = f || s;
                interfere[j][i] = f || s;
            }
        }
        for (c, members) in cells.iter().enumerate() {
            for (a, &i) in members.iter().enumerate() {
                for &j in &members[a + 1..] {
                    if !sense[i][j] {
                        return Err(Error::invalid_config(format!(
                            "stations {i} and {j} of cell {c} are {:.1} m \
                             apart: link SNR {:.1} dB is below the {:.1} dB \
                             sense threshold, so they cannot form one \
                             logical network",
                            dist(i, j),
                            snr_db[i][j],
                            self.sense_threshold_db
                        )));
                    }
                }
            }
        }
        let timing = match self.link_payload_bytes {
            None => None,
            Some(payload) => {
                let mut per_station = Vec::with_capacity(n);
                for (i, &c) in cell_of.iter().enumerate() {
                    // The station transmits at the rate its weakest
                    // same-cell link sustains (broadcast-safe tone map).
                    let d = cells[c]
                        .iter()
                        .filter(|&&j| j != i)
                        .map(|&j| dist(i, j))
                        .fold(0.0, f64::max);
                    let link = ChannelModel {
                        distance_m: d,
                        ..self.channel.clone()
                    };
                    let rate = PhyRate::from_tone_map(&link.tone_map(0.0));
                    let timing = rate.mac_timing(payload).ok_or_else(|| {
                        Error::invalid_config(format!(
                            "station {i}'s weakest in-cell link ({d:.1} m, \
                             {:.1} dB) is a dead channel: no tone-map rate \
                             can carry a {payload}-byte payload",
                            link.mean_snr_db()
                        ))
                    })?;
                    per_station.push(timing);
                }
                Some(per_station)
            }
        };
        Ok(Topology {
            repr: Repr::Spatial(Box::new(Spatial {
                positions,
                cells,
                cell_of,
                snr_db,
                sense,
                interfere,
                timing,
                sense_threshold_db: self.sense_threshold_db,
                interference_threshold_db: self.interference_threshold_db,
            })),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cells(gap_m: f64) -> Topology {
        Topology::builder()
            .cell(&[(0.0, 0.0), (2.0, 0.0)])
            .cell(&[(gap_m, 0.0), (gap_m + 2.0, 0.0)])
            .build()
            .unwrap()
    }

    #[test]
    fn fully_connected_is_matrix_free_and_total() {
        let t = Topology::fully_connected(10_000);
        assert!(t.is_fully_connected());
        assert_eq!(t.num_stations(), 10_000);
        assert_eq!(t.num_cells(), 1);
        assert!(t.hears(0, 9_999));
        assert!(t.interferes(3, 7));
        assert!(!t.hears(5, 5));
        assert_eq!(t.components(), vec![vec![0]]);
    }

    #[test]
    fn close_cells_sense_each_other() {
        // 10 m apart at 0.4 dB/m from 38 dB: cross SNR ≈ 34 dB ≥ 10 dB.
        let t = two_cells(10.0);
        assert_eq!(t.num_cells(), 2);
        assert!(t.hears(0, 2));
        assert!(t.interferes(0, 2));
        assert_eq!(t.components(), vec![vec![0, 1]]);
    }

    #[test]
    fn mid_distance_is_hidden_interference() {
        // Sense needs ≥ 10 dB → within 70 m; interference ≥ 0 dB → within
        // 95 m. A 80 m gap lands in the hidden band.
        let t = two_cells(80.0);
        assert!(!t.hears(0, 2), "cross-cell pair must be below sense");
        assert!(t.interferes(0, 2), "but still above interference");
        assert_eq!(t.components(), vec![vec![0, 1]], "jamming couples cells");
    }

    #[test]
    fn far_cells_are_isolated() {
        let t = two_cells(200.0);
        assert!(!t.hears(0, 2));
        assert!(!t.interferes(0, 2));
        assert_eq!(t.components(), vec![vec![0], vec![1]]);
    }

    #[test]
    fn within_cell_pairs_must_sense() {
        let err = Topology::builder()
            .cell(&[(0.0, 0.0), (200.0, 0.0)])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sense threshold"), "{err}");
    }

    #[test]
    fn inverted_thresholds_rejected() {
        let err = Topology::builder()
            .cell(&[(0.0, 0.0)])
            .sense_threshold_db(5.0)
            .interference_threshold_db(9.0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("must not exceed"), "{err}");
    }

    #[test]
    fn empty_topologies_rejected() {
        assert!(Topology::builder().build().is_err());
        assert!(Topology::builder().cell(&[]).build().is_err());
    }

    #[test]
    fn link_payload_derives_uniform_timing_on_symmetric_cells() {
        let t = Topology::builder()
            .cell(&[(0.0, 0.0), (4.0, 0.0)])
            .link_payload_bytes(36 * 1024)
            .build()
            .unwrap();
        let a = t.station_timing(0).unwrap();
        let b = t.station_timing(1).unwrap();
        assert_eq!(a, b, "symmetric links must derive identical timing");
        assert!(a.is_valid());
        // And it matches the direct phy derivation for a 4 m link.
        let link = ChannelModel {
            distance_m: 4.0,
            ..ChannelModel::short_link()
        };
        let expect = PhyRate::from_tone_map(&link.tone_map(0.0))
            .mac_timing(36 * 1024)
            .unwrap();
        assert_eq!(a, expect);
    }

    #[test]
    fn longer_links_slow_the_cell_down() {
        let near = Topology::builder()
            .cell(&[(0.0, 0.0), (2.0, 0.0)])
            .link_payload_bytes(36 * 1024)
            .build()
            .unwrap();
        let far = Topology::builder()
            .cell(&[(0.0, 0.0), (60.0, 0.0)])
            .link_payload_bytes(36 * 1024)
            .build()
            .unwrap();
        assert!(
            far.station_timing(0).unwrap().ts > near.station_timing(0).unwrap().ts,
            "weaker link ⇒ more symbols ⇒ longer Ts"
        );
    }

    #[test]
    fn from_matrices_symmetrizes_and_validates() {
        // 3 stations: cell {0,1} mutually sensing, station 2 alone,
        // one-way interference 2→0 gets symmetrized.
        let s = vec![
            vec![false, true, false],
            vec![true, false, false],
            vec![false, false, false],
        ];
        let mut f = s.clone();
        f[0][2] = true;
        let t = Topology::from_matrices(vec![vec![0, 1], vec![2]], s.clone(), f).unwrap();
        assert!(t.hears(0, 1) && t.hears(1, 0));
        assert!(t.interferes(2, 0) && t.interferes(0, 2), "symmetrized");
        assert!(!t.hears(0, 2));
        assert_eq!(t.components(), vec![vec![0, 1]]);

        // Same matrices but {0,2} forced into one cell: rejected, they
        // cannot sense each other.
        let err = Topology::from_matrices(vec![vec![0, 2], vec![1]], s.clone(), s).unwrap_err();
        assert!(err.to_string().contains("within-cell"), "{err}");
    }

    #[test]
    fn from_matrices_rejects_bad_partitions() {
        let s = vec![vec![false, true], vec![true, false]];
        assert!(Topology::from_matrices(vec![vec![0]], s.clone(), s.clone()).is_err());
        assert!(Topology::from_matrices(vec![vec![0, 0], vec![1]], s.clone(), s.clone()).is_err());
        assert!(Topology::from_matrices(vec![vec![0, 1, 2]], s.clone(), s).is_err());
    }
}
