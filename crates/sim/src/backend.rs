//! Simulation backends: the slotted discrete-event engine and the
//! mean-field analytic engine.
//!
//! [`Backend::Slotted`] is the exact stochastic simulator
//! ([`SlottedEngine`](crate::engine::SlottedEngine)); cost grows with the
//! horizon and the station count. [`Backend::MeanField`] replaces the
//! event loop with one decoupling-approximation fixed-point solve
//! (`plc_analysis::meanfield`) and *synthesizes* a [`SimReport`] with the
//! same schema, so sweeps, JSON export and experiments run unchanged on
//! either backend. The mean-field run is deterministic (the seed is
//! ignored) and costs microseconds regardless of `N` or the horizon —
//! that is the point: fleet-scale sweeps (10⁴–10⁶ stations) in the time
//! one slotted replication takes, at the documented accuracy envelope
//! (`plc_analysis::meanfield::gamma_tolerance`).
//!
//! ## What the synthesized report contains
//!
//! Headline quantities are **exact analytic values**, not re-rounded
//! counts:
//!
//! * `collision_probability` = the fixed-point busy probability `p`. The
//!   slotted report counts `ΣCᵢ/(ΣCᵢ+successes)`, i.e. collisions per
//!   *attempt*; under the decoupling assumption a tagged attempt collides
//!   exactly when another station attempts in the same slot, which is `p`.
//! * `norm_throughput` = `normalized_throughput(slots, timing)`.
//! * `jain_fairness` = 1 exactly (all stations are exchangeable).
//!
//! The embedded [`Metrics`] carry rounded *expected* counters over
//! `⌊horizon / E[slot]⌋` contention slots so downstream consumers that
//! re-derive ratios from counts get consistent numbers. Equal shares are
//! rounded per station and multiplied back, so `jain_fairness` recomputed
//! from `per_station` is exactly 1. PB/channel-error fields are zero:
//! the mean-field backend models the error-free saturated MAC only
//! (enforced by [`Simulation::try_run`](crate::runner::Simulation)).

use crate::metrics::{Metrics, StationMetrics};
use crate::runner::SimReport;
use plc_analysis::throughput::{mean_intersuccess_time, normalized_throughput};
use plc_analysis::{DelaySummary, MeanFieldSolution};
use plc_core::config::CsmaConfig;
use plc_core::error::{Error, Result};
use plc_core::timing::MacTiming;
use plc_core::units::Microseconds;
use serde::{Deserialize, Serialize};

/// Which engine a [`Simulation`](crate::runner::Simulation) runs on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Backend {
    /// The exact stochastic discrete-event engine (the default).
    #[default]
    Slotted,
    /// The deterministic mean-field fixed point; see the module docs for
    /// the accuracy envelope and the report-synthesis rules.
    MeanField,
}

impl Backend {
    /// Whether runs on this backend are seed-independent. Deterministic
    /// backends short-circuit replication: `run_repeated` and sweep
    /// replication rules collapse to a single run.
    pub fn is_deterministic(self) -> bool {
        matches!(self, Backend::MeanField)
    }
}

/// The analytic quantities behind a mean-field run, for callers that want
/// more than the [`SimReport`] schema: the full fixed point with solver
/// diagnostics, and the access-delay distribution summary derived from
/// the drift state (`plc_analysis::drift`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanFieldReport {
    /// The solved fixed point (per-stage occupancy, τ, p, diagnostics).
    pub solution: MeanFieldSolution,
    /// Access-delay quantiles of a tagged station (slots and µs).
    pub delay: DelaySummary,
}

/// Solve the fixed point and derive the delay summary for a
/// single-class domain. Delegates to the shared screening API
/// (`plc_analysis::boost::screen_schedule`) so the backend and the
/// `plc-boost` optimizer rank schedules with identical math.
pub(crate) fn meanfield_analysis(
    config: &CsmaConfig,
    n: usize,
    timing: &MacTiming,
) -> Result<MeanFieldReport> {
    if n == 0 {
        return Err(Error::invalid_config(
            "mean-field backend needs at least one station",
        ));
    }
    let screen = plc_analysis::boost::screen_schedule(config, n, timing)?;
    Ok(MeanFieldReport {
        solution: screen.solution,
        delay: screen.delay,
    })
}

/// Synthesize a [`SimReport`] from one mean-field solve (see the module
/// docs for the exact rules). `registry` instrumentation mirrors the
/// slotted engine's: `meanfield.solves` / `meanfield.stations` counters
/// and a `meanfield.solve` span timer.
pub(crate) fn meanfield_report(
    config: &CsmaConfig,
    n: usize,
    timing: &MacTiming,
    horizon: Microseconds,
    registry: Option<&plc_obs::Registry>,
) -> Result<SimReport> {
    let timer = registry.and_then(|r| r.try_timer("meanfield.solve").ok());
    let span = timer.as_ref().map(|t| t.start());
    let analysis = meanfield_analysis(config, n, timing)?;
    drop(span);
    if let Some(reg) = registry {
        if let Ok(c) = reg.try_counter("meanfield.solves") {
            c.inc();
        }
        if let Ok(c) = reg.try_counter("meanfield.stations") {
            c.add(n as u64);
        }
    }
    let solution = &analysis.solution;
    let class = &solution.classes[0];
    let tau = class.tau;
    let p = class.collision_probability;
    let slots = solution.slots;
    let nf = n as f64;

    // Expected counters over ⌊horizon / E[slot]⌋ contention slots.
    let e_slot = solution.expected_slot_us(timing);
    let total_slots = (horizon.as_micros().max(0.0) / e_slot).floor();
    let succ_per_station = (slots.success * total_slots / nf).round() as u64;
    let successes = succ_per_station * n as u64;
    // Attempts per slot = Nτ; of those, P_succ are the lone winners — the
    // rest collide (per-station counting, the testbed's ΣCᵢ semantics).
    let coll_per_station = ((nf * tau - slots.success).max(0.0) * total_slots / nf).round() as u64;
    let collided_tx = coll_per_station * n as u64;
    let collision_events = (slots.collision * total_slots).round() as u64;
    let idle_slots = (slots.idle * total_slots).round() as u64;
    let time_idle = idle_slots as f64 * timing.slot.as_micros();
    let time_success = successes as f64 * timing.ts.as_micros();
    let time_collision = collision_events as f64 * timing.tc.as_micros();
    let elapsed = time_idle + time_success + time_collision;

    let mut station = StationMetrics {
        successes: succ_per_station,
        collisions: coll_per_station,
        attempts: succ_per_station + coll_per_station,
        mpdus_ok: succ_per_station,
        mpdus_collided: coll_per_station,
        frames_completed: succ_per_station,
        ..StationMetrics::default()
    };
    // The expected inter-success time, pushed once so delay-curious
    // consumers see the analytic mean rather than an empty accumulator.
    let intersuccess = mean_intersuccess_time(&slots, timing, n);
    if succ_per_station >= 2 && intersuccess.is_finite() {
        station.intersuccess.push(intersuccess);
    }

    let metrics = Metrics {
        elapsed: Microseconds(elapsed),
        idle_slots,
        successes,
        collision_events,
        collided_tx,
        time_idle: Microseconds(time_idle),
        time_success: Microseconds(time_success),
        time_collision: Microseconds(time_collision),
        time_prs: Microseconds(0.0),
        beacons: 0,
        time_beacon: Microseconds(0.0),
        mpdus_ok: successes,
        frames_completed: successes,
        payload_delivered_us: successes as f64 * timing.frame_length.as_micros(),
        per_station: vec![station; n],
    };

    Ok(SimReport {
        // Exact analytic headline values — see the module docs for why
        // counter-ratio γ equals the fixed-point busy probability here.
        collision_probability: p,
        norm_throughput: normalized_throughput(&slots, timing),
        jain_fairness: 1.0,
        successes,
        collided_tx,
        elapsed_us: elapsed,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_timing() -> MacTiming {
        MacTiming::paper_default()
    }

    #[test]
    fn default_backend_is_slotted() {
        assert_eq!(Backend::default(), Backend::Slotted);
        assert!(!Backend::Slotted.is_deterministic());
        assert!(Backend::MeanField.is_deterministic());
    }

    #[test]
    fn report_headlines_are_exact_analytic_values() {
        let config = CsmaConfig::ieee1901_ca01();
        let timing = paper_timing();
        let r = meanfield_report(&config, 10, &timing, Microseconds(1e7), None).unwrap();
        let fp = plc_analysis::Model1901::new(config).solve(10);
        assert!((r.collision_probability - fp.collision_probability).abs() < 1e-9);
        assert_eq!(r.jain_fairness, 1.0);
        assert!(r.norm_throughput > 0.4 && r.norm_throughput < 1.0);
    }

    #[test]
    fn synthesized_counters_are_self_consistent() {
        let config = CsmaConfig::ieee1901_ca01();
        let timing = paper_timing();
        let r = meanfield_report(&config, 10, &timing, Microseconds(1e7), None).unwrap();
        let m = &r.metrics;
        assert_eq!(m.num_stations(), 10);
        assert_eq!(m.successes, r.successes);
        assert_eq!(m.mpdus_ok, m.successes);
        // Equal rounded shares → Jain over counters is exactly 1, and the
        // per-station sums reproduce the aggregates.
        assert_eq!(m.jain_fairness(), 1.0);
        let per: u64 = m.per_station.iter().map(|s| s.successes).sum();
        assert_eq!(per, m.successes);
        let coll: u64 = m.per_station.iter().map(|s| s.collisions).sum();
        assert_eq!(coll, m.collided_tx);
        // Count-derived ratios track the analytic headline values.
        assert!((m.collision_probability() - r.collision_probability).abs() < 0.01);
        assert!((m.norm_throughput(timing.frame_length) - r.norm_throughput).abs() < 0.01);
        // Airtime accounting covers the whole synthesized elapsed time.
        let (i, s, c, _) = m.airtime_shares();
        assert!((i + s + c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_scales_counts_not_ratios() {
        let config = CsmaConfig::ieee1901_ca01();
        let timing = paper_timing();
        let short = meanfield_report(&config, 5, &timing, Microseconds(1e6), None).unwrap();
        let long = meanfield_report(&config, 5, &timing, Microseconds(1e8), None).unwrap();
        assert_eq!(short.collision_probability, long.collision_probability);
        assert_eq!(short.norm_throughput, long.norm_throughput);
        assert!(long.successes > short.successes * 50);
    }

    #[test]
    fn lone_station_never_collides() {
        let config = CsmaConfig::ieee1901_ca01();
        let timing = paper_timing();
        let r = meanfield_report(&config, 1, &timing, Microseconds(1e7), None).unwrap();
        assert_eq!(r.collision_probability, 0.0);
        assert_eq!(r.collided_tx, 0);
        assert!(r.successes > 0);
    }

    #[test]
    fn registry_instrumentation_counts_solves_and_stations() {
        let reg = plc_obs::Registry::new();
        let config = CsmaConfig::ieee1901_ca01();
        let timing = paper_timing();
        meanfield_report(&config, 7, &timing, Microseconds(1e6), Some(&reg)).unwrap();
        meanfield_report(&config, 7, &timing, Microseconds(1e6), Some(&reg)).unwrap();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("meanfield.solves"), Some(2));
        assert_eq!(snap.counter("meanfield.stations"), Some(14));
        assert!(snap.timer("meanfield.solve").is_some());
    }

    #[test]
    fn zero_stations_is_a_config_error() {
        let err = meanfield_report(
            &CsmaConfig::ieee1901_ca01(),
            0,
            &paper_timing(),
            Microseconds(1e6),
            None,
        )
        .unwrap_err();
        assert!(err.to_string().contains("at least one station"));
    }

    #[test]
    fn analysis_exposes_delay_and_diagnostics() {
        let config = CsmaConfig::ieee1901_ca01();
        let a = meanfield_analysis(&config, 5, &paper_timing()).unwrap();
        assert!(a.solution.diagnostics.converged);
        assert!(a.delay.mean_slots > 1.0);
        assert!(a.delay.mean_us > a.delay.mean_slots * paper_timing().slot.as_micros());
        assert!(a.delay.p50_slots.is_some());
    }
}
