//! Trace export: serializing event streams for external analysis.
//!
//! The report notes the simulator "can be modified to return the traces of
//! successfully transmitted packets to study other metrics such as
//! fairness". [`JsonLinesSink`] is the general form: every
//! [`TraceEvent`] is serialized as one JSON line into any `io::Write`
//! target, so traces can be piped into external plotting or replayed with
//! [`read_json_lines`].

use crate::trace::{TraceEvent, TraceSink};
use std::io::{self, BufRead, Write};

/// A sink writing one JSON object per event to a writer.
///
/// Serialization errors are latched into
/// [`error`](JsonLinesSink::error) rather than panicking inside the
/// engine's hot loop; check after the run.
pub struct JsonLinesSink<W: Write> {
    writer: W,
    events_written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer,
            events_written: 0,
            error: None,
        }
    }

    /// Events successfully written so far.
    pub fn events_written(&self) -> u64 {
        self.events_written
    }

    /// The first I/O or serialization error, if any occurred.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the inner writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.writer.flush()?;
        if let Some(e) = self.error {
            return Err(e);
        }
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn on_event(&mut self, ev: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let result = serde_json::to_string(ev)
            .map_err(io::Error::other)
            .and_then(|line| writeln!(self.writer, "{line}"));
        match result {
            Ok(()) => self.events_written += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

/// Serialize finished sweep results to one compact JSON document.
///
/// The rendering is fully deterministic (struct fields in declaration
/// order, points in `point_index` order), so two runs of the same grid
/// with the same master seed compare byte-identical regardless of worker
/// count.
pub fn sweep_results_json(results: &crate::sweep::SweepResults) -> String {
    serde_json::to_string(results).expect("sweep results serialize infallibly")
}

/// Write sweep results as JSON to any writer (a file, a pipe, a buffer).
pub fn write_sweep_results<W: Write>(
    results: &crate::sweep::SweepResults,
    mut w: W,
) -> io::Result<()> {
    w.write_all(sweep_results_json(results).as_bytes())?;
    writeln!(w)
}

/// Read a JSON-lines trace back into events (replay / post-processing).
pub fn read_json_lines<R: BufRead>(reader: R) -> io::Result<Vec<TraceEvent>> {
    reader
        .lines()
        .filter(|l| l.as_ref().map(|s| !s.trim().is_empty()).unwrap_or(true))
        .map(|line| {
            let line = line?;
            serde_json::from_str(&line).map_err(io::Error::other)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SlottedEngine, StationSpec};
    use parking_lot::Mutex;
    use plc_core::units::Microseconds;
    use plc_mac::Backoff1901;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn events_round_trip_through_jsonl() {
        let mut rng = SmallRng::seed_from_u64(1);
        let stations = vec![
            StationSpec::saturated(Backoff1901::default_ca1(&mut rng)),
            StationSpec::saturated(Backoff1901::default_ca1(&mut rng)),
        ];
        let cfg = EngineConfig::with_horizon(Microseconds(1e5));
        let mut engine = SlottedEngine::new(cfg, stations, 1);
        let sink = Arc::new(Mutex::new(JsonLinesSink::new(Vec::<u8>::new())));
        engine.add_sink(sink.clone());
        engine.run();

        let mut guard = sink.lock();
        assert!(guard.error().is_none());
        let written = guard.events_written();
        assert!(written > 10);
        let bytes = std::mem::take(&mut *guard).into_inner().unwrap();
        drop(guard);

        let events = read_json_lines(io::Cursor::new(bytes)).unwrap();
        assert_eq!(events.len() as u64, written);
        // Round-level events are time-ordered (wire events interleave —
        // a round's Success summary carries its *start* time, while the
        // SACKs inside it are stamped later).
        let rounds: Vec<f64> = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    TraceEvent::IdleSlot { .. }
                        | TraceEvent::Success { .. }
                        | TraceEvent::Collision { .. }
                )
            })
            .map(|e| e.time().as_micros())
            .collect();
        assert!(rounds.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Success { .. })));
    }

    #[test]
    fn replay_preserves_every_field() {
        use plc_core::addr::Tei;
        use plc_core::frame::SofDelimiter;
        use plc_core::priority::Priority;
        let original = vec![
            TraceEvent::IdleSlot {
                t: Microseconds(35.84),
            },
            TraceEvent::Sof {
                t: Microseconds(71.68),
                station: 1,
                sof: SofDelimiter {
                    src: Tei(2),
                    dst: Tei(4),
                    priority: Priority::CA2,
                    mpdu_cnt: 1,
                    num_pbs: 4,
                    fl_units: 1602,
                },
            },
            TraceEvent::Collision {
                t: Microseconds(100.0),
                stations: vec![0, 1],
            },
        ];
        let mut sink = JsonLinesSink::new(Vec::<u8>::new());
        for ev in &original {
            sink.on_event(ev);
        }
        let bytes = sink.into_inner().unwrap();
        let replayed = read_json_lines(io::Cursor::new(bytes)).unwrap();
        assert_eq!(replayed, original);
    }

    #[test]
    fn bad_lines_are_errors_not_panics() {
        let garbage = "this is not json\n";
        assert!(read_json_lines(io::Cursor::new(garbage.as_bytes())).is_err());
        // Empty input is fine.
        assert!(read_json_lines(io::Cursor::new(&b""[..]))
            .unwrap()
            .is_empty());
    }

    impl Default for JsonLinesSink<Vec<u8>> {
        fn default() -> Self {
            JsonLinesSink::new(Vec::new())
        }
    }
}
