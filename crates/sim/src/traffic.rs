//! Traffic models.
//!
//! The paper's experiments are run with **saturated** stations ("N
//! saturated PLC stations transmitting UDP traffic"), which is also the
//! reference simulator's only mode. For extension experiments (delay under
//! load, unsaturated throughput) we add Poisson and on/off arrivals; a
//! station with an empty queue does not contend, and the arrival of a frame
//! to an idle station starts a fresh backoff at stage 0 — the standard's
//! behaviour "upon the arrival of a new packet".

use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Frame arrival model for one station.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum TrafficModel {
    /// Always backlogged — the paper's assumption.
    #[default]
    Saturated,
    /// Poisson arrivals with the given rate (frames per µs); the queue is
    /// bounded and overflowing arrivals are dropped.
    Poisson {
        /// Mean arrival rate in frames/µs (e.g. `2e-4` ≈ one frame per 5 ms).
        rate_per_us: f64,
        /// Queue capacity in frames.
        queue_cap: usize,
    },
    /// Markov-modulated on/off source: exponentially distributed on and off
    /// periods; while "on", Poisson arrivals at `rate_per_us`.
    OnOff {
        /// Arrival rate while in the on state (frames/µs).
        rate_per_us: f64,
        /// Mean duration of the on state (µs).
        mean_on_us: f64,
        /// Mean duration of the off state (µs).
        mean_off_us: f64,
        /// Queue capacity in frames.
        queue_cap: usize,
    },
}

/// Runtime state of one station's traffic source + queue.
#[derive(Debug, Clone)]
pub struct TrafficState {
    model: TrafficModel,
    /// Frames waiting (saturated stations report `usize::MAX`).
    queue: usize,
    /// Next scheduled arrival time (µs), for arrival-driven models.
    next_arrival: f64,
    /// On/off phase state: `true` while in the on period.
    on: bool,
    /// Time the current on/off phase ends.
    phase_end: f64,
    /// Arrivals dropped because the queue was full.
    pub dropped_arrivals: u64,
    /// Total arrivals generated (including dropped).
    pub total_arrivals: u64,
}

fn exp_sample(rng: &mut dyn RngCore, mean: f64) -> f64 {
    // Inverse-CDF; `gen::<f64>()` is in [0,1), guard the log.
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

impl TrafficState {
    /// Initialize at simulated time 0.
    pub fn new(model: TrafficModel, rng: &mut dyn RngCore) -> Self {
        let mut s = TrafficState {
            model,
            queue: 0,
            next_arrival: f64::INFINITY,
            on: true,
            phase_end: f64::INFINITY,
            dropped_arrivals: 0,
            total_arrivals: 0,
        };
        match model {
            TrafficModel::Saturated => {}
            TrafficModel::Poisson { rate_per_us, .. } => {
                s.next_arrival = exp_sample(rng, 1.0 / rate_per_us);
            }
            TrafficModel::OnOff {
                rate_per_us,
                mean_on_us,
                ..
            } => {
                s.on = true;
                s.phase_end = exp_sample(rng, mean_on_us);
                s.next_arrival = exp_sample(rng, 1.0 / rate_per_us);
            }
        }
        s
    }

    /// Saturated?
    pub fn is_saturated(&self) -> bool {
        matches!(self.model, TrafficModel::Saturated)
    }

    /// Frames currently available to send (for burst sizing). Saturated
    /// sources report `usize::MAX`.
    pub fn backlog(&self) -> usize {
        if self.is_saturated() {
            usize::MAX
        } else {
            self.queue
        }
    }

    /// Does the station have a frame to contend for?
    pub fn has_frame(&self) -> bool {
        self.backlog() > 0
    }

    /// Earliest time (µs) at which [`advance_to`](Self::advance_to) would
    /// mutate state or consume RNG draws: the next arrival or on/off
    /// phase flip, `INFINITY` for saturated sources. Any `advance_to(now)`
    /// with `now` strictly below this value is a guaranteed no-op — the
    /// invariant the engine's idle-slot fast-forward relies on.
    pub fn next_event_us(&self) -> f64 {
        match self.model {
            TrafficModel::Saturated => f64::INFINITY,
            TrafficModel::Poisson { .. } => self.next_arrival,
            TrafficModel::OnOff { .. } => self.next_arrival.min(self.phase_end),
        }
    }

    /// Advance the arrival process to time `now` (µs), enqueueing arrivals.
    /// Returns `true` if the queue went from empty to non-empty (the
    /// station must start a fresh backoff).
    pub fn advance_to(&mut self, now: f64, rng: &mut dyn RngCore) -> bool {
        let was_empty = !self.has_frame();
        match self.model {
            TrafficModel::Saturated => return false,
            TrafficModel::Poisson {
                rate_per_us,
                queue_cap,
            } => {
                while self.next_arrival <= now {
                    self.arrive(queue_cap);
                    self.next_arrival += exp_sample(rng, 1.0 / rate_per_us);
                }
            }
            TrafficModel::OnOff {
                rate_per_us,
                mean_on_us,
                mean_off_us,
                queue_cap,
            } => {
                // Walk phase boundaries and arrivals interleaved.
                loop {
                    let next_event = self.next_arrival.min(self.phase_end);
                    if next_event > now {
                        break;
                    }
                    if self.phase_end <= self.next_arrival {
                        // Phase flip.
                        self.on = !self.on;
                        let mean = if self.on { mean_on_us } else { mean_off_us };
                        let t0 = self.phase_end;
                        self.phase_end = t0 + exp_sample(rng, mean);
                        self.next_arrival = if self.on {
                            t0 + exp_sample(rng, 1.0 / rate_per_us)
                        } else {
                            f64::INFINITY.min(self.phase_end + 0.0).max(self.phase_end)
                        };
                        if !self.on {
                            // No arrivals while off; re-arm at phase end.
                            self.next_arrival = self.phase_end;
                            continue;
                        }
                    } else {
                        if self.on {
                            self.arrive(queue_cap);
                            self.next_arrival += exp_sample(rng, 1.0 / rate_per_us);
                        } else {
                            // Arrival marker while off is just the phase end.
                            self.next_arrival = self.phase_end;
                        }
                    }
                }
            }
        }
        was_empty && self.has_frame()
    }

    fn arrive(&mut self, cap: usize) {
        self.total_arrivals += 1;
        if self.queue < cap {
            self.queue += 1;
        } else {
            self.dropped_arrivals += 1;
        }
    }

    /// Consume `n` frames after a successful burst.
    pub fn consume(&mut self, n: usize) {
        if !self.is_saturated() {
            self.queue = self.queue.saturating_sub(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn saturated_always_has_frames() {
        let mut r = rng();
        let mut s = TrafficState::new(TrafficModel::Saturated, &mut r);
        assert!(s.has_frame());
        assert_eq!(s.backlog(), usize::MAX);
        assert!(!s.advance_to(1e9, &mut r));
        s.consume(5);
        assert!(s.has_frame());
        assert_eq!(s.dropped_arrivals, 0);
    }

    #[test]
    fn poisson_rate_is_respected() {
        let mut r = rng();
        let rate = 1e-3; // 1 frame per 1000 µs
        let mut s = TrafficState::new(
            TrafficModel::Poisson {
                rate_per_us: rate,
                queue_cap: usize::MAX / 2,
            },
            &mut r,
        );
        s.advance_to(1e7, &mut r); // 10 s → expect ~10_000 arrivals
        let got = s.total_arrivals as f64;
        assert!((got - 10_000.0).abs() < 500.0, "got {got} arrivals");
        assert_eq!(s.dropped_arrivals, 0);
    }

    #[test]
    fn poisson_activation_signal() {
        let mut r = rng();
        let mut s = TrafficState::new(
            TrafficModel::Poisson {
                rate_per_us: 1e-3,
                queue_cap: 100,
            },
            &mut r,
        );
        assert!(!s.has_frame());
        // Advance far enough that an arrival certainly occurred.
        let activated = s.advance_to(1e6, &mut r);
        assert!(activated, "empty→non-empty must signal activation");
        // Further arrivals with a non-empty queue do not re-signal.
        assert!(!s.advance_to(2e6, &mut r));
    }

    #[test]
    fn queue_cap_drops() {
        let mut r = rng();
        let mut s = TrafficState::new(
            TrafficModel::Poisson {
                rate_per_us: 1e-2,
                queue_cap: 3,
            },
            &mut r,
        );
        s.advance_to(1e6, &mut r); // ~10_000 arrivals into a 3-deep queue
        assert_eq!(s.backlog(), 3);
        assert!(s.dropped_arrivals > 9_000);
    }

    #[test]
    fn consume_drains_queue() {
        let mut r = rng();
        let mut s = TrafficState::new(
            TrafficModel::Poisson {
                rate_per_us: 1e-2,
                queue_cap: 10,
            },
            &mut r,
        );
        s.advance_to(1e5, &mut r);
        assert_eq!(s.backlog(), 10);
        s.consume(4);
        assert_eq!(s.backlog(), 6);
        s.consume(100);
        assert_eq!(s.backlog(), 0);
        assert!(!s.has_frame());
    }

    #[test]
    fn onoff_generates_fewer_than_always_on() {
        let mut r = rng();
        let rate = 1e-3;
        let mut onoff = TrafficState::new(
            TrafficModel::OnOff {
                rate_per_us: rate,
                mean_on_us: 5e4,
                mean_off_us: 5e4,
                queue_cap: usize::MAX / 2,
            },
            &mut r,
        );
        onoff.advance_to(2e7, &mut r);
        let got = onoff.total_arrivals as f64;
        // 50% duty cycle → ≈ rate · T / 2 = 10_000 arrivals.
        assert!(
            (5_000.0..15_000.0).contains(&got),
            "on/off at 50% duty should halve arrivals, got {got}"
        );
    }

    #[test]
    fn exp_sample_mean() {
        let mut r = rng();
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            sum += exp_sample(&mut r, 250.0);
        }
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean {mean}");
    }
}
