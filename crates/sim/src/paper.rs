//! A line-faithful port of the paper's reference simulator.
//!
//! The technical report publishes a MATLAB function `sim_1901(N, sim_time,
//! Tc, Ts, frame_length, cw, dc)` that simulates the IEEE 1901 MAC "under
//! the assumptions that stations are saturated …, that the retry limit is
//! infinite … and finally, that the stations belong to a single contention
//! domain". This module ports that listing to Rust **keeping its exact
//! finite-state-machine structure** — the per-station `State ∈ {0, 1, 2}`,
//! the update order, the statistics, even the accounting quirks:
//!
//! * `collisions` counts *colliding stations* (`collisions += counter`),
//!   not collision events, matching the testbed's `ΣCᵢ` semantics;
//! * the collision probability is `collisions / (collisions +
//!   succ_transmissions)`, matching `ΣCᵢ / ΣAᵢ` since the 1901 selective
//!   acknowledgment also acknowledges collided frames;
//! * the loop runs `while t ≤ sim_time`, so the elapsed time overshoots the
//!   horizon by up to one `Ts`/`Tc` — normalized throughput divides by the
//!   *actual* elapsed `t`;
//! * at `t = 0` every station enters "initialize" with `BPC = BC = DC = 0`,
//!   so the first iteration draws stage-0 parameters for everyone.
//!
//! The modular engine in [`crate::engine`] implements the same protocol in
//! extensible form; an integration test cross-validates the two
//! statistically. Use this port when you want the paper's numbers exactly;
//! use the engine when you need traces, bursts, priorities or mixed
//! protocols.
//!
//! The paper's example invocation is
//! `sim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15])`,
//! available here as [`PaperSim::paper_example`].

use plc_core::timing::SLOT;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Inputs of the reference simulator, in the order of the paper's Table 3.
///
/// # Examples
///
/// ```
/// use plc_sim::paper::PaperSim;
///
/// // The paper's example call, shortened to 10 simulated seconds:
/// // sim_1901(2, 5e8, 2920.64, 2542.64, 2050, [8 16 32 64], [0 1 3 15])
/// let result = PaperSim::with_n_and_time(2, 1.0e7).run(42).unwrap();
/// assert!(result.collision_pr > 0.05 && result.collision_pr < 0.12);
/// assert!(result.norm_throughput > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperSim {
    /// Number of saturated stations (`N`).
    pub n: usize,
    /// Total simulation time in µs (`sim_time`).
    pub sim_time: f64,
    /// Collision duration in µs (`Tc`).
    pub tc: f64,
    /// Successful-transmission duration in µs (`Ts`).
    pub ts: f64,
    /// Frame duration in µs, excluding overheads (`frame_length`).
    pub frame_length: f64,
    /// Contention window per backoff stage (`cw`).
    pub cw: Vec<u32>,
    /// Initial deferral counter per backoff stage (`dc`).
    pub dc: Vec<u32>,
}

/// Outputs of the reference simulator plus the raw counters behind them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperSimResult {
    /// `collision_pr`: collided stations / (collided + successful)
    /// transmissions — the quantity Figure 2 plots.
    pub collision_pr: f64,
    /// `norm_throughput`: `succ_transmissions · frame_length / t`.
    pub norm_throughput: f64,
    /// Number of successful transmissions.
    pub succ_transmissions: u64,
    /// Number of collided transmissions, counting each colliding station
    /// (the MATLAB `collisions += counter`).
    pub collisions: u64,
    /// Simulated time actually elapsed (≥ `sim_time`, by at most one event).
    pub elapsed: f64,
}

/// Error for invalid reference-simulator inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaperSimError(pub String);

impl core::fmt::Display for PaperSimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid sim_1901 input: {}", self.0)
    }
}

impl std::error::Error for PaperSimError {}

impl PaperSim {
    /// The paper's example invocation: N = 2 saturated stations with the
    /// default 1901 CA1 configuration and timing.
    pub fn paper_example() -> Self {
        PaperSim {
            n: 2,
            sim_time: 5.0e8,
            tc: 2920.64,
            ts: 2542.64,
            frame_length: 2050.0,
            cw: vec![8, 16, 32, 64],
            dc: vec![0, 1, 3, 15],
        }
    }

    /// Same defaults with a different station count.
    pub fn with_n(n: usize) -> Self {
        PaperSim {
            n,
            ..Self::paper_example()
        }
    }

    /// Same defaults with a shorter horizon (µs) — for quick tests.
    pub fn with_n_and_time(n: usize, sim_time: f64) -> Self {
        PaperSim {
            n,
            sim_time,
            ..Self::paper_example()
        }
    }

    /// Validate the inputs the way the MATLAB listing does (it returns
    /// early when `size(dc) ≠ size(cw)`), plus the checks MATLAB leaves to
    /// runtime errors.
    pub fn validate(&self) -> Result<(), PaperSimError> {
        if self.n == 0 {
            return Err(PaperSimError("N must be at least 1".into()));
        }
        if self.cw.len() != self.dc.len() {
            return Err(PaperSimError(format!(
                "cw and dc must have equal length ({} vs {})",
                self.cw.len(),
                self.dc.len()
            )));
        }
        if self.cw.is_empty() {
            return Err(PaperSimError("need at least one backoff stage".into()));
        }
        if self.cw.contains(&0) {
            return Err(PaperSimError("contention windows must be ≥ 1".into()));
        }
        for (name, v) in [
            ("sim_time", self.sim_time),
            ("Tc", self.tc),
            ("Ts", self.ts),
            ("frame_length", self.frame_length),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(PaperSimError(format!("{name} must be positive and finite")));
            }
        }
        Ok(())
    }

    /// Run the simulation with the given RNG seed.
    ///
    /// The structure below mirrors the MATLAB listing statement by
    /// statement; variable names match the paper (`State`, `BPC`, `BC`,
    /// `DC`, `CW`, `next_state`). `unidrnd(CW) − 1` becomes
    /// `rng.gen_range(0..cw)`.
    pub fn run(&self, seed: u64) -> Result<PaperSimResult, PaperSimError> {
        self.validate()?;
        let n = self.n;
        let slot = SLOT.as_micros();
        let m = self.cw.len();

        let mut rng = SmallRng::seed_from_u64(seed);

        // State 0 is initialize (change backoff parameters), 1 is Tx, 2 is idle.
        let mut state = vec![0u8; n];
        let mut next_state = vec![2u8; n];
        let mut t = 0.0f64;
        let mut bpc = vec![0u32; n]; // backoff procedure counter
        let mut bc = vec![0u32; n]; // backoff counter
        let mut dc = vec![0u32; n]; // deferral counter
        let mut cw = vec![self.cw[0]; n]; // contention window in effect

        let mut collisions: u64 = 0;
        let mut succ_transmissions: u64 = 0;

        while t <= self.sim_time {
            for i in 0..n {
                if state[i] == 0 {
                    if bpc[i] == 0 || bc[i] == 0 || dc[i] == 0 {
                        // Enter the next backoff stage (or stage 0 after a
                        // success / at start-up) and redraw.
                        let stage = (bpc[i] as usize).min(m - 1);
                        cw[i] = self.cw[stage];
                        dc[i] = self.dc[stage];
                        bc[i] = rng.gen_range(0..cw[i]);
                        bpc[i] = bpc[i].saturating_add(1);
                    } else {
                        // Sensed busy with DC > 0: both counters decrease.
                        bc[i] -= 1;
                        dc[i] -= 1;
                    }
                    next_state[i] = if bc[i] == 0 { 1 } else { 2 };
                }
                if state[i] == 2 {
                    bc[i] -= 1;
                    next_state[i] = if bc[i] == 0 { 1 } else { 2 };
                }
            }

            let counter = next_state.iter().filter(|&&s| s == 1).count();

            if counter == 0 {
                // Medium idle for one slot.
                t += slot;
            } else if counter == 1 {
                // Successful transmission: the winner restarts at stage 0;
                // everyone re-enters the initialize state (they sensed the
                // medium busy).
                succ_transmissions += 1;
                for i in 0..n {
                    if next_state[i] == 1 {
                        bpc[i] = 0;
                    }
                    next_state[i] = 0;
                }
                t += self.ts;
            } else {
                // Collision: each colliding station counts, everyone
                // re-enters initialize.
                collisions += counter as u64;
                for s in next_state.iter_mut() {
                    *s = 0;
                }
                t += self.tc;
            }

            state.copy_from_slice(&next_state);
        }

        let denom = collisions + succ_transmissions;
        Ok(PaperSimResult {
            collision_pr: if denom == 0 {
                0.0
            } else {
                collisions as f64 / denom as f64
            },
            norm_throughput: succ_transmissions as f64 * self.frame_length / t,
            succ_transmissions,
            collisions,
            elapsed: t,
        })
    }

    /// Run `repeats` independent replications (seeds `seed0..seed0+repeats`)
    /// and return the per-replication results.
    pub fn run_repeated(
        &self,
        seed0: u64,
        repeats: u64,
    ) -> Result<Vec<PaperSimResult>, PaperSimError> {
        (0..repeats).map(|k| self.run(seed0 + k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Short-horizon defaults used in tests: 20 s simulated time keeps each
    /// run in the low milliseconds while leaving thousands of transmissions.
    fn quick(n: usize) -> PaperSim {
        PaperSim::with_n_and_time(n, 2.0e7)
    }

    #[test]
    fn validates_inputs() {
        assert!(PaperSim {
            n: 0,
            ..PaperSim::paper_example()
        }
        .validate()
        .is_err());
        assert!(PaperSim {
            cw: vec![8],
            ..PaperSim::paper_example()
        }
        .validate()
        .is_err());
        assert!(PaperSim {
            cw: vec![],
            dc: vec![],
            ..PaperSim::paper_example()
        }
        .validate()
        .is_err());
        assert!(PaperSim {
            tc: -1.0,
            ..PaperSim::paper_example()
        }
        .validate()
        .is_err());
        assert!(PaperSim {
            sim_time: f64::NAN,
            ..PaperSim::paper_example()
        }
        .validate()
        .is_err());
        assert!(PaperSim {
            cw: vec![8, 0, 32, 64],
            ..PaperSim::paper_example()
        }
        .validate()
        .is_err());
        assert!(PaperSim::paper_example().validate().is_ok());
    }

    #[test]
    fn single_station_never_collides() {
        let r = quick(1).run(1).unwrap();
        assert_eq!(r.collisions, 0);
        assert_eq!(r.collision_pr, 0.0);
        assert!(r.succ_transmissions > 0);
        assert!(r.norm_throughput > 0.0);
    }

    #[test]
    fn single_station_throughput_matches_closed_form() {
        // With N = 1 and d_0 = 0/CW_0 = 8 the station alone always succeeds;
        // mean backoff per frame is E[BC] = (CW_0 - 1)/2 = 3.5 slots.
        // Throughput = L / (Ts + 3.5 σ).
        let r = quick(1).run(7).unwrap();
        let expected = 2050.0 / (2542.64 + 3.5 * 35.84);
        assert!(
            (r.norm_throughput - expected).abs() < 0.01,
            "measured {} vs expected {expected}",
            r.norm_throughput
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick(3).run(42).unwrap();
        let b = quick(3).run(42).unwrap();
        assert_eq!(a, b);
        let c = quick(3).run(43).unwrap();
        assert_ne!(a.succ_transmissions, 0);
        assert_ne!(a, c, "different seeds should give different runs");
    }

    #[test]
    fn collision_probability_increases_with_n() {
        let mut prev = -1.0;
        for n in 1..=7 {
            let r = quick(n).run(5).unwrap();
            assert!(
                r.collision_pr > prev,
                "collision probability must increase with N: p({n}) = {} ≤ p({}) = {prev}",
                r.collision_pr,
                n - 1
            );
            prev = r.collision_pr;
        }
    }

    #[test]
    fn figure2_anchor_points() {
        // The paper's Table 2 / Figure 2: measured collision probability
        // ≈ 0.074 at N = 2 and ≈ 0.267 at N = 7 with the CA1 defaults.
        // Averaged over a few seeds the simulator must land close by.
        let avg = |n: usize| {
            let rs = quick(n).run_repeated(100, 4).unwrap();
            rs.iter().map(|r| r.collision_pr).sum::<f64>() / rs.len() as f64
        };
        let p2 = avg(2);
        let p7 = avg(7);
        assert!(
            (p2 - 0.074).abs() < 0.02,
            "N=2 collision probability {p2}, paper ≈ 0.074"
        );
        assert!(
            (p7 - 0.267).abs() < 0.03,
            "N=7 collision probability {p7}, paper ≈ 0.267"
        );
    }

    #[test]
    fn transmission_count_grows_with_n() {
        // §3.2's observation: total (acked) transmissions grow with N
        // because more stations expire their counters sooner.
        let t1 = quick(1).run(3).unwrap();
        let t4 = quick(4).run(3).unwrap();
        let t7 = quick(7).run(3).unwrap();
        let total = |r: &PaperSimResult| r.succ_transmissions + r.collisions;
        assert!(total(&t4) > total(&t1));
        assert!(total(&t7) > total(&t4));
    }

    #[test]
    fn throughput_degrades_from_2_to_many() {
        // Normalized throughput at N=7 is below N=2 (collisions dominate).
        let s2 = quick(2).run(11).unwrap().norm_throughput;
        let s7 = quick(7).run(11).unwrap().norm_throughput;
        assert!(s7 < s2, "throughput must degrade: S(7)={s7} vs S(2)={s2}");
    }

    #[test]
    fn elapsed_overshoots_horizon_by_at_most_one_event() {
        let sim = quick(3);
        let r = sim.run(9).unwrap();
        assert!(r.elapsed > sim.sim_time);
        assert!(r.elapsed <= sim.sim_time + sim.tc.max(sim.ts));
    }

    #[test]
    fn dcf_like_table_runs_too() {
        // The reference FSM with DC "disabled" via huge d_i values behaves
        // like a BC-decrementing variant without deferral jumps.
        let sim = PaperSim {
            cw: vec![16, 32, 64, 128],
            dc: vec![1 << 20, 1 << 20, 1 << 20, 1 << 20],
            ..quick(3)
        };
        let r = sim.run(1).unwrap();
        assert!(r.succ_transmissions > 0);
        assert!(r.collision_pr > 0.0 && r.collision_pr < 1.0);
    }

    #[test]
    fn repeated_runs_have_low_variance_at_long_horizon() {
        let rs = quick(3).run_repeated(0, 4).unwrap();
        let mean: f64 = rs.iter().map(|r| r.collision_pr).sum::<f64>() / 4.0;
        for r in &rs {
            assert!(
                (r.collision_pr - mean).abs() < 0.01,
                "per-seed collision probabilities should concentrate: {} vs mean {mean}",
                r.collision_pr
            );
        }
    }
}
