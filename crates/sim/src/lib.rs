//! # plc-sim — discrete-event simulator for the IEEE 1901 MAC
//!
//! Two engines, one protocol:
//!
//! * [`paper::PaperSim`] — a line-faithful Rust port of the technical
//!   report's MATLAB reference simulator (`sim_1901`). Use it when you want
//!   the paper's numbers, exactly as published.
//! * [`engine::SlottedEngine`] — a modular engine with the same channel
//!   dynamics plus traffic models, MPDU bursting, retry policies, trace
//!   sinks and per-station metrics. Generic over
//!   [`plc_mac::BackoffProcess`], so IEEE 1901 and 802.11 DCF contend under
//!   identical conditions. An integration test pins the two engines to
//!   each other statistically.
//! * [`multiclass::MultiClassEngine`] — adds explicit priority-resolution
//!   phases for CA0–CA3 interaction studies.
//!
//! Plus one analytic stand-in: [`backend::Backend::MeanField`] swaps the
//! event loop for a `plc_analysis` mean-field fixed-point solve that
//! synthesizes the same [`runner::SimReport`] schema deterministically —
//! fleet-scale sweeps in microseconds, at the documented decoupling
//! accuracy envelope.
//!
//! Most callers want the [`runner::Simulation`] builder:
//!
//! ```
//! use plc_sim::runner::Simulation;
//!
//! // Three saturated 1901 stations, 5 seconds of simulated time.
//! let report = Simulation::ieee1901(3).horizon_us(5.0e6).seed(7).run();
//! println!("collision probability: {:.3}", report.collision_probability);
//! ```
//!
//! Everything is deterministic given `(configuration, seed)`; no wall-clock
//! time or I/O enters the simulation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod backend;
pub mod batch;
pub mod bursting;
pub(crate) mod contention;
pub mod engine;
pub mod export;
pub mod metrics;
pub mod multiclass;
pub mod multidomain;
pub mod paper;
pub mod runner;
pub mod scenario;
pub mod sweep;
pub mod topology;
pub mod trace;
pub mod traffic;

pub use aggregation::{AggregatedMpdu, AggregationConfig, AggregationQueue};
pub use backend::{Backend, MeanFieldReport};
pub use batch::BatchRunner;
pub use bursting::BurstPolicy;
#[doc(hidden)]
pub use contention::bench as contention_bench;
pub use contention::CoreRejection;
pub use engine::{BeaconSchedule, EngineConfig, SlottedEngine, StationSpec, StepOutcome};
pub use export::JsonLinesSink;
pub use metrics::{Metrics, StationMetrics};
pub use multidomain::MultiDomainReport;
pub use paper::{PaperSim, PaperSimResult};
pub use runner::{ReplicationSummary, RunSummary, SimReport, Simulation};
pub use scenario::Scenario;
pub use sweep::{
    parallel_map, parallel_map_observed, parallel_map_with_progress, EarlyStop, Quantity,
    SweepGrid, SweepPoint, SweepPointResult, SweepResults,
};
pub use topology::{Topology, TopologyBuilder};
pub use trace::{StationId, SuccessTrace, TraceEvent, TraceSink, VecTraceSink};
pub use traffic::TrafficModel;
