//! Struct-of-arrays contention core: the engine's busy-slot hot path.
//!
//! [`SlottedEngine`](crate::engine::SlottedEngine) is generic over
//! [`BackoffProcess`](plc_mac::process::BackoffProcess) objects, which is
//! the right shape for correctness and protocol ablations but the wrong
//! shape for a saturated medium: a busy slot must touch *every* backlogged
//! station's BC/DC, and walking a `Vec<StationCtx>` of ~100-byte structs
//! costs several cache lines per station plus an enum dispatch per event.
//! When every station's process exports a
//! [`SoaView`](plc_mac::process::SoaView), the engine moves the counters
//! into this core's parallel arrays and the busy-slot pass becomes a
//! branch-light sweep over a few contiguous bytes per station.
//!
//! # Memory layout
//!
//! The two counters every busy slot touches — BC and DC — are packed into
//! one `u32` per station (`bcdc`: BC in the low 16 bits, DC in the high
//! 16, with `0xFFFF` as the disabled-DC sentinel). A deferring station's
//! whole slot update is then one load, one compare (`word >= 0x10000`
//! means `DC > 0`), one subtract and one store:
//!
//! ```text
//! word - 1 - (((word >> 16) != 0xFFFF) as u32) << 16   // BC -= 1, DC -= 1 unless disabled
//! ```
//!
//! Stage and BPC live in separate arrays — they are only touched on
//! redraws, not on every slot. `from_views` rejects populations whose
//! CW/DC values don't fit the packed layout (CW > 2¹⁶, DC ≥ 2¹⁶ − 1 yet
//! not disabled), in which case the engine stays on the per-object path.
//!
//! On top of the layout, the all-backlogged single-class IEEE 1901
//! population — the saturated benchmark regime — takes a specialized
//! sweep with the per-station `active`/protocol checks hoisted out of
//! the loop entirely.
//!
//! # Draw-order contract
//!
//! Bit-identity with the per-object path rests on two facts, both pinned
//! by the `soa_equivalence` test suite:
//!
//! * the vendored `gen_range(0..cw)` consumes exactly one `next_u64` and
//!   maps it with the Lemire multiply-shift `((x · cw) >> 64)` — no
//!   rejection loop, so the word count per redraw is fixed;
//! * every station loop in the engine mutates (and therefore redraws) in
//!   ascending station order.
//!
//! A sweep therefore runs in two passes: pass 1 walks stations in
//! ascending order and *decides* who redraws (queueing `(station, cw)`
//! pairs), pass 2 pre-fills the draw buffer from the engine RNG — one
//! `next_u64` per queued redraw, in queue order — and applies the same
//! multiply-shift. The resulting stream consumption is word-for-word what
//! the per-object path would have drawn.
//!
//! The fast-forward contention cache (`zero` set + min positive BC) is
//! folded *inside* the sweeps (`TRACK = true`): stations whose BC is
//! final fold inline, redrawn stations fold as their draw lands, and the
//! two ascending zero sets merge with one ordered pass.

use crate::trace::StationId;
use plc_core::config::DC_DISABLED;
use plc_mac::process::{BackoffSnapshot, Protocol, SoaView};
use rand::rngs::SmallRng;
use rand::RngCore;

/// What a transmitting station's backoff does after a non-idle slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SweepAction {
    /// Re-enter stage 0: a success, a retry-limit drop, or a head-of-line
    /// reset (all three share the stage-0 transition in both protocols).
    Restart,
    /// Advance the backoff stage: a collision without a drop.
    Advance,
}

const PROTO_DCF: u8 = 0;
const PROTO_1901: u8 = 1;

/// In-word disabled-DC sentinel (the packed 16-bit image of
/// [`DC_DISABLED`]).
const DC16_DISABLED: u32 = 0xFFFF;

/// Pack a (BC, 16-bit DC) pair into one word.
#[inline]
fn pack(bc: u32, dc16: u32) -> u32 {
    bc | (dc16 << 16)
}

/// Per-stage parameters of one distinct (protocol, table) combination.
/// Stations index into these via `ContentionCore::class`, so homogeneous
/// populations share one table.
struct ClassTable {
    proto: u8,
    cw: Vec<u32>,
    /// Per-stage DC reload values, already mapped to the packed 16-bit
    /// domain ([`DC16_DISABLED`] for disabled).
    dc16: Vec<u32>,
    /// `num_stages − 1`: both protocols saturate stage lookups here.
    last: u32,
}

/// The struct-of-arrays contention state. See the [module docs](self).
pub(crate) struct ContentionCore {
    n: usize,
    /// Packed per-station `BC | DC << 16` words (see the module docs).
    /// `u16` BC is exact: `CsmaConfig` caps CW at 2¹⁶, so every draw
    /// from `0..cw` fits (checked again in [`from_views`]).
    bcdc: Vec<u32>,
    /// 1901: raw BPC (one past the stage in effect). DCF: retry count.
    /// Only touched on redraws — deliberately outside the packed word.
    bpc: Vec<u32>,
    /// Stage in effect, cached at redraw time.
    stage: Vec<u8>,
    /// `PROTO_1901` or `PROTO_DCF` — selects the busy-slot semantics.
    proto: Vec<u8>,
    /// Index into `classes`.
    class: Vec<u16>,
    /// Whether the station is backlogged (has a fresh frame queued or
    /// errored PBs awaiting retransmission). Refreshed by the engine once
    /// per step — and fixed up for the few stations whose queues change
    /// mid-step — so the sweeps never touch `StationCtx`.
    active: Vec<bool>,
    classes: Vec<ClassTable>,
    /// Specialized-sweep eligibility: every station permanently
    /// backlogged (saturated population) and one shared IEEE 1901 class,
    /// so the busy loop needs no per-station `active`/protocol checks.
    fast: bool,
    /// Queued redraws of the current sweep: `(station, cw)` in ascending
    /// station order — the draw order.
    pending: Vec<(u32, u32)>,
    /// Per-sweep batch of raw RNG words, one per queued redraw.
    draws: Vec<u64>,
    /// Redrawn stations whose fresh BC landed on 0, ascending (scratch
    /// for the fused cache fold; see [`merge_zero`]).
    redraw_zero: Vec<StationId>,
    /// Merge scratch for [`merge_zero`].
    merge_buf: Vec<StationId>,
}

/// Merge the ascending `extra` set into the ascending `zero` set,
/// preserving order. The two sets are disjoint (a station folds from
/// exactly one pass), so strict `<` suffices.
fn merge_zero(zero: &mut Vec<StationId>, extra: &[StationId], buf: &mut Vec<StationId>) {
    if extra.is_empty() {
        return;
    }
    buf.clear();
    let (mut i, mut j) = (0, 0);
    while i < zero.len() && j < extra.len() {
        if zero[i] < extra[j] {
            buf.push(zero[i]);
            i += 1;
        } else {
            buf.push(extra[j]);
            j += 1;
        }
    }
    buf.extend_from_slice(&zero[i..]);
    buf.extend_from_slice(&extra[j..]);
    std::mem::swap(zero, buf);
}

/// Map a view's DC value into the packed 16-bit domain, or `None` when
/// it doesn't fit (the core then stays unused).
#[inline]
fn dc16_of(dc: u32) -> Option<u32> {
    if dc == DC_DISABLED {
        Some(DC16_DISABLED)
    } else if dc < DC16_DISABLED {
        Some(dc)
    } else {
        None
    }
}

/// Why a station population cannot be hosted in the packed
/// struct-of-arrays core. The engine then falls back to the per-object
/// path — results are identical, only the busy-slot sweep is slower —
/// and surfaces the reason through
/// [`SlottedEngine::soa_rejection`](crate::engine::SlottedEngine::soa_rejection)
/// plus the `engine.soa_fallbacks` observability counter, instead of
/// silently degrading.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreRejection {
    /// No stations (nothing to pack).
    Empty,
    /// More stations than the packed index domain.
    TooManyStations(usize),
    /// A stage table is empty or longer than the `u8` stage array allows.
    StageTableSize {
        /// Offending station.
        station: usize,
        /// Its stage-table length.
        stages: usize,
    },
    /// A contention window of 0 or above 2¹⁶ cannot be packed into the
    /// 16-bit BC field (a draw from `0..cw` must fit).
    WindowUnrepresentable {
        /// Offending station.
        station: usize,
        /// The unrepresentable window.
        cw: u32,
    },
    /// A deferral counter ≥ 0xFFFF that is not [`DC_DISABLED`] collides
    /// with the packed disabled-DC sentinel.
    DeferralUnrepresentable {
        /// Offending station.
        station: usize,
        /// The unrepresentable deferral counter.
        dc: u32,
    },
    /// A live backoff counter above the 16-bit packed domain.
    CounterOutOfRange {
        /// Offending station.
        station: usize,
        /// The unrepresentable backoff counter.
        bc: u32,
    },
    /// A station's current stage indexes past its stage table.
    StageOutOfRange {
        /// Offending station.
        station: usize,
        /// The out-of-range stage.
        stage: u32,
    },
    /// More distinct (protocol, table) classes than the `u16` class ids.
    TooManyClasses(usize),
}

impl std::fmt::Display for CoreRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreRejection::Empty => write!(f, "no stations to pack"),
            CoreRejection::TooManyStations(n) => {
                write!(f, "{n} stations exceed the packed index domain")
            }
            CoreRejection::StageTableSize { station, stages } => write!(
                f,
                "station {station}: stage table of {stages} entries does not fit \
                 the u8 stage array (need 1..=256)"
            ),
            CoreRejection::WindowUnrepresentable { station, cw } => write!(
                f,
                "station {station}: contention window {cw} does not fit the \
                 packed 16-bit backoff field (need 1..=65536)"
            ),
            CoreRejection::DeferralUnrepresentable { station, dc } => write!(
                f,
                "station {station}: deferral counter {dc} collides with the \
                 packed disabled-DC sentinel 0xFFFF (need < 65535 or DC_DISABLED)"
            ),
            CoreRejection::CounterOutOfRange { station, bc } => write!(
                f,
                "station {station}: backoff counter {bc} exceeds the packed \
                 16-bit domain"
            ),
            CoreRejection::StageOutOfRange { station, stage } => write!(
                f,
                "station {station}: stage {stage} indexes past its stage table"
            ),
            CoreRejection::TooManyClasses(n) => {
                write!(f, "{n} distinct parameter classes exceed the u16 class ids")
            }
        }
    }
}

impl CoreRejection {
    /// The rejection as a typed configuration error, for callers that
    /// treat an engaged-but-unavailable core as fatal.
    pub fn to_error(&self) -> plc_core::error::Error {
        plc_core::error::Error::invalid_config(format!(
            "struct-of-arrays contention core unavailable: {self}"
        ))
    }
}

impl ContentionCore {
    /// Build a core from per-station views, or `None` when the views
    /// cannot be represented exactly (oversized CW/DC/stage tables), in
    /// which case the engine stays on the per-object path. See
    /// [`try_from_views`](Self::try_from_views) for the reason.
    pub(crate) fn from_views(views: &[SoaView], all_active: bool) -> Option<Self> {
        Self::try_from_views(views, all_active).ok()
    }

    /// [`from_views`](Self::from_views) surfacing *why* the views cannot
    /// be packed, so the engine can report the fallback instead of
    /// silently taking the per-object path.
    pub(crate) fn try_from_views(
        views: &[SoaView],
        all_active: bool,
    ) -> std::result::Result<Self, CoreRejection> {
        let n = views.len();
        if n == 0 {
            return Err(CoreRejection::Empty);
        }
        if n > u32::MAX as usize {
            return Err(CoreRejection::TooManyStations(n));
        }
        let mut classes: Vec<(Protocol, &SoaView, ClassTable)> = Vec::new();
        let mut core = ContentionCore {
            n,
            bcdc: Vec::with_capacity(n),
            bpc: Vec::with_capacity(n),
            stage: Vec::with_capacity(n),
            proto: Vec::with_capacity(n),
            class: Vec::with_capacity(n),
            active: vec![all_active; n],
            classes: Vec::new(),
            fast: false,
            pending: Vec::with_capacity(n),
            draws: Vec::with_capacity(n),
            redraw_zero: Vec::with_capacity(n),
            merge_buf: Vec::with_capacity(n),
        };
        for (station, v) in views.iter().enumerate() {
            if v.stages.is_empty() || v.stages.len() > 256 {
                return Err(CoreRejection::StageTableSize {
                    station,
                    stages: v.stages.len(),
                });
            }
            if let Some(s) = v.stages.iter().find(|s| s.cw == 0 || s.cw > 1 << 16) {
                return Err(CoreRejection::WindowUnrepresentable { station, cw: s.cw });
            }
            if let Some(s) = v.stages.iter().find(|s| dc16_of(s.dc).is_none()) {
                return Err(CoreRejection::DeferralUnrepresentable { station, dc: s.dc });
            }
            let st = v.state;
            if st.bc > u16::MAX as u32 {
                return Err(CoreRejection::CounterOutOfRange { station, bc: st.bc });
            }
            if st.stage as usize >= v.stages.len() {
                return Err(CoreRejection::StageOutOfRange {
                    station,
                    stage: st.stage,
                });
            }
            let dc16 = dc16_of(st.dc)
                .ok_or(CoreRejection::DeferralUnrepresentable { station, dc: st.dc })?;
            let class = match classes
                .iter()
                .position(|(p, cv, _)| *p == v.protocol && cv.stages == v.stages)
            {
                Some(c) => c,
                None => {
                    if classes.len() > u16::MAX as usize {
                        return Err(CoreRejection::TooManyClasses(classes.len()));
                    }
                    classes.push((
                        v.protocol,
                        v,
                        ClassTable {
                            proto: match v.protocol {
                                Protocol::Ieee1901 => PROTO_1901,
                                Protocol::Dcf80211 => PROTO_DCF,
                            },
                            cw: v.stages.iter().map(|s| s.cw).collect(),
                            dc16: v
                                .stages
                                .iter()
                                .map(|s| dc16_of(s.dc).expect("checked above"))
                                .collect(),
                            last: (v.stages.len() - 1) as u32,
                        },
                    ));
                    classes.len() - 1
                }
            };
            core.bcdc.push(pack(st.bc, dc16));
            core.bpc.push(st.bpc);
            core.stage.push(st.stage as u8);
            core.proto.push(classes[class].2.proto);
            core.class.push(class as u16);
        }
        core.fast = all_active && classes.len() == 1 && classes[0].2.proto == PROTO_1901;
        core.classes = classes.into_iter().map(|(_, _, t)| t).collect();
        Ok(core)
    }

    /// Current backoff counter of station `i`.
    #[inline]
    pub(crate) fn bc_of(&self, i: StationId) -> u32 {
        self.bcdc[i] & 0xFFFF
    }

    /// Mark station `i` backlogged or drained. Draining a station
    /// permanently demotes the core off the specialized all-backlogged
    /// sweep (the engine only calls this for non-saturated populations,
    /// which never qualify in the first place).
    #[inline]
    pub(crate) fn set_active(&mut self, i: StationId, active: bool) {
        self.active[i] = active;
        if !active {
            self.fast = false;
        }
    }

    /// Absorb `k` guaranteed-idle slots for station `i` (fast-forward).
    #[inline]
    pub(crate) fn consume_idle(&mut self, i: StationId, k: u32) {
        debug_assert!(k <= self.bc_of(i), "cannot skip past BC = 0");
        self.bcdc[i] -= k;
    }

    /// Collect the transmitter set: backlogged stations with `BC == 0`,
    /// in ascending station order (the engine's scan order).
    #[inline]
    pub(crate) fn contenders(&self, out: &mut Vec<StationId>) {
        for i in 0..self.n {
            if self.active[i] && self.bcdc[i] & 0xFFFF == 0 {
                out.push(i);
            }
        }
    }

    /// One idle slot: every backlogged station's BC decrements. With
    /// `TRACK`, rebuilds the contention cache in the same pass.
    #[inline]
    pub(crate) fn idle_sweep<const TRACK: bool>(
        &mut self,
        zero: &mut Vec<StationId>,
        min_bc: &mut u32,
    ) {
        for i in 0..self.n {
            if self.active[i] {
                debug_assert!(
                    self.bc_of(i) > 0,
                    "station with BC == 0 must transmit, not idle"
                );
                let word = self.bcdc[i] - 1;
                self.bcdc[i] = word;
                if TRACK {
                    let bc = word & 0xFFFF;
                    if bc == 0 {
                        zero.push(i);
                    } else {
                        *min_bc = (*min_bc).min(bc);
                    }
                }
            }
        }
    }

    /// A successful transmission by `w`: the winner restarts at stage 0,
    /// every other backlogged station senses the medium busy. With
    /// `TRACK`, rebuilds the contention cache in the same pass (fused —
    /// no separate fold sweep): stations whose BC is final fold inline,
    /// redrawn stations fold as their draw lands, and the two ascending
    /// zero sets merge at the end.
    #[inline]
    pub(crate) fn success_sweep<const TRACK: bool>(
        &mut self,
        w: StationId,
        rng: &mut SmallRng,
        zero: &mut Vec<StationId>,
        min_bc: &mut u32,
    ) {
        self.pending.clear();
        if self.fast {
            for i in 0..self.n {
                if i == w {
                    // Stage-0 re-entry: zero BPC, then the shared redraw.
                    self.bpc[i] = 0;
                    self.queue_redraw_1901(i);
                } else {
                    self.busy_1901::<TRACK>(i, zero, min_bc);
                }
            }
        } else {
            for i in 0..self.n {
                if i == w {
                    self.queue_restart(i);
                } else if self.active[i] {
                    self.busy_one::<TRACK>(i, zero, min_bc);
                }
            }
        }
        self.apply_draws::<TRACK>(rng, zero, min_bc);
    }

    /// A collision: each transmitter applies its [`SweepAction`]
    /// (parallel to `tx`, which must be ascending), every other
    /// backlogged station senses the medium busy. `TRACK` fuses the
    /// cache fold as in [`success_sweep`](Self::success_sweep).
    #[inline]
    pub(crate) fn collision_sweep<const TRACK: bool>(
        &mut self,
        tx: &[StationId],
        actions: &[SweepAction],
        rng: &mut SmallRng,
        zero: &mut Vec<StationId>,
        min_bc: &mut u32,
    ) {
        debug_assert_eq!(tx.len(), actions.len());
        self.pending.clear();
        let mut txi = 0usize;
        if self.fast {
            // Both 1901 sweep actions funnel into the BPC-driven redraw;
            // a Restart (retry-limit drop) zeroes BPC first.
            for i in 0..self.n {
                if txi < tx.len() && tx[txi] == i {
                    if actions[txi] == SweepAction::Restart {
                        self.bpc[i] = 0;
                    }
                    txi += 1;
                    self.queue_redraw_1901(i);
                } else {
                    self.busy_1901::<TRACK>(i, zero, min_bc);
                }
            }
        } else {
            for i in 0..self.n {
                if txi < tx.len() && tx[txi] == i {
                    match actions[txi] {
                        SweepAction::Restart => self.queue_restart(i),
                        SweepAction::Advance => self.queue_advance(i),
                    }
                    txi += 1;
                } else if self.active[i] {
                    self.busy_one::<TRACK>(i, zero, min_bc);
                }
            }
        }
        self.apply_draws::<TRACK>(rng, zero, min_bc);
    }

    /// Immediate stage-0 reset for one station (traffic arrival): draws
    /// right away, preserving the arrival loop's per-station draw order.
    /// Never folds — the engine rebuilds the cache after arrival resets.
    #[inline]
    pub(crate) fn reset_now(&mut self, i: StationId, rng: &mut SmallRng) {
        self.pending.clear();
        self.queue_restart(i);
        let (mut unused_zero, mut unused_min) = (Vec::new(), u32::MAX);
        self.apply_draws::<false>(rng, &mut unused_zero, &mut unused_min);
    }

    /// Synthesize the station's counter snapshot — field-for-field what
    /// the process object's `snapshot()` would report.
    pub(crate) fn snapshot(&self, i: StationId) -> BackoffSnapshot {
        let t = &self.classes[self.class[i] as usize];
        let stage = self.stage[i] as usize;
        let word = self.bcdc[i];
        let dc16 = word >> 16;
        BackoffSnapshot {
            stage,
            cw: t.cw[stage],
            bc: word & 0xFFFF,
            dc: (dc16 != DC16_DISABLED).then_some(dc16),
            bpc: if self.proto[i] == PROTO_1901 {
                self.bpc[i].saturating_sub(1)
            } else {
                self.bpc[i]
            },
        }
    }

    /// Specialized busy-slot update for the all-backlogged 1901
    /// population: one packed word in, one out (see the module docs).
    #[inline]
    fn busy_1901<const TRACK: bool>(
        &mut self,
        i: usize,
        zero: &mut Vec<StationId>,
        min_bc: &mut u32,
    ) {
        let word = self.bcdc[i];
        if word >= 0x10000 {
            // DC > 0: BC -= 1, DC -= 1 unless disabled.
            debug_assert!(word & 0xFFFF > 0, "station with BC == 0 must transmit");
            let word = word - 1 - ((((word >> 16) != DC16_DISABLED) as u32) << 16);
            self.bcdc[i] = word;
            if TRACK {
                let bc = word & 0xFFFF;
                if bc == 0 {
                    zero.push(i);
                } else {
                    *min_bc = (*min_bc).min(bc);
                }
            }
        } else {
            // Sensed busy while DC = 0: jump to the next backoff stage
            // without attempting a transmission.
            self.queue_redraw_1901(i);
        }
    }

    /// Busy-slot semantics for one non-transmitting backlogged station
    /// (generic path: mixed protocols or dynamic backlog). With `TRACK`,
    /// stations whose BC is final after this slot fold into the cache
    /// here; queued redraws fold in [`apply_draws`](Self::apply_draws)
    /// instead.
    #[inline]
    fn busy_one<const TRACK: bool>(
        &mut self,
        i: usize,
        zero: &mut Vec<StationId>,
        min_bc: &mut u32,
    ) {
        if self.proto[i] == PROTO_1901 {
            self.busy_1901::<TRACK>(i, zero, min_bc);
        } else if TRACK {
            // DCF freezes the backoff counter while the medium is busy; a
            // deferring station's BC is positive (else it would have
            // transmitted), so it folds into the minimum.
            *min_bc = (*min_bc).min(self.bcdc[i] & 0xFFFF);
        }
    }

    /// Queue a stage-0 re-entry (success / drop / head-of-line reset).
    #[inline]
    fn queue_restart(&mut self, i: usize) {
        self.bpc[i] = 0;
        if self.proto[i] == PROTO_1901 {
            self.queue_redraw_1901(i);
        } else {
            self.stage[i] = 0;
            self.pending
                .push((i as u32, self.classes[self.class[i] as usize].cw[0]));
        }
    }

    /// Queue a stage-advancing redraw (collision without a drop).
    #[inline]
    fn queue_advance(&mut self, i: usize) {
        if self.proto[i] == PROTO_1901 {
            // BPC already points past the stage that failed; the redraw
            // advances it.
            self.queue_redraw_1901(i);
        } else {
            let t = &self.classes[self.class[i] as usize];
            let next = (self.stage[i] as u32 + 1).min(t.last);
            self.bpc[i] = self.bpc[i].saturating_add(1);
            self.stage[i] = next as u8;
            self.pending.push((i as u32, t.cw[next as usize]));
        }
    }

    /// Queue the 1901 redraw: stage from the current BPC (saturated at
    /// the last), DC reloaded from the table, BPC saturating-incremented.
    /// For stage-0 re-entry (success, drop, reset) the caller zeroes BPC
    /// first.
    #[inline]
    fn queue_redraw_1901(&mut self, i: usize) {
        let t = &self.classes[self.class[i] as usize];
        let stage = self.bpc[i].min(t.last) as usize;
        self.stage[i] = stage as u8;
        // The fresh BC lands in `apply_draws`; only DC is final here.
        self.bcdc[i] = pack(self.bcdc[i] & 0xFFFF, t.dc16[stage]);
        self.bpc[i] = self.bpc[i].saturating_add(1);
        self.pending.push((i as u32, t.cw[stage]));
    }

    /// Batched RNG: pre-fill the draw buffer — one `next_u64` per queued
    /// redraw, in queue (= draw) order — then map each word exactly as
    /// the vendored `gen_range(0..cw)` does. See the module docs for why
    /// this is bit-identical to per-station `gen_range` calls.
    ///
    /// With `TRACK`, redrawn *backlogged* stations fold into the cache
    /// as their draw lands (a redrawn station may be drained — a winner
    /// whose queue emptied — and drained stations never fold). The
    /// pending queue is ascending, so the fresh zeros merge into the
    /// sweep's zeros with one ordered pass.
    #[inline]
    fn apply_draws<const TRACK: bool>(
        &mut self,
        rng: &mut SmallRng,
        zero: &mut Vec<StationId>,
        min_bc: &mut u32,
    ) {
        self.draws.clear();
        for _ in 0..self.pending.len() {
            self.draws.push(rng.next_u64());
        }
        if TRACK {
            self.redraw_zero.clear();
        }
        for (&(i, cw), &x) in self.pending.iter().zip(&self.draws) {
            let bc = (((x as u128) * (cw as u128)) >> 64) as u32;
            let i = i as usize;
            self.bcdc[i] = pack(bc, self.bcdc[i] >> 16);
            if TRACK && self.active[i] {
                if bc == 0 {
                    self.redraw_zero.push(i);
                } else {
                    *min_bc = (*min_bc).min(bc);
                }
            }
        }
        if TRACK {
            merge_zero(zero, &self.redraw_zero, &mut self.merge_buf);
        }
    }
}

/// Benchmark support: drives the contention core alone — no traffic,
/// metrics, bursting or trace plumbing — so the busy-slot sweep can be
/// microbenchmarked in isolation (`benches/busy_slot.rs` in
/// `crates/bench`). Hidden from docs; not a stable API.
#[doc(hidden)]
pub mod bench {
    use super::{ContentionCore, SweepAction};
    use plc_mac::process::BackoffProcess;
    use plc_mac::Backoff1901;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// A saturated single-class IEEE 1901 population stepped through
    /// idle/success/collision sweeps only.
    pub struct BusySweepBench {
        core: ContentionCore,
        rng: SmallRng,
        tx: Vec<usize>,
        zero: Vec<usize>,
        actions: Vec<SweepAction>,
    }

    impl BusySweepBench {
        /// Build an `n`-station saturated CA0/CA1 population.
        pub fn new(n: usize, seed: u64) -> Self {
            let mut seed_rng = SmallRng::seed_from_u64(seed);
            let ps: Vec<Backoff1901> = (0..n)
                .map(|_| Backoff1901::default_ca1(&mut seed_rng))
                .collect();
            let views: Vec<_> = ps.iter().map(|p| p.soa_view().unwrap()).collect();
            BusySweepBench {
                core: ContentionCore::from_views(&views, true).expect("representable"),
                rng: SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
                tx: Vec::with_capacity(n),
                zero: Vec::with_capacity(n),
                actions: Vec::with_capacity(n),
            }
        }

        /// Advance `slots` contention slots (idle, success or collision
        /// sweep each, with the fused cache fold), returning a checksum
        /// so the optimizer cannot elide the work. State carries across
        /// calls — repeated invocations measure the steady state.
        pub fn run(&mut self, slots: usize) -> u64 {
            let mut acc = 0u64;
            for _ in 0..slots {
                self.tx.clear();
                self.core.contenders(&mut self.tx);
                self.zero.clear();
                let mut min = u32::MAX;
                match self.tx.len() {
                    0 => self.core.idle_sweep::<true>(&mut self.zero, &mut min),
                    1 => self.core.success_sweep::<true>(
                        self.tx[0],
                        &mut self.rng,
                        &mut self.zero,
                        &mut min,
                    ),
                    _ => {
                        self.actions.clear();
                        self.actions.resize(self.tx.len(), SweepAction::Advance);
                        self.core.collision_sweep::<true>(
                            &self.tx,
                            &self.actions,
                            &mut self.rng,
                            &mut self.zero,
                            &mut min,
                        );
                    }
                }
                acc = acc
                    .wrapping_add(min as u64)
                    .wrapping_add(self.zero.len() as u64);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_mac::process::BackoffProcess;
    use plc_mac::{Backoff1901, BackoffDcf};
    use rand::SeedableRng;

    fn core_of<P: BackoffProcess>(ps: &[P]) -> ContentionCore {
        let views: Vec<SoaView> = ps.iter().map(|p| p.soa_view().unwrap()).collect();
        ContentionCore::from_views(&views, true).unwrap()
    }

    /// The fused fold must equal a from-scratch scan of the core.
    fn assert_cache(core: &ContentionCore, zero: &[usize], min: u32, slot: usize) {
        let want_zero: Vec<usize> = (0..core.n)
            .filter(|&i| core.active[i] && core.bc_of(i) == 0)
            .collect();
        let want_min = (0..core.n)
            .filter(|&i| core.active[i] && core.bc_of(i) > 0)
            .map(|i| core.bc_of(i))
            .min()
            .unwrap_or(u32::MAX);
        assert_eq!(zero, want_zero, "slot {slot} fused zero set");
        assert_eq!(min, want_min, "slot {slot} fused min BC");
    }

    /// Drive the same slot sequence through process objects and through
    /// the core with cloned RNGs, emulating the engine's loop (scan →
    /// idle / success / collision): every counter snapshot and the final
    /// RNG states must agree at every slot.
    fn mirror_slots<P: BackoffProcess>(ps: &mut [P], slots: usize, seed: u64) {
        let mut core = core_of(ps);
        let mut rng_a = SmallRng::seed_from_u64(seed);
        let mut rng_b = rng_a.clone();
        for slot in 0..slots {
            let tx: Vec<usize> = ps
                .iter()
                .enumerate()
                .filter(|(_, p)| p.wants_tx())
                .map(|(i, _)| i)
                .collect();
            match tx.len() {
                0 => {
                    for p in ps.iter_mut() {
                        p.on_idle_slot(&mut rng_a);
                    }
                    let (mut zero, mut min) = (Vec::new(), u32::MAX);
                    core.idle_sweep::<true>(&mut zero, &mut min);
                    let want_zero: Vec<usize> = ps
                        .iter()
                        .enumerate()
                        .filter(|(_, p)| p.wants_tx())
                        .map(|(i, _)| i)
                        .collect();
                    let want_min = ps
                        .iter()
                        .filter_map(|p| p.idle_skip())
                        .filter(|&b| b > 0)
                        .min()
                        .unwrap_or(u32::MAX);
                    assert_eq!(zero, want_zero, "slot {slot} zero set");
                    assert_eq!(min, want_min, "slot {slot} min BC");
                }
                1 => {
                    let w = tx[0];
                    for (i, p) in ps.iter_mut().enumerate() {
                        if i == w {
                            p.on_tx_success(&mut rng_a);
                        } else {
                            p.on_busy(&mut rng_a);
                        }
                    }
                    let (mut zero, mut min) = (Vec::new(), u32::MAX);
                    core.success_sweep::<true>(w, &mut rng_b, &mut zero, &mut min);
                    assert_cache(&core, &zero, min, slot);
                }
                _ => {
                    // Alternate drop/advance to cover both actions.
                    let actions: Vec<SweepAction> = tx
                        .iter()
                        .map(|&i| {
                            if (i + slot) % 3 == 0 {
                                SweepAction::Restart
                            } else {
                                SweepAction::Advance
                            }
                        })
                        .collect();
                    let mut txi = 0usize;
                    for (i, p) in ps.iter_mut().enumerate() {
                        if txi < tx.len() && tx[txi] == i {
                            match actions[txi] {
                                SweepAction::Restart => p.reset(&mut rng_a),
                                SweepAction::Advance => p.on_tx_failure(&mut rng_a),
                            }
                            txi += 1;
                        } else {
                            p.on_busy(&mut rng_a);
                        }
                    }
                    let (mut zero, mut min) = (Vec::new(), u32::MAX);
                    core.collision_sweep::<true>(&tx, &actions, &mut rng_b, &mut zero, &mut min);
                    assert_cache(&core, &zero, min, slot);
                }
            }
            for (i, p) in ps.iter().enumerate() {
                assert_eq!(p.snapshot(), core.snapshot(i), "slot {slot} station {i}");
                assert_eq!(p.wants_tx(), core.bc_of(i) == 0, "slot {slot} station {i}");
            }
            assert_eq!(rng_a, rng_b, "RNG streams diverged at slot {slot}");
        }
    }

    #[test]
    fn mirrors_object_transitions_1901() {
        let mut seed_rng = SmallRng::seed_from_u64(7);
        let mut ps: Vec<Backoff1901> = (0..4)
            .map(|_| Backoff1901::default_ca1(&mut seed_rng))
            .collect();
        mirror_slots(&mut ps, 500, 99);
    }

    #[test]
    fn mirrors_object_transitions_1901_generic_path() {
        // Same transitions with the specialized sweep demoted: the
        // generic (per-station checks) path must agree station for
        // station with the fast path and the objects.
        let mut seed_rng = SmallRng::seed_from_u64(7);
        let mut ps: Vec<Backoff1901> = (0..4)
            .map(|_| Backoff1901::default_ca1(&mut seed_rng))
            .collect();
        let views: Vec<SoaView> = ps.iter().map(|p| p.soa_view().unwrap()).collect();
        let mut core = ContentionCore::from_views(&views, true).unwrap();
        assert!(core.fast);
        core.fast = false;
        let mut rng_a = SmallRng::seed_from_u64(99);
        let mut rng_b = rng_a.clone();
        for slot in 0..500 {
            let tx: Vec<usize> = ps
                .iter()
                .enumerate()
                .filter(|(_, p)| p.wants_tx())
                .map(|(i, _)| i)
                .collect();
            let (mut zero, mut min) = (Vec::new(), u32::MAX);
            match tx.len() {
                0 => {
                    for p in ps.iter_mut() {
                        p.on_idle_slot(&mut rng_a);
                    }
                    core.idle_sweep::<true>(&mut zero, &mut min);
                }
                1 => {
                    for (i, p) in ps.iter_mut().enumerate() {
                        if i == tx[0] {
                            p.on_tx_success(&mut rng_a);
                        } else {
                            p.on_busy(&mut rng_a);
                        }
                    }
                    core.success_sweep::<true>(tx[0], &mut rng_b, &mut zero, &mut min);
                }
                _ => {
                    let actions = vec![SweepAction::Advance; tx.len()];
                    let mut txi = 0usize;
                    for (i, p) in ps.iter_mut().enumerate() {
                        if txi < tx.len() && tx[txi] == i {
                            p.on_tx_failure(&mut rng_a);
                            txi += 1;
                        } else {
                            p.on_busy(&mut rng_a);
                        }
                    }
                    core.collision_sweep::<true>(&tx, &actions, &mut rng_b, &mut zero, &mut min);
                }
            }
            for (i, p) in ps.iter().enumerate() {
                assert_eq!(p.snapshot(), core.snapshot(i), "slot {slot} station {i}");
            }
            assert_eq!(rng_a, rng_b, "RNG streams diverged at slot {slot}");
        }
    }

    #[test]
    fn mirrors_object_transitions_dcf() {
        let mut seed_rng = SmallRng::seed_from_u64(3);
        let mut ps: Vec<BackoffDcf> = (0..3).map(|_| BackoffDcf::classic(&mut seed_rng)).collect();
        mirror_slots(&mut ps, 400, 5);
    }

    #[test]
    fn rejects_unrepresentable_views() {
        use plc_mac::process::{SoaStage, SoaState};
        let view = |cw: u32, dc: u32, nstages: usize| SoaView {
            protocol: Protocol::Ieee1901,
            stages: vec![SoaStage { cw, dc }; nstages],
            state: SoaState {
                bc: 0,
                dc: 0,
                bpc: 1,
                stage: 0,
            },
        };
        assert!(ContentionCore::from_views(&[], true).is_none());
        assert!(ContentionCore::from_views(&[view(1 << 17, 0, 4)], true).is_none());
        assert!(ContentionCore::from_views(&[view(0, 0, 4)], true).is_none());
        assert!(ContentionCore::from_views(&[view(8, 0, 257)], true).is_none());
        // A DC too large to pack (yet not disabled) is rejected; the
        // disabled sentinel itself is representable.
        assert!(ContentionCore::from_views(&[view(8, 0xFFFF, 4)], true).is_none());
        assert!(ContentionCore::from_views(&[view(8, DC_DISABLED, 4)], true).is_some());
        assert!(ContentionCore::from_views(&[view(8, 0, 4)], true).is_some());
    }

    #[test]
    fn dedups_classes_and_detects_fast_population() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ps: Vec<Backoff1901> = (0..10)
            .map(|_| Backoff1901::default_ca1(&mut rng))
            .collect();
        let core = core_of(&ps);
        assert_eq!(core.classes.len(), 1);
        assert!(core.fast, "saturated single-class 1901 qualifies");
        let views: Vec<SoaView> = ps.iter().map(|p| p.soa_view().unwrap()).collect();
        let lazy = ContentionCore::from_views(&views, false).unwrap();
        assert!(!lazy.fast, "dynamic backlog never qualifies");
    }
}
