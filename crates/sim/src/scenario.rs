//! Topology-first scenario description — the redesigned front door.
//!
//! A [`Scenario`] pairs a [`Topology`] (where the stations are and what
//! they hear) with a protocol and CSMA parameter table, and converts
//! into the familiar [`Simulation`] builder for everything else
//! (horizon, seed, traffic, sinks, …):
//!
//! ```
//! use plc_sim::{Scenario, Topology};
//!
//! // Legacy single-domain setting, topology-first spelling:
//! let report = Scenario::ieee1901(Topology::fully_connected(3))
//!     .simulation()
//!     .horizon_us(5.0e6)
//!     .seed(7)
//!     .run();
//! assert!(report.collision_probability > 0.0);
//! ```
//!
//! `Simulation::ieee1901(n)` / `Simulation::dcf(n)` remain as sugar for
//! `Scenario::ieee1901(Topology::fully_connected(n))` — byte-identical
//! by construction (they build the same `Simulation`).

use crate::runner::Simulation;
use crate::topology::Topology;
use plc_core::config::CsmaConfig;
use plc_mac::process::Protocol;

/// What to simulate: a station layout plus the MAC protocol contending
/// on it. Convert with [`simulation`](Scenario::simulation).
#[derive(Debug, Clone)]
pub struct Scenario {
    topology: Topology,
    protocol: Protocol,
    config: CsmaConfig,
}

impl Scenario {
    /// IEEE 1901 stations (default CA1 parameter table) on `topology`.
    pub fn ieee1901(topology: Topology) -> Self {
        Scenario {
            topology,
            protocol: Protocol::Ieee1901,
            config: CsmaConfig::ieee1901_ca01(),
        }
    }

    /// 802.11 DCF stations (classic CW 16…512 table) on `topology`.
    pub fn dcf(topology: Topology) -> Self {
        Scenario {
            topology,
            protocol: Protocol::Dcf80211,
            config: CsmaConfig::dcf_like(16, 6).expect("valid"),
        }
    }

    /// Use a custom CSMA parameter table.
    pub fn config(mut self, config: CsmaConfig) -> Self {
        self.config = config;
        self
    }

    /// The scenario's topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Total station count across all cells.
    pub fn num_stations(&self) -> usize {
        self.topology.num_stations()
    }

    /// Lower into the [`Simulation`] builder for run-time knobs
    /// (horizon, seed, traffic, burst/retry policies, sinks, workers).
    pub fn simulation(&self) -> Simulation {
        let base = match self.protocol {
            Protocol::Ieee1901 => Simulation::ieee1901(self.topology.num_stations()),
            Protocol::Dcf80211 => Simulation::dcf(self.topology.num_stations()),
        };
        base.config(self.config.clone())
            .topology(self.topology.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_connected_scenario_equals_legacy_sugar() {
        let a = Scenario::ieee1901(Topology::fully_connected(3))
            .simulation()
            .horizon_us(1e6)
            .seed(42)
            .run();
        let b = Simulation::ieee1901(3).horizon_us(1e6).seed(42).run();
        assert_eq!(a, b);
    }

    #[test]
    fn dcf_scenario_equals_legacy_sugar() {
        let a = Scenario::dcf(Topology::fully_connected(2))
            .simulation()
            .horizon_us(1e6)
            .seed(5)
            .run();
        let b = Simulation::dcf(2).horizon_us(1e6).seed(5).run();
        assert_eq!(a, b);
    }

    #[test]
    fn custom_config_flows_through() {
        let s = Scenario::ieee1901(Topology::fully_connected(2))
            .config(CsmaConfig::constant_window(256).unwrap());
        let a = s.simulation().horizon_us(1e6).seed(2).run();
        let b = Simulation::ieee1901(2)
            .config(CsmaConfig::constant_window(256).unwrap())
            .horizon_us(1e6)
            .seed(2)
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn accessors() {
        let s = Scenario::ieee1901(Topology::fully_connected(4));
        assert_eq!(s.num_stations(), 4);
        assert!(s.topology().is_fully_connected());
    }
}
