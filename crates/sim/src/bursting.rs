//! MPDU bursting policies.
//!
//! After winning contention, a 1901 station may transmit a burst of up to
//! four MPDUs (§3.1 of the report). "While this number indicates the upper
//! limit, the actual number of MPDUs per burst supported by a station
//! depends on channel conditions and station capabilities" — and the
//! paper's INT6300 devices consistently used bursts of 2 in the isolated
//! experiments.
//!
//! Bursts matter for two methodology points the paper makes:
//!
//! * *bursts contend for the medium, not individual MPDUs*, so backoff and
//!   inter-frame overheads are paid per burst — MME overhead and fairness
//!   must be computed over bursts;
//! * the firmware counters are per-MPDU, so the measured `ΣCᵢ/ΣAᵢ` is an
//!   MPDU-level quantity.

use plc_core::timing::{MAX_BURST, MEASURED_BURST};
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// How many MPDUs a station sends when it wins contention.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BurstPolicy {
    /// One MPDU per win — the reference simulator's implicit behaviour.
    Single,
    /// A fixed burst size in `1..=4`. `Fixed(2)` reproduces the paper's
    /// measured INT6300 behaviour.
    Fixed(usize),
    /// Capability/channel-dependent: burst size drawn per win from the
    /// given distribution over sizes 1..=4 (probabilities normalized).
    /// Models "depends on channel conditions and station capabilities".
    Random {
        /// Relative weight of each burst size 1, 2, 3, 4.
        weights: [f64; MAX_BURST],
    },
}

impl BurstPolicy {
    /// The burst size measured on the paper's testbed devices.
    pub const INT6300: BurstPolicy = BurstPolicy::Fixed(MEASURED_BURST);

    /// Draw the burst size for one contention win, clamped by how many
    /// frames the station has queued (`available ≥ 1`).
    pub fn draw(&self, rng: &mut dyn RngCore, available: usize) -> usize {
        debug_assert!(
            available >= 1,
            "a transmitting station has at least one frame"
        );
        let want = match *self {
            BurstPolicy::Single => 1,
            BurstPolicy::Fixed(n) => {
                assert!(
                    (1..=MAX_BURST).contains(&n),
                    "fixed burst size must be 1..=4"
                );
                n
            }
            BurstPolicy::Random { weights } => {
                let total: f64 = weights.iter().sum();
                assert!(total > 0.0, "burst weights must not all be zero");
                let mut x = rng.gen::<f64>() * total;
                let mut chosen = MAX_BURST;
                for (i, &w) in weights.iter().enumerate() {
                    if x < w {
                        chosen = i + 1;
                        break;
                    }
                    x -= w;
                }
                chosen
            }
        };
        want.min(available).max(1)
    }
}

impl Default for BurstPolicy {
    /// Paper-faithful default: one MPDU per contention win.
    fn default() -> Self {
        BurstPolicy::Single
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn single_is_one() {
        let mut r = rng();
        assert_eq!(BurstPolicy::Single.draw(&mut r, 10), 1);
    }

    #[test]
    fn fixed_respects_availability() {
        let mut r = rng();
        assert_eq!(BurstPolicy::Fixed(4).draw(&mut r, 10), 4);
        assert_eq!(BurstPolicy::Fixed(4).draw(&mut r, 2), 2);
        assert_eq!(BurstPolicy::Fixed(2).draw(&mut r, 1), 1);
    }

    #[test]
    fn int6300_is_two() {
        let mut r = rng();
        assert_eq!(BurstPolicy::INT6300.draw(&mut r, 100), 2);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn fixed_zero_rejected() {
        BurstPolicy::Fixed(0).draw(&mut rng(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=4")]
    fn fixed_five_rejected() {
        BurstPolicy::Fixed(5).draw(&mut rng(), 10);
    }

    #[test]
    fn random_matches_weights_roughly() {
        let mut r = rng();
        let p = BurstPolicy::Random {
            weights: [0.0, 1.0, 0.0, 1.0],
        };
        let mut counts = [0u32; 5];
        for _ in 0..4000 {
            counts[p.draw(&mut r, 10)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert_eq!(counts[3], 0);
        let ratio = counts[2] as f64 / counts[4] as f64;
        assert!((ratio - 1.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn random_degenerate_weight_goes_last() {
        // All weight on size 1.
        let mut r = rng();
        let p = BurstPolicy::Random {
            weights: [1.0, 0.0, 0.0, 0.0],
        };
        for _ in 0..100 {
            assert_eq!(p.draw(&mut r, 4), 1);
        }
    }

    #[test]
    fn default_is_single() {
        assert_eq!(BurstPolicy::default(), BurstPolicy::Single);
    }
}
