//! Multi-priority simulation with explicit priority-resolution phases.
//!
//! The 1901 standard "specifies that only the stations belonging to the
//! highest contending priority class run the backoff process", decided in a
//! priority-resolution phase of two busy-tone slots (PRS0/PRS1) after each
//! transmission. The paper's reference simulator folds all of this into
//! `Ts`/`Tc` and simulates a single class; this engine models the
//! resolution explicitly so the CA0–CA3 interactions of Table 1 can be
//! studied (extension experiment E2):
//!
//! * every contention round starts with a PRS phase among the classes that
//!   have backlogged stations; only the winning class's stations count
//!   down their backoff during that round;
//! * losing-class stations freeze entirely (their BC/DC/BPC persist);
//! * the PRS cost (2 × 35.84 µs) is accounted separately in
//!   [`Metrics::time_prs`](crate::metrics::Metrics).
//!
//! Modelling note: because the reference `Ts`/`Tc` constants already
//! include the per-transmission overheads of the single-class testbed,
//! adding explicit PRS time makes absolute throughput here slightly lower
//! than the single-class engine's; cross-class *comparisons* are the
//! purpose of this engine.

use crate::bursting::BurstPolicy;
use crate::metrics::Metrics;
use crate::trace::{StationId, TraceEvent, TraceSink};
use crate::traffic::{TrafficModel, TrafficState};
use parking_lot::Mutex;
use plc_core::addr::Tei;
use plc_core::frame::{SelectiveAck, SofDelimiter};
use plc_core::priority::{resolve_priority, Priority};
use plc_core::timing::{MacTiming, MAX_BURST, PREAMBLE, PRS_SLOT, RIFS, SACK};
use plc_core::units::Microseconds;
use plc_mac::process::BackoffProcess;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One station of the multi-class engine.
#[derive(Debug, Clone)]
pub struct ClassStationSpec<P> {
    /// The backoff process (its config should match the class column of
    /// Table 1 — `CsmaConfig::ieee1901_for(priority)`).
    pub process: P,
    /// The station's channel-access priority.
    pub priority: Priority,
    /// Arrival model.
    pub traffic: TrafficModel,
    /// Physical blocks per MPDU (SoF bookkeeping).
    pub num_pbs: u16,
    /// TEI stamped into this station's SoF delimiters. Defaults to
    /// `Tei::station(index)`; the testbed overrides it when one physical
    /// device contributes several engine stations (data + management).
    pub tei: Option<Tei>,
    /// Destination TEI stamped into SoF delimiters. Defaults to one past
    /// the last station (the destination `D` of the paper's tests).
    pub dst: Option<Tei>,
}

impl<P> ClassStationSpec<P> {
    /// A saturated station of the given class with default wire identity.
    pub fn new(process: P, priority: Priority, traffic: TrafficModel) -> Self {
        ClassStationSpec {
            process,
            priority,
            traffic,
            num_pbs: 4,
            tei: None,
            dst: None,
        }
    }
}

struct Ctx<P> {
    process: P,
    priority: Priority,
    traffic: TrafficState,
    num_pbs: u16,
    tei: Tei,
    dst: Tei,
}

/// Configuration of the multi-class engine.
#[derive(Debug, Clone)]
pub struct MultiClassConfig {
    /// Channel timing.
    pub timing: MacTiming,
    /// Simulation horizon.
    pub horizon: Microseconds,
    /// Burst policy on wins.
    pub burst: BurstPolicy,
    /// Emit [`TraceEvent::Sof`]/[`TraceEvent::Sack`] wire events (needed by
    /// the testbed sniffer).
    pub emit_wire_events: bool,
    /// Fast-forward runs of idle slots inside a contention round (default
    /// `true`); byte-identical to per-slot stepping, see
    /// [`EngineConfig::fast_forward`](crate::engine::EngineConfig).
    pub fast_forward: bool,
}

impl Default for MultiClassConfig {
    fn default() -> Self {
        MultiClassConfig {
            timing: MacTiming::paper_default(),
            horizon: plc_core::timing::DEFAULT_SIM_TIME,
            burst: BurstPolicy::Single,
            emit_wire_events: true,
            fast_forward: true,
        }
    }
}

/// Multi-priority engine. See the [module docs](self).
pub struct MultiClassEngine<P: BackoffProcess> {
    cfg: MultiClassConfig,
    stations: Vec<Ctx<P>>,
    rng: SmallRng,
    t: Microseconds,
    metrics: Metrics,
    sinks: Vec<Arc<Mutex<dyn TraceSink + Send>>>,
    timers: Option<MultiClassTimers>,
    // Per-round scratch, reused so the hot loop stops allocating: the
    // PRS contender list, the winning-class transmitter set and the
    // per-transmitter burst draws. Taken out (`std::mem::take`) for the
    // duration of each use and put back, so capacity persists.
    contending_buf: Vec<Priority>,
    winners_buf: Vec<StationId>,
    bursts_buf: Vec<(usize, usize)>,
}

/// Hot-path span timers installed by [`MultiClassEngine::instrument`].
struct MultiClassTimers {
    round: plc_obs::SpanTimer,
    prs: plc_obs::SpanTimer,
}

impl<P: BackoffProcess> MultiClassEngine<P> {
    /// Build the engine.
    pub fn new(cfg: MultiClassConfig, stations: Vec<ClassStationSpec<P>>, seed: u64) -> Self {
        assert!(!stations.is_empty(), "need at least one station");
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = stations.len();
        let default_dst = Tei::station(stations.len() as u32);
        let stations = stations
            .into_iter()
            .enumerate()
            .map(|(i, s)| Ctx {
                process: s.process,
                priority: s.priority,
                traffic: TrafficState::new(s.traffic, &mut rng),
                num_pbs: s.num_pbs,
                tei: s.tei.unwrap_or_else(|| Tei::station(i as u32)),
                dst: s.dst.unwrap_or(default_dst),
            })
            .collect();
        MultiClassEngine {
            cfg,
            stations,
            rng,
            t: Microseconds::ZERO,
            metrics: Metrics::new(n),
            sinks: Vec::new(),
            timers: None,
            contending_buf: Vec::with_capacity(n),
            winners_buf: Vec::with_capacity(n),
            bursts_buf: Vec::with_capacity(n),
        }
    }

    /// Subscribe a trace sink.
    pub fn add_sink(&mut self, sink: Arc<Mutex<dyn TraceSink + Send>>) {
        self.sinks.push(sink);
    }

    /// Install hot-path instrumentation into `registry`: span timers
    /// `multiclass.round` (one full contention round) and
    /// `multiclass.prs` (the priority-resolution phase). Fails with
    /// [`plc_core::error::Error::Runtime`] if either name is already
    /// registered as a different metric kind.
    pub fn instrument(&mut self, registry: &plc_obs::Registry) -> plc_core::error::Result<()> {
        self.timers = Some(MultiClassTimers {
            round: registry.try_timer("multiclass.round")?,
            prs: registry.try_timer("multiclass.prs")?,
        });
        Ok(())
    }

    /// Current simulated time.
    pub fn time(&self) -> Microseconds {
        self.t
    }

    /// Metrics so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn emit(&mut self, ev: TraceEvent) {
        for sink in &self.sinks {
            sink.lock().on_event(&ev);
        }
    }

    /// The SoF delimiter station `i` puts on the wire.
    fn sof_for(&self, i: StationId, remaining: usize) -> SofDelimiter {
        let st = &self.stations[i];
        let fl = (self.cfg.timing.frame_length.as_micros() / 1.28).round();
        SofDelimiter {
            src: st.tei,
            dst: st.dst,
            priority: st.priority,
            mpdu_cnt: remaining as u8,
            num_pbs: st.num_pbs,
            fl_units: fl.min(u16::MAX as f64) as u16,
        }
    }

    fn advance_traffic(&mut self) {
        let now = self.t.as_micros();
        for st in &mut self.stations {
            if !st.traffic.is_saturated() && st.traffic.advance_to(now, &mut self.rng) {
                st.process.reset(&mut self.rng);
            }
        }
    }

    /// Run one full contention round: PRS phase, winning-class backoff
    /// until a transmission (or nothing to send → one idle slot).
    pub fn round(&mut self) {
        let _round_span = self.timers.as_ref().map(|t| t.round.start());
        self.advance_traffic();

        let prs_span = self.timers.as_ref().map(|t| t.prs.start());
        let mut contending = std::mem::take(&mut self.contending_buf);
        contending.clear();
        contending.extend(
            self.stations
                .iter()
                .filter(|s| s.traffic.has_frame())
                .map(|s| s.priority),
        );

        let resolved = resolve_priority(&contending);
        self.contending_buf = contending;
        drop(prs_span);
        let Some(res) = resolved else {
            // Nobody has traffic: medium idles one slot.
            self.t += self.cfg.timing.slot;
            self.metrics.idle_slots += 1;
            self.metrics.time_idle += self.cfg.timing.slot;
            self.emit(TraceEvent::IdleSlot { t: self.t });
            self.metrics.elapsed = self.t;
            return;
        };

        let t_prs = self.t;
        self.t += PRS_SLOT * 2.0;
        self.metrics.time_prs += PRS_SLOT * 2.0;
        self.emit(TraceEvent::PriorityResolution {
            t: t_prs,
            winner: res.winner,
        });

        // The winning class contends with slotted backoff until a
        // transmission occurs.
        loop {
            let mut winners = std::mem::take(&mut self.winners_buf);
            winners.clear();
            winners.extend(
                self.stations
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| {
                        s.priority == res.winner && s.traffic.has_frame() && s.process.wants_tx()
                    })
                    .map(|(i, _)| i),
            );

            match winners.len() {
                0 => {
                    self.winners_buf = winners;
                    // PRS-aware fast-forward: only the winning class's
                    // backlogged stations count down this round, and no
                    // arrivals/beacons/noise occur inside a round, so the
                    // next min(BC) slots over that set are guaranteed
                    // idle. Same per-slot time/metrics/event replay as
                    // the single-class engine's fast path.
                    let skip = if self.cfg.fast_forward {
                        let mut k = u32::MAX;
                        let mut ok = true;
                        for st in &self.stations {
                            if st.priority == res.winner && st.traffic.has_frame() {
                                match st.process.idle_skip() {
                                    Some(bc) if bc > 0 => k = k.min(bc),
                                    _ => {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                        }
                        (ok && k != u32::MAX).then_some(k)
                    } else {
                        None
                    };
                    match skip {
                        Some(k) => {
                            for _ in 0..k {
                                let t0 = self.t;
                                self.t += self.cfg.timing.slot;
                                self.metrics.idle_slots += 1;
                                self.metrics.time_idle += self.cfg.timing.slot;
                                self.emit(TraceEvent::IdleSlot { t: t0 });
                            }
                            for st in &mut self.stations {
                                if st.priority == res.winner && st.traffic.has_frame() {
                                    st.process.consume_idle_slots(k);
                                }
                            }
                        }
                        None => {
                            let t0 = self.t;
                            for st in &mut self.stations {
                                if st.priority == res.winner && st.traffic.has_frame() {
                                    st.process.on_idle_slot(&mut self.rng);
                                }
                            }
                            self.t += self.cfg.timing.slot;
                            self.metrics.idle_slots += 1;
                            self.metrics.time_idle += self.cfg.timing.slot;
                            self.emit(TraceEvent::IdleSlot { t: t0 });
                        }
                    }
                }
                1 => {
                    let w = winners[0];
                    self.winners_buf = winners;
                    let t0 = self.t;
                    let available = self.stations[w].traffic.backlog().min(MAX_BURST);
                    let burst = self.cfg.burst.draw(&mut self.rng, available);
                    let dur = self.cfg.timing.burst_duration(burst);
                    // SoF/SACK construction allocates (per-PB status
                    // vectors); skip it when nobody listens.
                    if self.cfg.emit_wire_events && !self.sinks.is_empty() {
                        let mpdu_stride = self.cfg.timing.frame_length + RIFS + SACK;
                        for k in 0..burst {
                            let sof_t = t0 + mpdu_stride * (k as u64);
                            let sof = self.sof_for(w, burst - 1 - k);
                            self.emit(TraceEvent::Sof {
                                t: sof_t,
                                station: w,
                                sof,
                            });
                            let ack_t = sof_t + PREAMBLE + self.cfg.timing.frame_length + RIFS;
                            let ack = SelectiveAck::all_good(
                                self.stations[w].tei,
                                self.stations[w].num_pbs,
                            );
                            self.emit(TraceEvent::Sack { t: ack_t, ack });
                        }
                    }
                    for i in 0..self.stations.len() {
                        if i == w {
                            self.stations[i].process.on_tx_success(&mut self.rng);
                            self.stations[i].traffic.consume(burst);
                        } else if self.stations[i].priority == res.winner
                            && self.stations[i].traffic.has_frame()
                        {
                            self.stations[i].process.on_busy(&mut self.rng);
                        }
                        // Losing classes freeze: no event.
                    }
                    self.t += dur;
                    self.metrics.record_success(w, t0, burst);
                    self.metrics.time_success += dur;
                    self.emit(TraceEvent::Success {
                        t: t0,
                        station: w,
                        burst,
                    });
                    break;
                }
                _ => {
                    let t0 = self.t;
                    // Full bursts go out even on collisions (see the
                    // single-class engine for why).
                    let mut bursts = std::mem::take(&mut self.bursts_buf);
                    bursts.clear();
                    bursts.extend(winners.iter().map(|&i| {
                        let available = self.stations[i].traffic.backlog().min(MAX_BURST);
                        (i, self.cfg.burst.draw(&mut self.rng, available))
                    }));
                    let max_burst = bursts.iter().map(|&(_, b)| b).max().unwrap_or(1);
                    let dur = self.cfg.timing.burst_duration(max_burst) + self.cfg.timing.tc
                        - self.cfg.timing.ts;
                    // SoF/SACK construction allocates (per-PB status
                    // vectors); skip it when nobody listens.
                    if self.cfg.emit_wire_events && !self.sinks.is_empty() {
                        // Overlapping bursts: emit slot by slot so capture
                        // timestamps stay monotone.
                        let mpdu_stride = self.cfg.timing.frame_length + RIFS + SACK;
                        for k in 0..max_burst {
                            let sof_t = t0 + mpdu_stride * (k as u64);
                            for &(i, burst) in bursts.iter().filter(|&&(_, b)| b > k) {
                                let sof = self.sof_for(i, burst - 1 - k);
                                self.emit(TraceEvent::Sof {
                                    t: sof_t,
                                    station: i,
                                    sof,
                                });
                            }
                            let ack_t = sof_t + PREAMBLE + self.cfg.timing.frame_length + RIFS;
                            for &(i, _) in bursts.iter().filter(|&&(_, b)| b > k) {
                                let ack = SelectiveAck::all_errored(
                                    self.stations[i].tei,
                                    self.stations[i].num_pbs,
                                );
                                self.emit(TraceEvent::Sack { t: ack_t, ack });
                            }
                        }
                    }
                    for i in 0..self.stations.len() {
                        if winners.contains(&i) {
                            self.stations[i].process.on_tx_failure(&mut self.rng);
                        } else if self.stations[i].priority == res.winner
                            && self.stations[i].traffic.has_frame()
                        {
                            self.stations[i].process.on_busy(&mut self.rng);
                        }
                    }
                    self.t += dur;
                    self.metrics.record_collision(&bursts);
                    self.metrics.time_collision += dur;
                    self.bursts_buf = bursts;
                    // The collision event owns its station list; only
                    // pay for the clone when somebody listens.
                    if !self.sinks.is_empty() {
                        self.emit(TraceEvent::Collision {
                            t: t0,
                            stations: winners.clone(),
                        });
                    }
                    self.winners_buf = winners;
                    break;
                }
            }
        }
        self.metrics.elapsed = self.t;
    }

    /// Run rounds until the horizon; returns the metrics.
    pub fn run(&mut self) -> &Metrics {
        while self.t <= self.cfg.horizon {
            self.round();
        }
        &self.metrics
    }

    /// Successes per priority class.
    pub fn successes_by_class(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (i, st) in self.stations.iter().enumerate() {
            out[st.priority as usize] += self.metrics.per_station[i].successes;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_core::config::CsmaConfig;
    use plc_mac::Backoff1901;
    use rand::rngs::SmallRng;

    fn spec(priority: Priority, rng: &mut SmallRng) -> ClassStationSpec<Backoff1901> {
        ClassStationSpec::new(
            Backoff1901::new(CsmaConfig::ieee1901_for(priority), rng),
            priority,
            TrafficModel::Saturated,
        )
    }

    fn cfg(horizon_us: f64) -> MultiClassConfig {
        MultiClassConfig {
            horizon: Microseconds(horizon_us),
            ..Default::default()
        }
    }

    #[test]
    fn higher_class_starves_lower_when_saturated() {
        let mut rng = SmallRng::seed_from_u64(1);
        let stations = vec![
            spec(Priority::CA1, &mut rng),
            spec(Priority::CA1, &mut rng),
            spec(Priority::CA3, &mut rng),
        ];
        let mut e = MultiClassEngine::new(cfg(5e6), stations, 1);
        e.run();
        let by_class = e.successes_by_class();
        assert!(by_class[3] > 0);
        assert_eq!(
            by_class[1], 0,
            "a saturated CA3 station never lets CA1 win priority resolution"
        );
    }

    #[test]
    fn single_class_behaves_like_plain_contention() {
        let mut rng = SmallRng::seed_from_u64(2);
        let stations = vec![spec(Priority::CA1, &mut rng), spec(Priority::CA1, &mut rng)];
        let mut e = MultiClassEngine::new(cfg(5e6), stations, 2);
        let m = e.run().clone();
        assert!(m.successes > 0);
        assert!(m.collision_events > 0);
        let p = m.collision_probability();
        assert!(
            p > 0.02 && p < 0.2,
            "two CA1 stations collide like the paper's N=2: {p}"
        );
        assert!(m.time_prs.as_micros() > 0.0);
    }

    #[test]
    fn unsaturated_high_class_shares_with_low() {
        // A CA3 station with light Poisson traffic lets a saturated CA1
        // station through most of the time.
        let mut rng = SmallRng::seed_from_u64(3);
        let stations = vec![
            ClassStationSpec::new(
                Backoff1901::new(CsmaConfig::ieee1901_ca01(), &mut rng),
                Priority::CA1,
                TrafficModel::Saturated,
            ),
            ClassStationSpec::new(
                Backoff1901::new(CsmaConfig::ieee1901_ca23(), &mut rng),
                Priority::CA3,
                TrafficModel::Poisson {
                    rate_per_us: 5e-5,
                    queue_cap: 64,
                },
            ),
        ];
        let mut e = MultiClassEngine::new(cfg(1e7), stations, 3);
        e.run();
        let by_class = e.successes_by_class();
        assert!(by_class[1] > 0, "CA1 must win rounds when CA3 is idle");
        assert!(by_class[3] > 0, "CA3 frames do go out");
        assert!(by_class[1] > by_class[3], "light CA3 load ≪ saturated CA1");
    }

    #[test]
    fn ca2_beats_ca0_and_ca1_mixture() {
        let mut rng = SmallRng::seed_from_u64(4);
        let stations = vec![
            spec(Priority::CA0, &mut rng),
            spec(Priority::CA1, &mut rng),
            spec(Priority::CA2, &mut rng),
        ];
        let mut e = MultiClassEngine::new(cfg(3e6), stations, 4);
        e.run();
        let by_class = e.successes_by_class();
        assert!(by_class[2] > 0);
        assert_eq!(by_class[0] + by_class[1], 0);
    }

    #[test]
    fn metrics_time_accounting_is_complete() {
        let mut rng = SmallRng::seed_from_u64(5);
        let stations = vec![spec(Priority::CA1, &mut rng), spec(Priority::CA1, &mut rng)];
        let mut e = MultiClassEngine::new(cfg(2e6), stations, 5);
        let m = e.run().clone();
        let accounted = m.time_idle + m.time_success + m.time_collision + m.time_prs;
        assert!(
            (accounted.as_micros() - m.elapsed.as_micros()).abs() < 1e-6,
            "all elapsed time must be attributed"
        );
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut rng = SmallRng::seed_from_u64(6);
            let stations = vec![spec(Priority::CA2, &mut rng), spec(Priority::CA1, &mut rng)];
            let mut e = MultiClassEngine::new(cfg(1e6), stations, 6);
            e.run().clone()
        };
        assert_eq!(run(), run());
    }
}
