//! Simulation trace events and sinks.
//!
//! The engine publishes a stream of MAC-level events — idle slots, SoF
//! delimiters (one per MPDU, including collided ones, since 1901 delimiters
//! are robustly modulated), selective ACKs, transmission outcomes. Sinks
//! subscribe to this stream:
//!
//! * the testbed emulation's *sniffer mode* is a sink that records SoF
//!   delimiters exactly as `faifa` would;
//! * [`SuccessTrace`] records the sequence of winning stations, which is
//!   the input to the fairness analysis;
//! * [`VecTraceSink`] records everything, for examples and debugging
//!   (Figure 1's two-station table is generated from it).

use plc_core::frame::{SelectiveAck, SofDelimiter};
use plc_core::priority::Priority;
use plc_core::units::Microseconds;
use plc_mac::process::BackoffSnapshot;
use serde::{Deserialize, Serialize};

/// Index of a station within a simulation (0-based).
pub type StationId = usize;

/// One MAC-level event on the simulated channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The medium stayed idle for one contention slot.
    IdleSlot {
        /// Slot start time.
        t: Microseconds,
    },
    /// The central coordinator's beacon occupied the medium. HomePlug AV
    /// schedules a beacon every beacon period (two mains cycles); the
    /// paper's §3.3 notes faifa captures "data frames, beacons,
    /// management".
    Beacon {
        /// Beacon transmission time.
        t: Microseconds,
    },
    /// A priority-resolution phase completed (multi-class engine only).
    PriorityResolution {
        /// Phase start time.
        t: Microseconds,
        /// The class that won the two PRS slots.
        winner: Priority,
    },
    /// A start-of-frame delimiter went on the wire. Emitted for *every*
    /// MPDU — including each MPDU of a burst and the delimiters of
    /// colliding stations (their preambles are decodable).
    Sof {
        /// Delimiter transmission time.
        t: Microseconds,
        /// Transmitting station.
        station: StationId,
        /// The delimiter fields, as a sniffer would capture them.
        sof: SofDelimiter,
    },
    /// A selective acknowledgment went on the wire.
    Sack {
        /// ACK transmission time.
        t: Microseconds,
        /// The acknowledgment. For collided MPDUs every PB is flagged
        /// errored but the ACK still exists — the 1901 quirk behind the
        /// paper's `ΣAᵢ` growing with N.
        ack: SelectiveAck,
    },
    /// A contention round ended with a successful transmission.
    Success {
        /// Transmission start time.
        t: Microseconds,
        /// The winning station.
        station: StationId,
        /// Number of MPDUs in the transmitted burst.
        burst: usize,
    },
    /// A contention round ended with a collision.
    Collision {
        /// Collision start time.
        t: Microseconds,
        /// All stations whose backoff expired in the same slot.
        stations: Vec<StationId>,
    },
    /// A station exhausted its retry limit and dropped the frame.
    FrameDropped {
        /// Drop time.
        t: Microseconds,
        /// The station that discarded its head-of-line frame.
        station: StationId,
    },
    /// Per-station counter snapshot, emitted when snapshot tracing is
    /// enabled (used to regenerate Figure 1).
    Snapshot {
        /// Snapshot time.
        t: Microseconds,
        /// The station.
        station: StationId,
        /// Counter values after the event at `t` was processed.
        snap: BackoffSnapshot,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn time(&self) -> Microseconds {
        match self {
            TraceEvent::IdleSlot { t }
            | TraceEvent::Beacon { t }
            | TraceEvent::PriorityResolution { t, .. }
            | TraceEvent::Sof { t, .. }
            | TraceEvent::Sack { t, .. }
            | TraceEvent::Success { t, .. }
            | TraceEvent::Collision { t, .. }
            | TraceEvent::FrameDropped { t, .. }
            | TraceEvent::Snapshot { t, .. } => *t,
        }
    }
}

/// A consumer of trace events. Engines call `on_event` synchronously, in
/// simulated-time order.
pub trait TraceSink {
    /// Handle one event.
    fn on_event(&mut self, ev: &TraceEvent);
}

/// Records every event. Memory grows with the trace; prefer dedicated sinks
/// for long runs.
#[derive(Debug, Default)]
pub struct VecTraceSink {
    /// The recorded events, in order.
    pub events: Vec<TraceEvent>,
}

impl VecTraceSink {
    /// Empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecTraceSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.events.push(ev.clone());
    }
}

/// Records only the ordered sequence of successful transmitters — the
/// "trace of the sources for all the transmitted data frames" the paper
/// uses for its fairness study — along with their timestamps (for delay
/// distributions).
#[derive(Debug, Default)]
pub struct SuccessTrace {
    /// Winning station per success, in time order.
    pub winners: Vec<StationId>,
    /// Transmission start time of each success (µs), index-aligned with
    /// `winners`.
    pub times_us: Vec<f64>,
}

impl SuccessTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inter-success gaps (µs) of one station.
    pub fn intersuccess_times_us(&self, station: StationId) -> Vec<f64> {
        let mut out = Vec::new();
        let mut last: Option<f64> = None;
        for (&w, &t) in self.winners.iter().zip(&self.times_us) {
            if w == station {
                if let Some(prev) = last {
                    out.push(t - prev);
                }
                last = Some(t);
            }
        }
        out
    }
}

impl TraceSink for SuccessTrace {
    fn on_event(&mut self, ev: &TraceEvent) {
        if let TraceEvent::Success { station, t, .. } = ev {
            self.winners.push(*station);
            self.times_us.push(t.as_micros());
        }
    }
}

/// Counts events by kind without storing them — cheap sanity checks on
/// long runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Idle slots seen.
    pub idle_slots: u64,
    /// SoF delimiters seen.
    pub sofs: u64,
    /// SACKs seen.
    pub sacks: u64,
    /// Successful rounds.
    pub successes: u64,
    /// Collision rounds.
    pub collisions: u64,
    /// Dropped frames.
    pub drops: u64,
}

impl TraceSink for CountingSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::IdleSlot { .. } => self.idle_slots += 1,
            TraceEvent::Sof { .. } => self.sofs += 1,
            TraceEvent::Sack { .. } => self.sacks += 1,
            TraceEvent::Success { .. } => self.successes += 1,
            TraceEvent::Collision { .. } => self.collisions += 1,
            TraceEvent::FrameDropped { .. } => self.drops += 1,
            TraceEvent::Beacon { .. }
            | TraceEvent::PriorityResolution { .. }
            | TraceEvent::Snapshot { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_core::addr::Tei;

    fn sof_at(t: f64) -> TraceEvent {
        TraceEvent::Sof {
            t: Microseconds(t),
            station: 0,
            sof: SofDelimiter {
                src: Tei(1),
                dst: Tei(2),
                priority: Priority::CA1,
                mpdu_cnt: 0,
                num_pbs: 4,
                fl_units: 1602,
            },
        }
    }

    #[test]
    fn event_time_extraction() {
        assert_eq!(
            TraceEvent::IdleSlot {
                t: Microseconds(5.0)
            }
            .time(),
            Microseconds(5.0)
        );
        assert_eq!(sof_at(9.0).time(), Microseconds(9.0));
        let c = TraceEvent::Collision {
            t: Microseconds(1.0),
            stations: vec![0, 1],
        };
        assert_eq!(c.time(), Microseconds(1.0));
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut sink = VecTraceSink::new();
        sink.on_event(&TraceEvent::IdleSlot {
            t: Microseconds(0.0),
        });
        sink.on_event(&sof_at(35.84));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[1].time(), Microseconds(35.84));
    }

    #[test]
    fn success_trace_filters() {
        let mut tr = SuccessTrace::new();
        tr.on_event(&TraceEvent::IdleSlot {
            t: Microseconds(0.0),
        });
        tr.on_event(&TraceEvent::Success {
            t: Microseconds(1.0),
            station: 2,
            burst: 1,
        });
        tr.on_event(&TraceEvent::Collision {
            t: Microseconds(2.0),
            stations: vec![0, 1],
        });
        tr.on_event(&TraceEvent::Success {
            t: Microseconds(3.0),
            station: 0,
            burst: 2,
        });
        assert_eq!(tr.winners, vec![2, 0]);
    }

    #[test]
    fn counting_sink_counts() {
        let mut c = CountingSink::default();
        c.on_event(&TraceEvent::IdleSlot {
            t: Microseconds(0.0),
        });
        c.on_event(&TraceEvent::IdleSlot {
            t: Microseconds(1.0),
        });
        c.on_event(&sof_at(2.0));
        c.on_event(&TraceEvent::Success {
            t: Microseconds(2.0),
            station: 0,
            burst: 1,
        });
        c.on_event(&TraceEvent::FrameDropped {
            t: Microseconds(3.0),
            station: 0,
        });
        assert_eq!(c.idle_slots, 2);
        assert_eq!(c.sofs, 1);
        assert_eq!(c.successes, 1);
        assert_eq!(c.drops, 1);
        assert_eq!(c.collisions, 0);
    }
}
