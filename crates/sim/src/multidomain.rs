//! Multi-domain simulation: several coordinated PLC networks on one wire.
//!
//! The legacy engine models one contention domain — every station hears
//! every station. This module runs a [`Topology`] of *cells* (logical
//! networks) that may partially hear each other:
//!
//! * **Exposed coupling** (cross-cell link above the sense threshold):
//!   a cell defers while a sensed foreign transmission occupies the wire
//!   — carrier sense works across network boundaries.
//! * **Hidden interference** (between the interference and sense
//!   thresholds): the foreign transmission is *not* sensed, but any of
//!   our transmissions overlapping it are jammed — every PB errors, the
//!   selective ACK flags them all, and the MPDUs queue for selective
//!   retransmission. This is the classic hidden-terminal degradation.
//! * **Isolation** (below both): full spatial reuse.
//!
//! # Execution plan
//!
//! Cells are grouped into connected components of the coupling graph
//! ([`Topology::components`]); components are independent simulations
//! and are sharded across [`BatchRunner`] workers
//! ([`Simulation::domain_workers`]). Per-cell seeds derive from the
//! master seed and the *global* cell index, so results are byte-identical
//! for any worker count.
//!
//! * An **isolated cell** (single-cell component, uniform station
//!   timing) runs on the unmodified single-domain [`SlottedEngine`] —
//!   full struct-of-arrays + fast-forward speed.
//! * A **coupled component** runs on an event-driven coordinator: each
//!   cell keeps its own clock, per-object backoff processes, RNG stream
//!   and metrics, and the cell with the earliest next event (ties to the
//!   lowest cell index) executes one step at a time. The coordinator
//!   deliberately per-slot-steps (no idle fast-forward): a jump could
//!   skip straight over a foreign transmission that should have been
//!   sensed.
//!
//! # Sensing and jamming semantics
//!
//! Sensing is *cell-coherent*: a cell defers as a unit when any member
//! could sense a foreign transmission (one `on_busy` sweep over its
//! backlogged stations per sensed transmission, then the cell's clock
//! jumps to the transmission's end). Sensing uses an open interval at
//! the transmit instant — two transmissions starting in the same slot do
//! not sense each other, they overlap (and mutually jam when in
//! interference range), exactly the cross-cell collision a real hidden /
//! exposed layout produces. A foreign transmission that both starts and
//! ends while a cell is occupied is never sensed (the cell was
//! transmitting, not listening).
//!
//! A success is **jammed** when an impulse-noise burst covers its start
//! or any foreign transmission overlapping `[start, end)` comes from a
//! station in interference range of the winner. Jamming reuses the
//! engine's impulse-noise semantics: every PB of every MPDU errors
//! without consuming channel-RNG draws.
//!
//! Successes commit their outcome (PB errors, retransmission queues,
//! metrics, wire events) when the transmission *ends* — only then are
//! all overlapping foreign transmissions known. The winner's backoff
//! sweep still happens at transmission start, matching the slot-event
//! contract. Intra-cell collisions resolve entirely at start (their
//! outcome cannot be changed by interference) but still radiate a
//! transmission record that neighbours sense or are jammed by.
//!
//! # Traces
//!
//! With sinks attached, each cell buffers its events and the buffers are
//! flushed to the user's sinks in global cell order after the run —
//! deterministic for any `domain_workers` count. `station` fields carry
//! *global* station ids; TEIs inside SoF/SACK payloads stay cell-local,
//! mirroring the standard's per-AVLN TEI assignment.

use crate::batch::BatchRunner;
use crate::engine::{EngineConfig, SlottedEngine, StationSpec};
use crate::metrics::Metrics;
use crate::runner::{SimReport, Simulation};
use crate::topology::Topology;
use crate::trace::{TraceEvent, VecTraceSink};
use crate::traffic::TrafficState;
use parking_lot::Mutex;
use plc_core::addr::Tei;
use plc_core::error::{Error, Result};
use plc_core::frame::{SelectiveAck, SofDelimiter};
use plc_core::priority::Priority;
use plc_core::timing::{MacTiming, MAX_BURST, PREAMBLE, RIFS, SACK};
use plc_core::units::Microseconds;
use plc_mac::process::BackoffProcess;
use plc_mac::process::Protocol;
use plc_mac::retry::RetryState;
use plc_mac::{AnyBackoff, Backoff1901, BackoffDcf};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// Report of a multi-domain run: the merged network-wide view plus the
/// per-cell breakdown and the cross-domain interaction counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiDomainReport {
    /// Merged report over all cells: per-station metrics live at their
    /// global ids, counters are summed and `elapsed` is the maximum over
    /// cells, so `norm_throughput` measures aggregate spatial reuse (it
    /// exceeds 1.0 when isolated cells transmit concurrently).
    /// Normalization uses the simulation's configured frame length.
    pub report: SimReport,
    /// One report per cell, in cell order, normalized by the cell's own
    /// (possibly link-derived) frame length.
    pub cells: Vec<SimReport>,
    /// Successful contention wins destroyed by a hidden/exposed foreign
    /// transmission overlapping them (impulse-noise jams not included).
    pub jammed_tx: u64,
    /// Foreign transmissions that cells sensed and deferred to (one per
    /// cell×transmission pair).
    pub sensed_defers: u64,
}

/// Per-cell result carried from a component run back to the merge step.
struct CellOut {
    cell: usize,
    members: Vec<usize>,
    metrics: Metrics,
    frame_length: Microseconds,
    events: Vec<TraceEvent>,
}

struct ComponentOut {
    cells: Vec<CellOut>,
    jammed_tx: u64,
    sensed_defers: u64,
}

fn reject(what: &str) -> Error {
    Error::invalid_config(format!(
        "the multi-domain engine does not support {what}; \
         use a fully-connected topology for this configuration"
    ))
}

/// Seed of cell `c`: the master seed itself for a single-cell topology
/// (so single-cell runs reduce to the legacy engine with the same seed),
/// else a SplitMix64 derivation from the master and the *global* cell
/// index — independent of component grouping and worker count.
fn cell_seed(sim: &Simulation, topo: &Topology, c: usize) -> u64 {
    if topo.num_cells() == 1 {
        sim.seed
    } else {
        crate::sweep::derive_seed(sim.seed, c as u64, 1)
    }
}

/// Run `sim` over a spatial (non-fully-connected) topology.
pub(crate) fn run_spatial(sim: &Simulation, topo: &Topology) -> Result<MultiDomainReport> {
    debug_assert!(
        !topo.is_fully_connected(),
        "trivial topologies take the legacy path"
    );
    if sim.beacons.is_some() {
        return Err(reject("beacon schedules"));
    }
    if sim.snapshots {
        return Err(reject("per-step snapshots"));
    }
    if !sim.observers.is_empty() {
        return Err(reject("periodic observers"));
    }
    if !(0.0..1.0).contains(&sim.pb_error_prob) {
        return Err(Error::invalid_config(
            "PB error probability must be in [0, 1)",
        ));
    }
    if !sim.timing.is_valid() {
        return Err(Error::invalid_config("invalid MacTiming"));
    }
    for w in sim.noise.windows(2) {
        if w[1].start_us < w[0].end_us() {
            return Err(Error::invalid_config(format!(
                "noise bursts overlap: [{}, {}) and [{}, {}) µs",
                w[0].start_us,
                w[0].end_us(),
                w[1].start_us,
                w[1].end_us()
            )));
        }
    }

    let components = topo.components();
    let num_components = components.len() as u64;
    let emitting = !sim.sinks.is_empty();
    let outs: Vec<Result<ComponentOut>> = BatchRunner::new()
        .workers(sim.domain_workers)
        .run(components, |_, comp, _| {
            run_component(sim, topo, &comp, emitting)
        });

    let mut global = Metrics::new(topo.num_stations());
    let mut cell_reports: Vec<Option<SimReport>> = vec![None; topo.num_cells()];
    let mut buffered: Vec<(usize, Vec<TraceEvent>)> = Vec::new();
    let mut jammed_tx = 0u64;
    let mut sensed_defers = 0u64;
    for out in outs {
        let out = out?;
        jammed_tx += out.jammed_tx;
        sensed_defers += out.sensed_defers;
        for c in out.cells {
            global.absorb_cell(&c.metrics, &c.members);
            cell_reports[c.cell] = Some(SimReport::from_metrics(c.metrics, c.frame_length));
            if emitting {
                buffered.push((c.cell, c.events));
            }
        }
    }
    if emitting {
        // Global cell order pins the flush for any worker count.
        buffered.sort_by_key(|&(c, _)| c);
        for (_, events) in &buffered {
            for ev in events {
                for sink in &sim.sinks {
                    sink.lock().on_event(ev);
                }
            }
        }
    }
    if let Some(reg) = &sim.registry {
        reg.try_counter("multidomain.cells")?
            .add(topo.num_cells() as u64);
        reg.try_counter("multidomain.components")?
            .add(num_components);
        reg.try_counter("multidomain.jammed_tx")?.add(jammed_tx);
        reg.try_counter("multidomain.sensed_defers")?
            .add(sensed_defers);
    }
    Ok(MultiDomainReport {
        report: SimReport::from_metrics(global, sim.timing.frame_length),
        cells: cell_reports
            .into_iter()
            .map(|r| r.expect("every cell belongs to exactly one component"))
            .collect(),
        jammed_tx,
        sensed_defers,
    })
}

fn run_component(
    sim: &Simulation,
    topo: &Topology,
    comp: &[usize],
    emitting: bool,
) -> Result<ComponentOut> {
    if comp.len() == 1 {
        let members = topo.cell_members(comp[0]);
        let derived: Vec<Option<MacTiming>> =
            members.iter().map(|&i| topo.station_timing(i)).collect();
        if derived.windows(2).all(|w| w[0] == w[1]) {
            return run_isolated(sim, topo, comp[0], derived[0], emitting);
        }
    }
    Coordinator::new(sim, topo, comp, emitting)?.run()
}

/// A single uncoupled cell with uniform timing: exactly the legacy
/// engine, at full struct-of-arrays + fast-forward speed.
fn run_isolated(
    sim: &Simulation,
    topo: &Topology,
    cell: usize,
    derived: Option<MacTiming>,
    emitting: bool,
) -> Result<ComponentOut> {
    let members = topo.cell_members(cell);
    let seed = cell_seed(sim, topo, cell);
    let mut proc_rng =
        SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
    let stations: Vec<StationSpec<AnyBackoff>> = members
        .iter()
        .map(|_| {
            let process: AnyBackoff = match sim.protocol {
                Protocol::Ieee1901 => Backoff1901::new(sim.config.clone(), &mut proc_rng).into(),
                Protocol::Dcf80211 => BackoffDcf::new(sim.config.clone(), &mut proc_rng).into(),
            };
            StationSpec {
                traffic: sim.traffic,
                ..StationSpec::saturated(process)
            }
        })
        .collect();
    let timing = derived.unwrap_or(sim.timing);
    let cfg = EngineConfig {
        timing,
        horizon: sim.horizon,
        burst: sim.burst,
        retry: sim.retry,
        pb_error_prob: sim.pb_error_prob,
        emit_snapshots: false,
        emit_wire_events: true,
        beacons: None,
        noise: sim.noise.clone(),
        fast_forward: sim.fast_forward,
        soa: sim.soa,
        cancel: sim.cancel.clone(),
    };
    let mut engine = SlottedEngine::try_new(cfg, stations, seed)?;
    if let Some(reg) = &sim.registry {
        engine.instrument(reg)?;
    }
    let buffer = emitting.then(|| Arc::new(Mutex::new(VecTraceSink::new())));
    if let Some(buf) = &buffer {
        engine.add_sink(buf.clone());
    }
    engine.run();
    let metrics = engine.metrics().clone();
    drop(engine);
    let mut events = buffer
        .map(|buf| std::mem::take(&mut buf.lock().events))
        .unwrap_or_default();
    remap_station_ids(&mut events, &members);
    Ok(ComponentOut {
        cells: vec![CellOut {
            cell,
            members,
            metrics,
            frame_length: timing.frame_length,
            events,
        }],
        jammed_tx: 0,
        sensed_defers: 0,
    })
}

/// Rewrite cell-local `station` ids to global ids. TEIs inside the
/// SoF/SACK payloads are left cell-local (per-AVLN semantics).
fn remap_station_ids(events: &mut [TraceEvent], members: &[usize]) {
    for ev in events {
        match ev {
            TraceEvent::Sof { station, .. }
            | TraceEvent::Success { station, .. }
            | TraceEvent::FrameDropped { station, .. }
            | TraceEvent::Snapshot { station, .. } => *station = members[*station],
            TraceEvent::Collision { stations, .. } => {
                for s in stations {
                    *s = members[*s];
                }
            }
            TraceEvent::IdleSlot { .. }
            | TraceEvent::Beacon { .. }
            | TraceEvent::PriorityResolution { .. }
            | TraceEvent::Sack { .. } => {}
        }
    }
}

struct CoStation {
    process: AnyBackoff,
    traffic: TrafficState,
    retry: RetryState,
    /// PB counts of partially-errored MPDUs awaiting selective
    /// retransmission (FIFO, serviced before fresh frames) — the legacy
    /// engine's `retx` queue.
    retx: VecDeque<u16>,
    num_pbs: u16,
    /// This station's transmit timing (link-derived or the simulation's).
    timing: MacTiming,
    /// Global station id.
    global: usize,
}

impl CoStation {
    fn backlogged(&self) -> bool {
        self.traffic.has_frame() || !self.retx.is_empty()
    }
}

/// One in-flight successful transmission, committed at `end`.
struct PendingTx {
    winner: usize,
    burst: usize,
    start: f64,
    end: f64,
}

/// A transmission on the wire, visible to other cells for sensing and
/// jamming. Records are appended in start-time order (the scheduler
/// processes cells in global time order).
struct TxRecord {
    /// Component-local index of the transmitting cell.
    cell: usize,
    start: f64,
    end: f64,
    /// Global ids of the transmitting stations (1 for a success, ≥ 2 for
    /// an intra-cell collision).
    txs: Vec<usize>,
    /// Which component-local cells have already deferred to this record.
    sensed: Vec<bool>,
}

struct CoCell {
    /// Global cell index.
    id: usize,
    members: Vec<usize>,
    stations: Vec<CoStation>,
    rng: SmallRng,
    /// Local clock (µs).
    t: f64,
    slot: f64,
    metrics: Metrics,
    events: Vec<TraceEvent>,
    pending: Option<PendingTx>,
    /// Scratch: contenders of the current slot (local ids, ascending).
    tx_buf: Vec<usize>,
    frame_length: Microseconds,
}

impl CoCell {
    fn next_time(&self) -> f64 {
        self.pending.as_ref().map_or(self.t, |p| p.end)
    }
}

struct Coordinator<'a> {
    sim: &'a Simulation,
    topo: &'a Topology,
    cells: Vec<CoCell>,
    /// Cell-level sense coupling, component-local indices.
    sense_cc: Vec<Vec<bool>>,
    records: Vec<TxRecord>,
    /// Records before this index can never be sensed or jam again.
    alive_from: usize,
    horizon: f64,
    emitting: bool,
    jammed_tx: u64,
    sensed_defers: u64,
}

impl<'a> Coordinator<'a> {
    fn new(
        sim: &'a Simulation,
        topo: &'a Topology,
        comp: &[usize],
        emitting: bool,
    ) -> Result<Self> {
        let mut cells = Vec::with_capacity(comp.len());
        for &c in comp {
            let members = topo.cell_members(c);
            let seed = cell_seed(sim, topo, c);
            // Mirror the legacy builder's seeding exactly: processes from
            // the golden-ratio-mixed stream, traffic from the raw seed.
            let mut proc_rng =
                SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut stations = Vec::with_capacity(members.len());
            for &g in &members {
                let process: AnyBackoff = match sim.protocol {
                    Protocol::Ieee1901 => {
                        Backoff1901::new(sim.config.clone(), &mut proc_rng).into()
                    }
                    Protocol::Dcf80211 => BackoffDcf::new(sim.config.clone(), &mut proc_rng).into(),
                };
                let timing = topo.station_timing(g).unwrap_or(sim.timing);
                if !timing.is_valid() {
                    return Err(Error::invalid_config(format!(
                        "station {g}'s link-derived timing is invalid"
                    )));
                }
                stations.push(CoStation {
                    process,
                    traffic: TrafficState::new(sim.traffic, &mut rng),
                    retry: RetryState::new(),
                    retx: VecDeque::new(),
                    num_pbs: 4,
                    timing,
                    global: g,
                });
            }
            let slot = stations[0].timing.slot.as_micros();
            let frame_length = stations[0].timing.frame_length;
            let n_local = members.len();
            cells.push(CoCell {
                id: c,
                members,
                stations,
                rng,
                t: 0.0,
                slot,
                metrics: Metrics::new(n_local),
                events: Vec::new(),
                pending: None,
                tx_buf: Vec::new(),
                frame_length,
            });
        }
        let k = comp.len();
        let mut sense_cc = vec![vec![false; k]; k];
        for a in 0..k {
            for b in 0..k {
                if a != b {
                    sense_cc[a][b] = cells[a]
                        .members
                        .iter()
                        .any(|&i| cells[b].members.iter().any(|&j| topo.hears(i, j)));
                }
            }
        }
        Ok(Coordinator {
            sim,
            topo,
            cells,
            sense_cc,
            records: Vec::new(),
            alive_from: 0,
            horizon: sim.horizon.as_micros(),
            emitting,
            jammed_tx: 0,
            sensed_defers: 0,
        })
    }

    fn run(mut self) -> Result<ComponentOut> {
        loop {
            // The cell with the earliest next event acts; ties go to the
            // lowest component-local index. Cells past the horizon with
            // nothing in flight are done.
            let mut best: Option<(f64, usize)> = None;
            for (ci, cell) in self.cells.iter().enumerate() {
                if cell.pending.is_none() && cell.t > self.horizon {
                    continue;
                }
                let nt = cell.next_time();
                if best.is_none_or(|(bt, _)| nt < bt) {
                    best = Some((nt, ci));
                }
            }
            let Some((_, ci)) = best else { break };
            if self.cells[ci].pending.is_some() {
                self.commit(ci);
            } else {
                self.free_step(ci);
            }
            self.prune_records();
        }
        let out_cells = self
            .cells
            .into_iter()
            .map(|c| CellOut {
                cell: c.id,
                members: c.members,
                metrics: c.metrics,
                frame_length: c.frame_length,
                events: c.events,
            })
            .collect();
        Ok(ComponentOut {
            cells: out_cells,
            jammed_tx: self.jammed_tx,
            sensed_defers: self.sensed_defers,
        })
    }

    /// Drop records no cell can ever sense or be jammed by again.
    fn prune_records(&mut self) {
        let low = self
            .cells
            .iter()
            .map(|c| c.pending.as_ref().map_or(c.t, |p| p.start))
            .fold(f64::INFINITY, f64::min);
        while self
            .records
            .get(self.alive_from)
            .is_some_and(|r| r.end <= low)
        {
            self.alive_from += 1;
        }
    }

    /// Is an impulse-noise burst active at `t`? The simulation's noise
    /// schedule is global (mains-borne noise hits the whole wire).
    fn noise_active(&self, t: f64) -> bool {
        let idx = self.sim.noise.partition_point(|b| b.start_us <= t);
        idx > 0 && self.sim.noise[idx - 1].contains(t)
    }

    /// One action for a cell with nothing in flight: defer to a sensed
    /// foreign transmission, or run one contention slot.
    fn free_step(&mut self, ci: usize) {
        let t = self.cells[ci].t;

        // Sense the earliest active foreign transmission this cell has
        // not deferred to yet. Strictly-earlier start: simultaneous
        // starts overlap instead of sensing each other.
        let hit = self.records[self.alive_from..].iter().position(|r| {
            r.cell != ci && r.start < t && r.end > t && !r.sensed[ci] && self.sense_cc[ci][r.cell]
        });
        if let Some(off) = hit {
            let r = &mut self.records[self.alive_from + off];
            r.sensed[ci] = true;
            let end = r.end;
            self.sensed_defers += 1;
            let cell = &mut self.cells[ci];
            for s in cell.stations.iter_mut() {
                // Deferring stations (BC > 0) apply the busy-slot rule; a
                // station that already counted down to 0 holds its pending
                // transmission until the medium frees (`on_busy` is only
                // legal mid-countdown).
                if s.backlogged() && !s.process.wants_tx() {
                    s.process.on_busy(&mut cell.rng);
                }
            }
            cell.t = end;
            cell.metrics.elapsed = Microseconds(cell.t);
            return;
        }

        let cell = &mut self.cells[ci];
        // Traffic arrivals up to now; newly-backlogged stations start a
        // fresh stage-0 backoff (the legacy engine's per-step arrivals).
        for s in cell.stations.iter_mut() {
            if !s.traffic.is_saturated() && s.traffic.advance_to(t, &mut cell.rng) {
                s.process.reset(&mut cell.rng);
            }
        }

        cell.tx_buf.clear();
        for (i, s) in cell.stations.iter().enumerate() {
            if s.backlogged() && s.process.wants_tx() {
                cell.tx_buf.push(i);
            }
        }
        match cell.tx_buf.len() {
            0 => {
                for s in cell.stations.iter_mut() {
                    if s.backlogged() {
                        s.process.on_idle_slot(&mut cell.rng);
                    }
                }
                if self.emitting {
                    cell.events
                        .push(TraceEvent::IdleSlot { t: Microseconds(t) });
                }
                cell.t += cell.slot;
                cell.metrics.idle_slots += 1;
                cell.metrics.time_idle += Microseconds(cell.slot);
                cell.metrics.elapsed = Microseconds(cell.t);
            }
            1 => self.start_success(ci),
            _ => self.intra_cell_collision(ci),
        }
    }

    /// A single contender wins its cell: sweep the backoff processes now
    /// (slot-event contract), put the transmission on the wire, and
    /// defer the channel outcome to [`commit`](Self::commit).
    fn start_success(&mut self, ci: usize) {
        let cell = &mut self.cells[ci];
        let t = cell.t;
        let w = cell.tx_buf[0];
        let available = cell.stations[w]
            .retx
            .len()
            .saturating_add(cell.stations[w].traffic.backlog())
            .min(MAX_BURST);
        let burst = self.sim.burst.draw(&mut cell.rng, available);
        let dur = cell.stations[w].timing.burst_duration(burst).as_micros();
        for (i, s) in cell.stations.iter_mut().enumerate() {
            if i == w {
                s.process.on_tx_success(&mut cell.rng);
            } else if s.backlogged() {
                s.process.on_busy(&mut cell.rng);
            }
        }
        cell.pending = Some(PendingTx {
            winner: w,
            burst,
            start: t,
            end: t + dur,
        });
        let n_cells = self.sense_cc.len();
        self.records.push(TxRecord {
            cell: ci,
            start: t,
            end: t + dur,
            txs: vec![self.cells[ci].stations[w].global],
            sensed: {
                let mut s = vec![false; n_cells];
                s[ci] = true;
                s
            },
        });
    }

    /// The winner's transmission ended: now every overlapping foreign
    /// transmission is known, so resolve the channel outcome.
    fn commit(&mut self, ci: usize) {
        let p = self.cells[ci]
            .pending
            .take()
            .expect("commit needs a pending tx");
        let winner_global = self.cells[ci].stations[p.winner].global;
        let foreign_jam = self.records[self.alive_from..].iter().any(|r| {
            r.cell != ci
                && r.start < p.end
                && p.start < r.end
                && r.txs
                    .iter()
                    .any(|&g| self.topo.interferes(winner_global, g))
        });
        if foreign_jam {
            self.jammed_tx += 1;
        }
        let jammed = foreign_jam || self.noise_active(p.start);

        let cell = &mut self.cells[ci];
        let w = p.winner;
        let t0 = Microseconds(p.start);
        let dur = Microseconds(p.end - p.start);
        let timing = cell.stations[w].timing;

        // The legacy success branch, verbatim: retransmissions first,
        // then fresh frames; jams error every PB without RNG draws.
        let mut fresh_consumed = 0usize;
        let mut clean_mpdus = 0usize;
        let mut outcomes: Vec<(u16, u16)> = Vec::with_capacity(p.burst);
        for _ in 0..p.burst {
            let (pbs, is_fresh) = match cell.stations[w].retx.pop_front() {
                Some(pbs) => (pbs, false),
                None => {
                    fresh_consumed += 1;
                    (cell.stations[w].num_pbs, true)
                }
            };
            let errored = if jammed {
                pbs
            } else if self.sim.pb_error_prob == 0.0 {
                0
            } else {
                let mut e = 0u16;
                for _ in 0..pbs {
                    if rand::Rng::gen::<f64>(&mut cell.rng) < self.sim.pb_error_prob {
                        e += 1;
                    }
                }
                e
            };
            outcomes.push((pbs, errored));
            let s = &mut cell.metrics.per_station[w];
            s.pbs_delivered += (pbs - errored) as u64;
            s.pbs_errored += errored as u64;
            cell.metrics.payload_delivered_us += timing.frame_length.as_micros()
                * (pbs - errored) as f64
                / cell.stations[w].num_pbs as f64;
            if errored == 0 {
                cell.metrics.frames_completed += 1;
                cell.metrics.per_station[w].frames_completed += 1;
                if is_fresh {
                    clean_mpdus += 1;
                } else {
                    cell.metrics.per_station[w].mpdus_partial += 1;
                }
            } else {
                cell.stations[w].retx.push_back(errored);
                cell.metrics.per_station[w].mpdus_partial += 1;
            }
        }

        if self.emitting {
            let mpdu_stride = timing.frame_length + RIFS + SACK;
            for (k, &(pbs, errored)) in outcomes.iter().enumerate() {
                let sof_t = t0 + mpdu_stride * (k as u64);
                cell.events.push(TraceEvent::Sof {
                    t: sof_t,
                    station: winner_global,
                    sof: sof_for(cell, w, p.burst - 1 - k, pbs, timing),
                });
                let ack_t = sof_t + PREAMBLE + timing.frame_length + RIFS;
                let mut ack = SelectiveAck::all_good(Tei::station(w as u32), pbs);
                for slot in ack.pb_ok.iter_mut().take(errored as usize) {
                    *slot = false;
                }
                cell.events.push(TraceEvent::Sack { t: ack_t, ack });
            }
        }

        cell.stations[w].retry = RetryState::new();
        cell.stations[w].traffic.consume(fresh_consumed);
        cell.t = p.end;
        cell.metrics.record_success(w, t0, clean_mpdus);
        cell.metrics.time_success += dur;
        cell.metrics.elapsed = Microseconds(cell.t);
        if self.emitting {
            cell.events.push(TraceEvent::Success {
                t: t0,
                station: winner_global,
                burst: p.burst,
            });
        }
    }

    /// Two or more stations of one cell collide — resolved entirely at
    /// start (interference cannot change a collision), but the wreckage
    /// still radiates to neighbouring cells via a [`TxRecord`].
    fn intra_cell_collision(&mut self, ci: usize) {
        let n_cells = self.sense_cc.len();
        let cell = &mut self.cells[ci];
        let t = cell.t;
        let t0 = Microseconds(t);
        let tx = std::mem::take(&mut cell.tx_buf);
        let bursts: Vec<(usize, usize)> = tx
            .iter()
            .map(|&i| {
                let available = (cell.stations[i].retx.len()
                    + cell.stations[i].traffic.backlog().min(MAX_BURST))
                .clamp(1, MAX_BURST);
                (i, self.sim.burst.draw(&mut cell.rng, available))
            })
            .collect();
        // The channel is occupied for the longest colliding burst plus
        // that station's collision-detection overhead (Tc − Ts).
        let dur = bursts
            .iter()
            .map(|&(i, b)| {
                let tm = cell.stations[i].timing;
                tm.burst_duration(b).as_micros() + tm.tc.as_micros() - tm.ts.as_micros()
            })
            .fold(0.0, f64::max);

        if self.emitting {
            let max_burst = bursts.iter().map(|&(_, b)| b).max().unwrap_or(1);
            for k in 0..max_burst {
                for &(i, burst) in bursts.iter().filter(|&&(_, b)| b > k) {
                    let tm = cell.stations[i].timing;
                    let stride = tm.frame_length + RIFS + SACK;
                    let sof_t = t0 + stride * (k as u64);
                    cell.events.push(TraceEvent::Sof {
                        t: sof_t,
                        station: cell.stations[i].global,
                        sof: sof_for(cell, i, burst - 1 - k, cell.stations[i].num_pbs, tm),
                    });
                    let ack_t = sof_t + PREAMBLE + tm.frame_length + RIFS;
                    cell.events.push(TraceEvent::Sack {
                        t: ack_t,
                        ack: SelectiveAck::all_errored(
                            Tei::station(i as u32),
                            cell.stations[i].num_pbs,
                        ),
                    });
                }
            }
        }

        // The legacy per-object collision pass: colliders fail or drop,
        // bystanders with traffic sense busy — one ascending sweep.
        let mut txi = 0usize;
        for i in 0..cell.stations.len() {
            if txi < tx.len() && tx[txi] == i {
                txi += 1;
                let dropped = cell.stations[i].retry.record_failure(self.sim.retry);
                if dropped {
                    cell.stations[i].retry = RetryState::new();
                    if cell.stations[i].retx.pop_front().is_none() {
                        cell.stations[i].traffic.consume(1);
                    }
                    cell.stations[i].process.reset(&mut cell.rng);
                    cell.metrics.per_station[i].dropped += 1;
                    if self.emitting {
                        cell.events.push(TraceEvent::FrameDropped {
                            t: t0,
                            station: cell.stations[i].global,
                        });
                    }
                } else {
                    cell.stations[i].process.on_tx_failure(&mut cell.rng);
                }
            } else if cell.stations[i].backlogged() {
                cell.stations[i].process.on_busy(&mut cell.rng);
            }
        }

        cell.t += dur;
        cell.metrics.record_collision(&bursts);
        cell.metrics.time_collision += Microseconds(dur);
        cell.metrics.elapsed = Microseconds(cell.t);
        if self.emitting {
            cell.events.push(TraceEvent::Collision {
                t: t0,
                stations: tx.iter().map(|&i| cell.stations[i].global).collect(),
            });
        }

        let txs_global: Vec<usize> = tx.iter().map(|&i| cell.stations[i].global).collect();
        cell.tx_buf = tx;
        self.records.push(TxRecord {
            cell: ci,
            start: t,
            end: t + dur,
            txs: txs_global,
            sensed: {
                let mut s = vec![false; n_cells];
                s[ci] = true;
                s
            },
        });
    }
}

/// The SoF delimiter station `i` (cell-local) puts on the wire.
fn sof_for(cell: &CoCell, i: usize, remaining: usize, pbs: u16, timing: MacTiming) -> SofDelimiter {
    let fl = (timing.frame_length.as_micros() / 1.28).round();
    SofDelimiter {
        src: Tei::station(i as u32),
        dst: Tei::station(cell.stations.len() as u32),
        priority: Priority::CA1,
        mpdu_cnt: remaining as u8,
        num_pbs: pbs,
        fl_units: fl.min(u16::MAX as f64) as u16,
    }
}
