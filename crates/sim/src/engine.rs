//! The modular slotted simulation engine.
//!
//! [`SlottedEngine`] implements the same channel dynamics as the paper's
//! reference simulator — a single contention domain where each step is
//! either an idle slot (`σ`), a successful transmission (`Ts`) or a
//! collision (`Tc`) — but in extensible form:
//!
//! * generic over the backoff process, so IEEE 1901, 802.11 DCF and the
//!   ablation variants run under identical dynamics (use
//!   [`plc_mac::AnyBackoff`] to mix protocols in one channel);
//! * per-station traffic models (saturated, Poisson, on/off);
//! * MPDU bursting with per-MPDU SoF/SACK wire events, which is what the
//!   emulated testbed's sniffer captures;
//! * retry policies;
//! * trace sinks and per-station metrics.
//!
//! With the default knobs (saturated stations, single-MPDU bursts,
//! infinite retries) the engine is statistically indistinguishable from
//! the reference port in [`crate::paper`] — an integration test asserts
//! exactly that.

use crate::bursting::BurstPolicy;
use crate::contention::{ContentionCore, CoreRejection, SweepAction};
use crate::metrics::Metrics;
use crate::trace::{StationId, TraceEvent, TraceSink};
use crate::traffic::{TrafficModel, TrafficState};
use parking_lot::Mutex;
use plc_core::addr::Tei;
use plc_core::error::{Error, Result};
use plc_core::frame::{SelectiveAck, SofDelimiter};
use plc_core::priority::Priority;
use plc_core::timing::{MacTiming, MAX_BURST, PREAMBLE, RIFS, SACK};
use plc_core::units::Microseconds;
use plc_mac::process::BackoffProcess;
use plc_mac::retry::{RetryPolicy, RetryState};
use plc_obs::{EngineObs, SharedObserver, StationObs};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A trace sink shared between the engine and its owner.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// An observer attached to the engine, firing every `every` steps.
struct ObserverSlot {
    observer: SharedObserver,
    every: u64,
}

/// Hot-path span timers installed by [`SlottedEngine::instrument`].
struct EngineTimers {
    step: plc_obs::SpanTimer,
    pb_draw: plc_obs::SpanTimer,
    steps: plc_obs::Counter,
    steps_skipped: plc_obs::Counter,
    fast_forward: plc_obs::SpanTimer,
}

/// Beacon scheduling: the CCo transmits one beacon per period; contention
/// is *suspended* (not sensed busy — backoff state freezes) while the
/// beacon occupies the medium, per the standard's region structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconSchedule {
    /// Beacon period (HomePlug AV: two mains cycles, 40 ms at 50 Hz).
    pub period: Microseconds,
    /// Beacon airtime.
    pub duration: Microseconds,
}

impl BeaconSchedule {
    /// The standard 50 Hz-mains schedule.
    pub fn standard_50hz() -> Self {
        BeaconSchedule {
            period: plc_core::timing::BEACON_PERIOD_50HZ,
            duration: plc_core::timing::BEACON_AIRTIME,
        }
    }
}

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Channel timing (slot, Ts, Tc, frame length).
    pub timing: MacTiming,
    /// Simulation horizon: the engine steps until simulated time exceeds
    /// this value (matching the reference's `while t <= sim_time`).
    pub horizon: Microseconds,
    /// Burst policy applied on contention wins.
    pub burst: BurstPolicy,
    /// Retry policy for failed transmissions.
    pub retry: RetryPolicy,
    /// Per-physical-block channel error probability. 0 (the default)
    /// reproduces the paper's error-free assumption; a positive value
    /// exercises the §4.1 mechanism the paper leaves unmodelled: errored
    /// PBs are flagged in the selective ACK and *only those blocks* are
    /// retransmitted in a later contention win (`plc-phy` derives this
    /// probability from a synthetic channel).
    pub pb_error_prob: f64,
    /// Emit per-station [`TraceEvent::Snapshot`] events after every step
    /// (needed to regenerate Figure 1; costly on long runs).
    pub emit_snapshots: bool,
    /// Emit [`TraceEvent::Sof`]/[`TraceEvent::Sack`] wire events (needed by
    /// the testbed sniffer; harmless otherwise).
    pub emit_wire_events: bool,
    /// Optional beacon schedule (`None` = the paper's pure-CSMA model).
    pub beacons: Option<BeaconSchedule>,
    /// Impulse-noise bursts: while one is active, every physical block of
    /// every transmitted MPDU errors, without consuming channel-RNG
    /// draws. Empty = the paper's clean medium. The engine sorts the list
    /// by start time on construction and rejects overlapping or
    /// non-finite bursts with [`Error::InvalidConfig`].
    pub noise: Vec<plc_faults::NoiseBurst>,
    /// Fast-forward runs of idle slots in one jump (default `true`).
    /// Byte-identical to per-slot stepping — idle slots consume no RNG
    /// draws and never touch the deferral counter — and exercised against
    /// it by the `fast_forward_equivalence` test suite; disable only to
    /// cross-check the stepping path. [`emit_snapshots`]
    /// (EngineConfig::emit_snapshots) and attached observers force the
    /// per-slot path regardless, since both need every step materialized.
    pub fast_forward: bool,
    /// Host the contention counters in a struct-of-arrays core (default
    /// `true`), making the busy-slot pass a tight sweep over parallel
    /// arrays with batched RNG draws. Bit-identical to the per-object
    /// path — same traces, metrics and RNG stream, pinned by the
    /// `soa_equivalence` suite — and engaged only when every station's
    /// process exports a [`plc_mac::SoaView`]; disable to force the
    /// per-object reference path.
    pub soa: bool,
    /// Cooperative cancellation: when installed, [`SlottedEngine::run`]
    /// polls the token once per slot (idle runs are still absorbed in
    /// one fast-forward jump first) and returns early when it fires,
    /// leaving partial metrics behind. `None` (the default) is **zero
    /// cost**: the run loop compiles without any check — the engine
    /// dispatches to the exact pre-cancellation loops — so installing
    /// no token keeps the hot path byte-for-byte as fast as before.
    /// Cancellation never perturbs results that complete: a run that
    /// reaches the horizon with an un-fired token is bit-identical to
    /// one without a token installed.
    pub cancel: Option<plc_core::CancelToken>,
}

impl EngineConfig {
    /// Paper defaults: CA1 timing, 500 s horizon, single-MPDU bursts,
    /// infinite retries, no snapshots, wire events on.
    pub fn paper_default() -> Self {
        EngineConfig {
            timing: MacTiming::paper_default(),
            horizon: plc_core::timing::DEFAULT_SIM_TIME,
            burst: BurstPolicy::Single,
            retry: RetryPolicy::Infinite,
            pb_error_prob: 0.0,
            emit_snapshots: false,
            emit_wire_events: true,
            beacons: None,
            noise: Vec::new(),
            fast_forward: true,
            soa: true,
            cancel: None,
        }
    }

    /// Same defaults with a custom horizon.
    pub fn with_horizon(horizon: Microseconds) -> Self {
        EngineConfig {
            horizon,
            ..Self::paper_default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Specification of one station.
#[derive(Debug, Clone)]
pub struct StationSpec<P> {
    /// The backoff process (already constructed, i.e. already at stage 0
    /// with BC drawn).
    pub process: P,
    /// Priority carried in this station's SoF LinkID field. The
    /// single-class engine does not run priority resolution; this tags the
    /// wire events (data at CA1, MMEs at CA2/CA3 in the testbed).
    pub priority: Priority,
    /// Arrival model.
    pub traffic: TrafficModel,
    /// Physical blocks per MPDU (SoF bookkeeping; 4 PBs ≈ one 2 kB frame).
    pub num_pbs: u16,
    /// Per-station PB error probability override (`None` = the engine's
    /// global `pb_error_prob`). Lets harnesses model per-link channel
    /// quality and tone-map staleness.
    pub pb_error_prob: Option<f64>,
}

impl<P> StationSpec<P> {
    /// A saturated CA1 station around the given process.
    pub fn saturated(process: P) -> Self {
        StationSpec {
            process,
            priority: Priority::CA1,
            traffic: TrafficModel::Saturated,
            num_pbs: 4,
            pb_error_prob: None,
        }
    }
}

struct StationCtx<P> {
    process: P,
    priority: Priority,
    traffic: TrafficState,
    retry: RetryState,
    num_pbs: u16,
    pb_error_prob: Option<f64>,
    /// PB counts of partially-errored MPDUs awaiting selective
    /// retransmission (FIFO; serviced before fresh frames).
    retx: std::collections::VecDeque<u16>,
}

/// What one engine step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The medium was idle for one slot (or no station had traffic).
    Idle,
    /// One station transmitted a burst successfully.
    Success {
        /// The winner.
        station: StationId,
        /// MPDUs in the burst.
        burst: usize,
    },
    /// Two or more stations collided.
    Collision {
        /// The colliding stations.
        stations: Vec<StationId>,
    },
}

/// Lightweight step result used internally: the public [`StepOutcome`]
/// (which owns the colliding-station list) is only materialized by
/// [`SlottedEngine::step`], so the `run` hot loop never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepKind {
    Idle,
    Success { station: StationId, burst: usize },
    Collision,
}

/// The slotted single-contention-domain engine. See the [module
/// docs](self).
pub struct SlottedEngine<P: BackoffProcess> {
    cfg: EngineConfig,
    stations: Vec<StationCtx<P>>,
    rng: SmallRng,
    t: Microseconds,
    metrics: Metrics,
    sinks: Vec<SharedSink>,
    /// Scratch buffer of transmitting stations (avoids per-step
    /// allocation); holds the last step's transmitter set after a step.
    tx_buf: Vec<StationId>,
    /// Scratch buffer of per-MPDU (pbs, errored) outcomes of a success.
    outcome_buf: Vec<(u16, u16)>,
    /// Scratch buffer of per-station burst draws of a collision.
    burst_buf: Vec<(usize, usize)>,
    /// Time of the next scheduled beacon, when beacons are enabled.
    next_beacon: Microseconds,
    /// Slots executed so far (skipped idle slots count one each).
    steps: u64,
    observers: Vec<ObserverSlot>,
    timers: Option<EngineTimers>,
    /// Cursor into `cfg.noise` (time is monotone, so passed bursts never
    /// come back).
    noise_idx: usize,
    /// Every station saturated → the arrival loop is a no-op, skip it.
    all_saturated: bool,
    /// Contention-state cache for the fast-forward run loops: when
    /// `hint_valid`, `zero_bc` holds exactly the backlogged stations whose
    /// process transmits this slot (ascending station order — the same
    /// order the contend scan produces) and `min_bc` the minimum backoff
    /// counter over backlogged stations with `BC > 0` (`u32::MAX` when
    /// none). Maintained by the `TRACK = true` step path by folding
    /// [`BackoffProcess::idle_skip`] into the mutation loops it already
    /// runs, so the per-step contention rescan disappears; any mutation
    /// outside those loops (traffic reset, external `step()` calls)
    /// invalidates it.
    hint_valid: bool,
    min_bc: u32,
    zero_bc: Vec<StationId>,
    /// Struct-of-arrays contention state (see [`EngineConfig::soa`]).
    /// When present it is the *authoritative* store of every station's
    /// BC/DC/BPC/stage — the `StationCtx` process objects are only read
    /// at build time — and every read or mutation of contention state
    /// routes through it.
    core: Option<ContentionCore>,
    /// Why the struct-of-arrays core could not be packed, when `cfg.soa`
    /// was requested but the engine had to fall back to the per-object
    /// path. `None` either means the core is active or that a process
    /// opted out of exporting a SoA view.
    soa_rejection: Option<CoreRejection>,
    /// Scratch buffer of per-transmitter sweep actions (collision arm).
    action_buf: Vec<SweepAction>,
}

impl<P: BackoffProcess> SlottedEngine<P> {
    /// Build an engine over the given stations. `seed` drives all engine
    /// randomness (traffic arrivals, burst draws) — note the *processes*
    /// were seeded by their own constructor RNGs, so construct them from
    /// the same master seed for full reproducibility (the
    /// [`crate::runner`] builder does this).
    ///
    /// # Panics
    ///
    /// On any configuration [`try_new`](Self::try_new) rejects.
    pub fn new(cfg: EngineConfig, stations: Vec<StationSpec<P>>, seed: u64) -> Self {
        Self::try_new(cfg, stations, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`new`](Self::new), returning configuration problems as
    /// [`Error::InvalidConfig`] instead of panicking: an empty station
    /// set, invalid timing, a PB error probability outside `[0, 1)`, or a
    /// malformed noise schedule. Noise bursts are sorted by start time
    /// here (callers may build them out of order); overlapping or
    /// non-finite bursts are rejected since both would corrupt the
    /// monotone noise cursor and the fast-forward clamp.
    pub fn try_new(
        mut cfg: EngineConfig,
        stations: Vec<StationSpec<P>>,
        seed: u64,
    ) -> Result<Self> {
        if stations.is_empty() {
            return Err(Error::invalid_config("need at least one station"));
        }
        if !cfg.timing.is_valid() {
            return Err(Error::invalid_config("invalid MacTiming"));
        }
        if !(0.0..1.0).contains(&cfg.pb_error_prob) {
            return Err(Error::invalid_config(
                "PB error probability must be in [0, 1)",
            ));
        }
        for b in &cfg.noise {
            if !(b.start_us.is_finite() && b.duration_us.is_finite())
                || b.start_us < 0.0
                || b.duration_us < 0.0
            {
                return Err(Error::invalid_config(format!(
                    "noise burst (start {} µs, duration {} µs) must have \
                     finite, non-negative start and duration",
                    b.start_us, b.duration_us
                )));
            }
        }
        cfg.noise.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        for w in cfg.noise.windows(2) {
            if w[1].start_us < w[0].end_us() {
                return Err(Error::invalid_config(format!(
                    "noise bursts overlap: [{}, {}) and [{}, {}) µs",
                    w[0].start_us,
                    w[0].end_us(),
                    w[1].start_us,
                    w[1].end_us()
                )));
            }
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = stations.len();
        let stations: Vec<StationCtx<P>> = stations
            .into_iter()
            .map(|s| StationCtx {
                process: s.process,
                priority: s.priority,
                traffic: TrafficState::new(s.traffic, &mut rng),
                retry: RetryState::new(),
                num_pbs: s.num_pbs,
                pb_error_prob: s.pb_error_prob,
                retx: std::collections::VecDeque::new(),
            })
            .collect();
        let next_beacon = cfg
            .beacons
            .map(|b| b.period)
            .unwrap_or(Microseconds(f64::INFINITY));
        let all_saturated = stations.iter().all(|s| s.traffic.is_saturated());
        // Move the contention counters into the struct-of-arrays core
        // when every process can export them; a single opt-out (or an
        // unrepresentable table) falls back to the per-object path, and
        // the rejection reason is kept so callers (and the
        // `engine.soa_fallbacks` counter) can see *why* instead of the
        // core silently staying unused.
        let mut soa_rejection = None;
        let core = if cfg.soa {
            match stations
                .iter()
                .map(|s| s.process.soa_view())
                .collect::<Option<Vec<_>>>()
            {
                Some(views) => match ContentionCore::try_from_views(&views, all_saturated) {
                    Ok(core) => Some(core),
                    Err(why) => {
                        soa_rejection = Some(why);
                        None
                    }
                },
                // A process without a SoA view opted out by design — not
                // a packing failure, so no rejection is recorded.
                None => None,
            }
        } else {
            None
        };
        Ok(SlottedEngine {
            cfg,
            stations,
            rng,
            t: Microseconds::ZERO,
            metrics: Metrics::new(n),
            sinks: Vec::new(),
            tx_buf: Vec::with_capacity(n),
            outcome_buf: Vec::with_capacity(MAX_BURST),
            burst_buf: Vec::with_capacity(n),
            next_beacon,
            steps: 0,
            observers: Vec::new(),
            timers: None,
            noise_idx: 0,
            all_saturated,
            hint_valid: false,
            min_bc: u32::MAX,
            zero_bc: Vec::with_capacity(n),
            core,
            soa_rejection,
            action_buf: Vec::with_capacity(n),
        })
    }

    /// Subscribe a trace sink.
    pub fn add_sink(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }

    /// Attach a periodic observer: it receives an [`EngineObs`] snapshot
    /// every `every_steps` engine steps. Observers are read-only — they
    /// never touch the engine's RNG stream, so attaching one cannot
    /// change the simulation's results.
    pub fn add_observer(&mut self, observer: SharedObserver, every_steps: u64) {
        assert!(every_steps > 0, "observer interval must be positive");
        self.observers.push(ObserverSlot {
            observer,
            every: every_steps,
        });
    }

    /// Install hot-path instrumentation into `registry`: the span timers
    /// `engine.step` (whole-step wall time), `engine.pb_draw` (per-MPDU
    /// channel-error sampling) and `engine.fast_forward` (idle-slot
    /// skips), plus the counters `engine.steps` (every slot, skipped ones
    /// included) and `engine.steps_skipped` (slots absorbed by
    /// fast-forward). Without this call the hot loop pays a single branch
    /// per step for observability.
    ///
    /// Inside [`run`](Self::run) with fast-forward on, `engine.step` and
    /// `engine.steps` are recorded in one batch when the run completes
    /// (a per-step clock read would cost as much as the step itself);
    /// the totals are identical, but mid-run reads from another thread
    /// see them only after the run returns. External [`step`](Self::step)
    /// calls record per step.
    ///
    /// Fails with [`Error::Runtime`] if any of those names is already
    /// registered as a different metric kind.
    pub fn instrument(&mut self, registry: &plc_obs::Registry) -> Result<()> {
        self.timers = Some(EngineTimers {
            step: registry.try_timer("engine.step")?,
            pb_draw: registry.try_timer("engine.pb_draw")?,
            steps: registry.try_counter("engine.steps")?,
            steps_skipped: registry.try_counter("engine.steps_skipped")?,
            fast_forward: registry.try_timer("engine.fast_forward")?,
        });
        // Make silent SoA fallbacks visible: the counter exists whenever
        // an instrumented engine runs, so a zero reading means "core
        // active or opted out", a non-zero reading says how many engines
        // hit an unrepresentable contention table.
        let fallbacks = registry.try_counter("engine.soa_fallbacks")?;
        if self.soa_rejection.is_some() {
            fallbacks.add(1);
        }
        Ok(())
    }

    /// Why the struct-of-arrays contention core was rejected, when
    /// [`EngineConfig::soa`] asked for it but the engine fell back to the
    /// per-object path. `None` means the core is active, SoA was not
    /// requested, or a process opted out of exporting a view.
    pub fn soa_rejection(&self) -> Option<&CoreRejection> {
        self.soa_rejection.as_ref()
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current simulated time.
    pub fn time(&self) -> Microseconds {
        self.t
    }

    /// Metrics so far. `elapsed` is kept up to date after every step.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Counter snapshot of station `i`.
    pub fn snapshot(&self, i: StationId) -> plc_mac::process::BackoffSnapshot {
        match &self.core {
            Some(core) => core.snapshot(i),
            None => self.stations[i].process.snapshot(),
        }
    }

    /// Number of stations.
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Sample how many of station `i`'s `pbs` physical blocks error on the
    /// channel (per-station override, else the global probability).
    fn sample_pb_errors(&mut self, station: StationId, pbs: u16) -> u16 {
        let p = self.stations[station]
            .pb_error_prob
            .unwrap_or(self.cfg.pb_error_prob);
        if p == 0.0 {
            return 0;
        }
        let _draw_span = self.timers.as_ref().map(|t| t.pb_draw.start());
        let mut errored = 0u16;
        for _ in 0..pbs {
            if rand::Rng::gen::<f64>(&mut self.rng) < p {
                errored += 1;
            }
        }
        errored
    }

    /// Whether an impulse-noise burst is active at `t`. Advances a
    /// monotone cursor; zero cost (one slice-length check) when the
    /// config has no noise.
    fn noise_active(&mut self, t: Microseconds) -> bool {
        let t = t.as_micros();
        while self
            .cfg
            .noise
            .get(self.noise_idx)
            .is_some_and(|b| t >= b.end_us())
        {
            self.noise_idx += 1;
        }
        self.cfg
            .noise
            .get(self.noise_idx)
            .is_some_and(|b| b.contains(t))
    }

    /// The next noise-burst boundary (start or end) strictly ahead of the
    /// current time, `INFINITY` when none remain. Read-only: the monotone
    /// cursor is only advanced by [`noise_active`](Self::noise_active).
    fn next_noise_edge(&self) -> f64 {
        let t = self.t.as_micros();
        for b in &self.cfg.noise[self.noise_idx..] {
            if t < b.start_us {
                return b.start_us;
            }
            if t < b.end_us() {
                return b.end_us();
            }
        }
        f64::INFINITY
    }

    /// Fast-forward a run of guaranteed-idle slots, returning how many
    /// were absorbed (0 = the next step must take the per-slot path).
    ///
    /// Validity: an idle slot consumes no RNG draws and never touches the
    /// deferral counter in either protocol (see
    /// [`BackoffProcess::idle_skip`]), so while every backlogged station
    /// has `BC > 0` the next `min(BC)` slots are fully predictable. The
    /// jump is clamped at the horizon, the next beacon, the next traffic
    /// arrival/phase event (where `advance_to` would mutate state) and
    /// the next noise-burst edge (belt and braces — idle slots never
    /// sample the noise schedule). Time, `idle_slots` and `time_idle`
    /// advance by per-slot `+=` in the original order, so the f64
    /// accumulations — and any emitted `IdleSlot` events — are
    /// bit-identical to the stepping path.
    fn fast_forward_idle(&mut self) -> u64 {
        let k = if self.hint_valid {
            // The previous step's mutation loops already folded every
            // backlogged station's BC: no rescan needed.
            if !self.zero_bc.is_empty() {
                return 0;
            }
            self.min_bc
        } else if let Some(core) = &self.core {
            let mut k = u32::MAX;
            for (i, st) in self.stations.iter().enumerate() {
                if st.traffic.has_frame() || !st.retx.is_empty() {
                    let bc = core.bc_of(i);
                    if bc == 0 {
                        // A station transmits this slot: step normally.
                        return 0;
                    }
                    k = k.min(bc);
                }
            }
            k
        } else {
            let mut k = u32::MAX;
            for st in &self.stations {
                if st.traffic.has_frame() || !st.retx.is_empty() {
                    match st.process.idle_skip() {
                        Some(bc) if bc > 0 => k = k.min(bc),
                        // A station transmits this slot, or its process
                        // opted out of skipping: step normally.
                        _ => return 0,
                    }
                }
            }
            k
        };
        if k == 0 {
            return 0;
        }
        let slot = self.cfg.timing.slot;
        let horizon = self.cfg.horizon.as_micros();
        let next_beacon = self.next_beacon.as_micros();
        let mut next_event = self.next_noise_edge();
        if !self.all_saturated {
            for st in &self.stations {
                next_event = next_event.min(st.traffic.next_event_us());
            }
        }
        let emitting = !self.sinks.is_empty();
        let mut skipped: u64 = 0;
        while skipped < k as u64 {
            let t0 = self.t.as_micros();
            if t0 > horizon || t0 >= next_beacon || t0 >= next_event {
                break;
            }
            if emitting {
                self.emit(TraceEvent::IdleSlot { t: self.t });
            }
            self.t += slot;
            self.metrics.idle_slots += 1;
            self.metrics.time_idle += slot;
            skipped += 1;
        }
        if skipped > 0 {
            // Consume the absorbed slots and refresh the hint in the same
            // pass: every backlogged BC just dropped by `skipped`.
            let mut zero = std::mem::take(&mut self.zero_bc);
            zero.clear();
            let mut min = u32::MAX;
            let mut poisoned = false;
            if let Some(core) = &mut self.core {
                for (i, st) in self.stations.iter().enumerate() {
                    if st.traffic.has_frame() || !st.retx.is_empty() {
                        core.consume_idle(i, skipped as u32);
                        let bc = core.bc_of(i);
                        if bc == 0 {
                            zero.push(i);
                        } else {
                            min = min.min(bc);
                        }
                    }
                }
            } else {
                for (i, st) in self.stations.iter_mut().enumerate() {
                    if st.traffic.has_frame() || !st.retx.is_empty() {
                        st.process.consume_idle_slots(skipped as u32);
                        match st.process.idle_skip() {
                            Some(0) => zero.push(i),
                            Some(bc) => min = min.min(bc),
                            None => poisoned = true,
                        }
                    }
                }
            }
            self.zero_bc = zero;
            self.min_bc = min;
            self.hint_valid = !poisoned;
            self.metrics.elapsed = self.t;
            self.steps += skipped;
        }
        skipped
    }

    /// Update station `i`'s per-link PB error probability mid-run — the
    /// hook tone-map adaptation harnesses use to model channel drift and
    /// re-estimation.
    pub fn set_station_pb_error(&mut self, station: StationId, p: f64) {
        assert!(
            (0.0..1.0).contains(&p),
            "PB error probability must be in [0, 1)"
        );
        self.stations[station].pb_error_prob = Some(p);
    }

    fn emit(&mut self, ev: TraceEvent) {
        for sink in &self.sinks {
            sink.lock().on_event(&ev);
        }
    }

    /// The SoF delimiter station `i` puts on the wire, `remaining` MPDUs
    /// following in the burst.
    fn sof_for(&self, i: StationId, remaining: usize) -> SofDelimiter {
        let st = &self.stations[i];
        // Frame-length field is in 1.28 µs units.
        let fl = (self.cfg.timing.frame_length.as_micros() / 1.28).round();
        SofDelimiter {
            src: Tei::station(i as u32),
            dst: Tei::station(self.stations.len() as u32), // destination D: one past the senders
            priority: st.priority,
            mpdu_cnt: remaining as u8,
            num_pbs: st.num_pbs,
            fl_units: fl.min(u16::MAX as f64) as u16,
        }
    }

    /// Execute one step: idle slot, success or collision. Advances
    /// simulated time accordingly. Always takes the per-slot path;
    /// fast-forward only engages inside [`run`](Self::run).
    pub fn step(&mut self) -> StepOutcome {
        // Keep the uninstrumented path free of Drop locals (span guards)
        // so the optimizer sees the same hot loop as without
        // observability; it pays exactly this one branch.
        let kind = if self.timers.is_none() && self.observers.is_empty() {
            let kind = self.step_inner::<false>();
            self.steps += 1;
            kind
        } else {
            self.step_instrumented::<false>()
        };
        // External stepping mutates station state without folding the
        // contention cache; a later `run()` must rebuild it.
        self.hint_valid = false;
        self.materialize(kind)
    }

    /// Expand a [`StepKind`] into the public outcome; the colliding
    /// station set lives in `tx_buf` until the next step begins.
    fn materialize(&self, kind: StepKind) -> StepOutcome {
        match kind {
            StepKind::Idle => StepOutcome::Idle,
            StepKind::Success { station, burst } => StepOutcome::Success { station, burst },
            StepKind::Collision => StepOutcome::Collision {
                stations: self.tx_buf.clone(),
            },
        }
    }

    #[cold]
    fn step_instrumented<const TRACK: bool>(&mut self) -> StepKind {
        let _step_span = self.timers.as_ref().map(|t| t.step.start());
        let kind = self.step_inner::<TRACK>();
        self.steps += 1;
        if let Some(t) = &self.timers {
            t.steps.inc();
        }
        if !self.observers.is_empty() {
            self.notify_observers();
        }
        kind
    }

    /// Build the plain-data snapshot observers receive.
    fn engine_obs(&self) -> EngineObs {
        EngineObs {
            t_us: self.t.as_micros(),
            step: self.steps,
            idle_slots: self.metrics.idle_slots,
            successes: self.metrics.successes,
            collision_events: self.metrics.collision_events,
            stations: self
                .stations
                .iter()
                .enumerate()
                .map(|(i, st)| {
                    let snap = match &self.core {
                        Some(core) => core.snapshot(i),
                        None => st.process.snapshot(),
                    };
                    StationObs {
                        station: i,
                        stage: snap.stage,
                        cw: snap.cw,
                        bc: snap.bc,
                        dc: snap.dc,
                        bpc: snap.bpc,
                        successes: self.metrics.per_station[i].successes,
                        collisions: self.metrics.per_station[i].collisions,
                    }
                })
                .collect(),
        }
    }

    fn notify_observers(&self) {
        let mut obs: Option<EngineObs> = None;
        for slot in &self.observers {
            if self.steps.is_multiple_of(slot.every) {
                let snapshot = obs.get_or_insert_with(|| self.engine_obs());
                slot.observer.lock().on_engine(snapshot);
            }
        }
    }

    // Force-inlined into both `step` paths: with two call sites the
    // inliner otherwise outlines this hot body, costing ~5-15% engine
    // throughput (measured on the saturated-1901 workloads).
    //
    // `TRACK` selects the fast-forward run loop's variant, which consumes
    // the `zero_bc`/`min_bc` contention cache instead of rescanning all
    // stations and rebuilds it inside the mutation loops each branch
    // already runs. With `TRACK = false` (the public `step()` path and
    // the `fast_forward(false)` reference engine) every cache line
    // compiles out and the body is the plain stepping loop.
    #[inline(always)]
    fn step_inner<const TRACK: bool>(&mut self) -> StepKind {
        // The CCo's beacon takes the medium at its scheduled time;
        // contention is suspended (backoff state frozen) for its airtime.
        if let Some(b) = self.cfg.beacons {
            if self.t >= self.next_beacon {
                let tb = self.t;
                self.t += b.duration;
                self.next_beacon += b.period;
                self.metrics.beacons += 1;
                self.metrics.time_beacon += b.duration;
                self.metrics.elapsed = self.t;
                self.emit(TraceEvent::Beacon { t: tb });
                return StepKind::Idle;
            }
        }
        let t0 = self.t;

        // Deliver traffic arrivals up to now; newly-backlogged stations
        // start a fresh stage-0 backoff.
        if !self.all_saturated {
            if let Some(core) = &mut self.core {
                for (i, st) in self.stations.iter_mut().enumerate() {
                    if !st.traffic.is_saturated()
                        && st.traffic.advance_to(t0.as_micros(), &mut self.rng)
                    {
                        core.reset_now(i, &mut self.rng);
                        if TRACK {
                            // The fresh stage-0 BC isn't folded into the
                            // cache; rebuild it below.
                            self.hint_valid = false;
                        }
                    }
                }
                // Refresh the backlog flags once per step: the contender
                // scan and the sweeps below read these instead of walking
                // `StationCtx` (with every station saturated they are
                // constant `true` and never refreshed). Stations whose
                // queues change mid-step are fixed up in place.
                for (i, st) in self.stations.iter().enumerate() {
                    core.set_active(i, st.traffic.has_frame() || !st.retx.is_empty());
                }
            } else {
                for st in &mut self.stations {
                    if !st.traffic.is_saturated()
                        && st.traffic.advance_to(t0.as_micros(), &mut self.rng)
                    {
                        st.process.reset(&mut self.rng);
                        if TRACK {
                            // The fresh stage-0 BC isn't folded into the
                            // cache; rebuild it below.
                            self.hint_valid = false;
                        }
                    }
                }
            }
        }

        // Who transmits this slot? A station contends while it has fresh
        // frames queued or errored PBs awaiting retransmission.
        self.tx_buf.clear();
        if TRACK && self.hint_valid {
            // `zero_bc` is exactly the contender set, in scan order.
            std::mem::swap(&mut self.tx_buf, &mut self.zero_bc);
        } else if let Some(core) = &self.core {
            core.contenders(&mut self.tx_buf);
        } else {
            for (i, st) in self.stations.iter().enumerate() {
                if (st.traffic.has_frame() || !st.retx.is_empty()) && st.process.wants_tx() {
                    self.tx_buf.push(i);
                }
            }
        }
        let tx = std::mem::take(&mut self.tx_buf);

        // Every outcome branch below rebuilds the contention cache while
        // it mutates station state, so the next step never rescans.
        let mut zero = if TRACK {
            let mut z = std::mem::take(&mut self.zero_bc);
            z.clear();
            z
        } else {
            Vec::new()
        };
        let mut min_bc = u32::MAX;
        let mut poisoned = false;

        // Wire events only matter when someone listens; with no sinks the
        // SoF/SACK construction (and its allocations) is pure waste.
        let emitting = !self.sinks.is_empty();
        let outcome = match tx.len() {
            0 => {
                if let Some(core) = &mut self.core {
                    core.idle_sweep::<TRACK>(&mut zero, &mut min_bc);
                } else {
                    for (i, st) in self.stations.iter_mut().enumerate() {
                        if st.traffic.has_frame() || !st.retx.is_empty() {
                            st.process.on_idle_slot(&mut self.rng);
                            if TRACK {
                                match st.process.idle_skip() {
                                    Some(0) => zero.push(i),
                                    Some(bc) => min_bc = min_bc.min(bc),
                                    None => poisoned = true,
                                }
                            }
                        }
                    }
                }
                self.t += self.cfg.timing.slot;
                self.metrics.idle_slots += 1;
                self.metrics.time_idle += self.cfg.timing.slot;
                self.emit(TraceEvent::IdleSlot { t: t0 });
                StepKind::Idle
            }
            1 => {
                let w = tx[0];
                // Sendable units: errored-PB retransmissions first, then
                // fresh frames from the queue.
                let retx_ready = self.stations[w].retx.len();
                let fresh_ready = self.stations[w].traffic.backlog();
                let available = retx_ready.saturating_add(fresh_ready).min(MAX_BURST);
                let burst = self.cfg.burst.draw(&mut self.rng, available);
                let dur = self.cfg.timing.burst_duration(burst);
                // Impulse noise wipes every PB of the transmission without
                // consuming channel-RNG draws (the fault layer never
                // touches simulation streams).
                let jammed = self.noise_active(t0);

                // Per-MPDU channel outcome (selective-ACK granularity).
                let mut fresh_consumed = 0usize;
                let mut clean_mpdus = 0usize;
                let mut outcomes = std::mem::take(&mut self.outcome_buf); // (pbs, errored)
                outcomes.clear();
                for _ in 0..burst {
                    let (pbs, is_fresh) = match self.stations[w].retx.pop_front() {
                        Some(pbs) => (pbs, false),
                        None => {
                            fresh_consumed += 1;
                            (self.stations[w].num_pbs, true)
                        }
                    };
                    let errored = if jammed {
                        pbs
                    } else {
                        self.sample_pb_errors(w, pbs)
                    };
                    outcomes.push((pbs, errored));
                    let s = &mut self.metrics.per_station[w];
                    s.pbs_delivered += (pbs - errored) as u64;
                    s.pbs_errored += errored as u64;
                    self.metrics.payload_delivered_us += self.cfg.timing.frame_length.as_micros()
                        * (pbs - errored) as f64
                        / self.stations[w].num_pbs as f64;
                    if errored == 0 {
                        self.metrics.frames_completed += 1;
                        self.metrics.per_station[w].frames_completed += 1;
                        if is_fresh {
                            // A fresh full MPDU through error-free: the
                            // clean delivery `record_success` credits.
                            clean_mpdus += 1;
                        } else {
                            // A retransmission that finished the frame is a
                            // partial MPDU delivery, not a clean full MPDU.
                            self.metrics.per_station[w].mpdus_partial += 1;
                        }
                    } else {
                        self.stations[w].retx.push_back(errored);
                        self.metrics.per_station[w].mpdus_partial += 1;
                    }
                }

                if self.cfg.emit_wire_events && emitting {
                    // One SoF per MPDU; SACK follows each payload after RIFS.
                    let mpdu_stride = self.cfg.timing.frame_length + RIFS + SACK;
                    for (k, &(pbs, errored)) in outcomes.iter().enumerate() {
                        let sof_t = t0 + mpdu_stride * (k as u64);
                        let mut sof = self.sof_for(w, burst - 1 - k);
                        sof.num_pbs = pbs;
                        self.emit(TraceEvent::Sof {
                            t: sof_t,
                            station: w,
                            sof,
                        });
                        let ack_t = sof_t + PREAMBLE + self.cfg.timing.frame_length + RIFS;
                        let mut ack = SelectiveAck::all_good(Tei::station(w as u32), pbs);
                        for slot in ack.pb_ok.iter_mut().take(errored as usize) {
                            *slot = false;
                        }
                        self.emit(TraceEvent::Sack { t: ack_t, ack });
                    }
                }

                // Winner resets; everyone else with traffic sensed busy.
                if self.core.is_some() {
                    // Engine-level bookkeeping first (consumes no RNG
                    // draws), then the batched sweep redraws in ascending
                    // station order — the per-object draw order.
                    self.stations[w].retry = RetryState::new();
                    self.stations[w].traffic.consume(fresh_consumed);
                    if !self.all_saturated {
                        let a = self.stations[w].traffic.has_frame()
                            || !self.stations[w].retx.is_empty();
                        if let Some(core) = &mut self.core {
                            core.set_active(w, a);
                        }
                    }
                    let core = self.core.as_mut().expect("checked above");
                    core.success_sweep::<TRACK>(w, &mut self.rng, &mut zero, &mut min_bc);
                } else {
                    for i in 0..self.stations.len() {
                        if i == w {
                            self.stations[i].process.on_tx_success(&mut self.rng);
                            self.stations[i].retry = RetryState::new();
                            self.stations[i].traffic.consume(fresh_consumed);
                        } else if self.stations[i].traffic.has_frame()
                            || !self.stations[i].retx.is_empty()
                        {
                            self.stations[i].process.on_busy(&mut self.rng);
                        }
                        if TRACK {
                            let st = &self.stations[i];
                            if st.traffic.has_frame() || !st.retx.is_empty() {
                                match st.process.idle_skip() {
                                    Some(0) => zero.push(i),
                                    Some(bc) => min_bc = min_bc.min(bc),
                                    None => poisoned = true,
                                }
                            }
                        }
                    }
                }

                self.t += dur;
                self.metrics.record_success(w, t0, clean_mpdus);
                self.metrics.time_success += dur;
                self.outcome_buf = outcomes;
                self.emit(TraceEvent::Success {
                    t: t0,
                    station: w,
                    burst,
                });
                StepKind::Success { station: w, burst }
            }
            _ => {
                // Every colliding station still transmits its full burst —
                // the transmitter only learns of the collision from the
                // all-errored SACKs, so every MPDU goes out and every MPDU
                // is acknowledged-with-errors. This is what keeps the
                // testbed's per-MPDU ΣCᵢ/ΣAᵢ equal to the event-level
                // collision probability despite 2-MPDU bursts.
                let mut bursts = std::mem::take(&mut self.burst_buf);
                bursts.clear();
                bursts.extend(tx.iter().map(|&i| {
                    let available = (self.stations[i].retx.len()
                        + self.stations[i].traffic.backlog().min(MAX_BURST))
                    .clamp(1, MAX_BURST);
                    (i, self.cfg.burst.draw(&mut self.rng, available))
                }));
                let max_burst = bursts.iter().map(|&(_, b)| b).max().unwrap_or(1);
                // The channel is occupied for the longest burst plus the
                // collision-detection overhead (Tc − Ts); equals Tc for
                // single-MPDU transmissions.
                let dur = self.cfg.timing.burst_duration(max_burst) + self.cfg.timing.tc
                    - self.cfg.timing.ts;
                if self.cfg.emit_wire_events && emitting {
                    // The colliding bursts overlap in time; emit MPDU slot
                    // by MPDU slot so capture timestamps stay monotone.
                    let mpdu_stride = self.cfg.timing.frame_length + RIFS + SACK;
                    for k in 0..max_burst {
                        for &(i, burst) in bursts.iter().filter(|&&(_, b)| b > k) {
                            let sof_t = t0 + mpdu_stride * (k as u64);
                            let sof = self.sof_for(i, burst - 1 - k);
                            self.emit(TraceEvent::Sof {
                                t: sof_t,
                                station: i,
                                sof,
                            });
                        }
                        // The destination decodes the robust delimiters and
                        // acknowledges with every PB flagged errored.
                        let ack_t = t0
                            + mpdu_stride * (k as u64)
                            + PREAMBLE
                            + self.cfg.timing.frame_length
                            + RIFS;
                        for &(i, _) in bursts.iter().filter(|&&(_, b)| b > k) {
                            let ack = SelectiveAck::all_errored(
                                Tei::station(i as u32),
                                self.stations[i].num_pbs,
                            );
                            self.emit(TraceEvent::Sack { t: ack_t, ack });
                        }
                    }
                }

                if self.core.is_some() {
                    // Engine-level retry/drop bookkeeping first — it
                    // consumes no RNG draws and only emits `FrameDropped`
                    // events, which the per-object loop also emits before
                    // the `Collision` event — then the batched sweep
                    // redraws in ascending station order.
                    let mut actions = std::mem::take(&mut self.action_buf);
                    actions.clear();
                    for &i in &tx {
                        let dropped = self.stations[i].retry.record_failure(self.cfg.retry);
                        if dropped {
                            self.stations[i].retry = RetryState::new();
                            // Drop the head-of-line unit: a pending
                            // retransmission if any, else a queued frame.
                            if self.stations[i].retx.pop_front().is_none() {
                                self.stations[i].traffic.consume(1);
                            }
                            self.metrics.per_station[i].dropped += 1;
                            self.emit(TraceEvent::FrameDropped { t: t0, station: i });
                            actions.push(SweepAction::Restart);
                        } else {
                            actions.push(SweepAction::Advance);
                        }
                    }
                    if !self.all_saturated {
                        for &i in &tx {
                            let a = self.stations[i].traffic.has_frame()
                                || !self.stations[i].retx.is_empty();
                            if let Some(core) = &mut self.core {
                                core.set_active(i, a);
                            }
                        }
                    }
                    let core = self.core.as_mut().expect("checked above");
                    core.collision_sweep::<TRACK>(
                        &tx,
                        &actions,
                        &mut self.rng,
                        &mut zero,
                        &mut min_bc,
                    );
                    self.action_buf = actions;
                } else {
                    // `tx` is ascending (scan order), so a cursor replaces
                    // the O(|tx|) membership test per station.
                    let mut txi = 0usize;
                    for i in 0..self.stations.len() {
                        if txi < tx.len() && tx[txi] == i {
                            txi += 1;
                            let dropped = self.stations[i].retry.record_failure(self.cfg.retry);
                            if dropped {
                                self.stations[i].retry = RetryState::new();
                                // Drop the head-of-line unit: a pending
                                // retransmission if any, else a queued frame.
                                if self.stations[i].retx.pop_front().is_none() {
                                    self.stations[i].traffic.consume(1);
                                }
                                self.stations[i].process.reset(&mut self.rng);
                                self.metrics.per_station[i].dropped += 1;
                                self.emit(TraceEvent::FrameDropped { t: t0, station: i });
                            } else {
                                self.stations[i].process.on_tx_failure(&mut self.rng);
                            }
                        } else if self.stations[i].traffic.has_frame()
                            || !self.stations[i].retx.is_empty()
                        {
                            self.stations[i].process.on_busy(&mut self.rng);
                        }
                        if TRACK {
                            let st = &self.stations[i];
                            if st.traffic.has_frame() || !st.retx.is_empty() {
                                match st.process.idle_skip() {
                                    Some(0) => zero.push(i),
                                    Some(bc) => min_bc = min_bc.min(bc),
                                    None => poisoned = true,
                                }
                            }
                        }
                    }
                }

                self.t += dur;
                self.metrics.record_collision(&bursts);
                self.metrics.time_collision += dur;
                self.burst_buf = bursts;
                if emitting {
                    self.emit(TraceEvent::Collision {
                        t: t0,
                        stations: tx.clone(),
                    });
                }
                StepKind::Collision
            }
        };

        if self.cfg.emit_snapshots {
            for i in 0..self.stations.len() {
                let snap = match &self.core {
                    Some(core) => core.snapshot(i),
                    None => self.stations[i].process.snapshot(),
                };
                self.emit(TraceEvent::Snapshot {
                    t: self.t,
                    station: i,
                    snap,
                });
            }
        }

        if TRACK {
            self.zero_bc = zero;
            self.min_bc = min_bc;
            self.hint_valid = !poisoned;
        }

        // Keep the transmitter set for `materialize` (the public
        // `step()` builds `StepOutcome::Collision` from it).
        self.tx_buf = tx;
        self.metrics.elapsed = self.t;
        outcome
    }

    /// Step until simulated time exceeds the horizon; returns the metrics.
    ///
    /// When [`EngineConfig::fast_forward`] is on (the default), runs of
    /// guaranteed-idle slots are absorbed in one jump per run. Per-slot
    /// snapshots ([`EngineConfig::emit_snapshots`]) and attached
    /// observers force per-slot stepping, since both need every step
    /// materialized.
    pub fn run(&mut self) -> &Metrics {
        // Cancellable runs poll the token once per slot in dedicated
        // loops; the common no-token case falls through to the exact
        // pre-cancellation loops below, keeping cancellation support
        // zero-cost when unused.
        if self.cfg.cancel.is_some() {
            return self.run_cancellable();
        }
        let fast = self.cfg.fast_forward && !self.cfg.emit_snapshots && self.observers.is_empty();
        // External `step()` calls may have mutated station state since the
        // cache was last folded.
        self.hint_valid = false;
        // The instrumented-or-not decision is loop-invariant: hoist it so
        // the uninstrumented loop compiles exactly as it would without
        // observability support.
        if self.timers.is_none() && self.observers.is_empty() {
            if fast {
                while self.t <= self.cfg.horizon {
                    if self.fast_forward_idle() == 0 {
                        self.step_inner::<true>();
                        self.steps += 1;
                    }
                }
            } else {
                while self.t <= self.cfg.horizon {
                    self.step_inner::<false>();
                    self.steps += 1;
                }
            }
        } else if fast {
            // Batched hot-loop instrumentation: a per-step span guard
            // costs two clock reads — as much as a busy sweep — so the
            // loop is timed as a whole and `engine.step` receives
            // (steps, loop time minus fast-forward time) once at the
            // end: the same totals the per-step guards would have
            // accumulated. The `fast` path never has observers, which
            // are what need per-step materialization.
            let started = std::time::Instant::now();
            let mut stepped = 0u64;
            let mut ff_time = std::time::Duration::ZERO;
            while self.t <= self.cfg.horizon {
                if self.fast_forward_timed(&mut ff_time) > 0 {
                    continue;
                }
                self.step_inner::<true>();
                self.steps += 1;
                stepped += 1;
            }
            if let Some(t) = &self.timers {
                t.step
                    .record_many(stepped, started.elapsed().saturating_sub(ff_time));
                t.steps.add(stepped);
            }
        } else {
            while self.t <= self.cfg.horizon {
                self.step_instrumented::<false>();
            }
        }
        &self.metrics
    }

    /// The cancellable mirror of [`run`](Self::run): the same four
    /// hoisted loop variants with one extra condition — an acquire load
    /// of the [`EngineConfig::cancel`] token — per slot. Idle runs are
    /// still absorbed in a single fast-forward jump before the next
    /// poll, so cancellation latency is bounded by one busy slot plus
    /// one idle run. A run whose token never fires performs the same
    /// mutations in the same order as [`run`](Self::run) and is
    /// bit-identical to it.
    fn run_cancellable(&mut self) -> &Metrics {
        let token = self
            .cfg
            .cancel
            .clone()
            .expect("run_cancellable requires an installed token");
        let fast = self.cfg.fast_forward && !self.cfg.emit_snapshots && self.observers.is_empty();
        self.hint_valid = false;
        if self.timers.is_none() && self.observers.is_empty() {
            if fast {
                while self.t <= self.cfg.horizon && !token.is_cancelled() {
                    if self.fast_forward_idle() == 0 {
                        self.step_inner::<true>();
                        self.steps += 1;
                    }
                }
            } else {
                while self.t <= self.cfg.horizon && !token.is_cancelled() {
                    self.step_inner::<false>();
                    self.steps += 1;
                }
            }
        } else if fast {
            let started = std::time::Instant::now();
            let mut stepped = 0u64;
            let mut ff_time = std::time::Duration::ZERO;
            while self.t <= self.cfg.horizon && !token.is_cancelled() {
                if self.fast_forward_timed(&mut ff_time) > 0 {
                    continue;
                }
                self.step_inner::<true>();
                self.steps += 1;
                stepped += 1;
            }
            if let Some(t) = &self.timers {
                t.step
                    .record_many(stepped, started.elapsed().saturating_sub(ff_time));
                t.steps.add(stepped);
            }
        } else {
            while self.t <= self.cfg.horizon && !token.is_cancelled() {
                self.step_instrumented::<false>();
            }
        }
        &self.metrics
    }

    /// [`fast_forward_idle`](Self::fast_forward_idle) under the
    /// `engine.fast_forward` span timer, crediting skipped slots to the
    /// `engine.steps` and `engine.steps_skipped` counters. The span's
    /// wall time also accumulates into `total` so the run loop can
    /// subtract it from the batched `engine.step` time.
    fn fast_forward_timed(&mut self, total: &mut std::time::Duration) -> u64 {
        // Known busy slot: skip the clock read, nothing will be absorbed.
        if self.hint_valid && !self.zero_bc.is_empty() {
            return 0;
        }
        let started = std::time::Instant::now();
        let skipped = self.fast_forward_idle();
        if skipped > 0 {
            let elapsed = started.elapsed();
            *total += elapsed;
            if let Some(t) = &self.timers {
                t.fast_forward.record(elapsed);
                t.steps.add(skipped);
                t.steps_skipped.add(skipped);
            }
        }
        skipped
    }

    /// Step at most `max_steps` times (examples and tests).
    pub fn run_steps(&mut self, max_steps: usize) -> &Metrics {
        for _ in 0..max_steps {
            if self.t > self.cfg.horizon {
                break;
            }
            self.step();
        }
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, SuccessTrace, VecTraceSink};
    use plc_mac::Backoff1901;
    use rand::rngs::SmallRng;

    fn stations_1901(n: usize, seed: u64) -> Vec<StationSpec<Backoff1901>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| StationSpec::saturated(Backoff1901::default_ca1(&mut rng)))
            .collect()
    }

    fn quick_cfg(horizon_us: f64) -> EngineConfig {
        EngineConfig::with_horizon(Microseconds(horizon_us))
    }

    #[test]
    fn single_station_only_succeeds() {
        let mut e = SlottedEngine::new(quick_cfg(1e6), stations_1901(1, 1), 1);
        let m = e.run().clone();
        assert!(m.successes > 0);
        assert_eq!(m.collision_events, 0);
        assert_eq!(m.collision_probability(), 0.0);
        assert!(m.elapsed.as_micros() > 1e6);
    }

    #[test]
    fn two_stations_collide_sometimes() {
        let mut e = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 2), 2);
        let m = e.run().clone();
        assert!(m.successes > 0);
        assert!(m.collision_events > 0);
        let p = m.collision_probability();
        assert!(
            p > 0.02 && p < 0.2,
            "N=2 collision probability ≈ 0.074, got {p}"
        );
    }

    #[test]
    fn matches_reference_simulator_statistically() {
        // Engine with default knobs vs the paper port, N = 3, same horizon.
        let horizon = 2e7;
        let mut e = SlottedEngine::new(quick_cfg(horizon), stations_1901(3, 3), 3);
        let em = e.run().clone();
        let pr = crate::paper::PaperSim::with_n_and_time(3, horizon)
            .run(3)
            .unwrap();
        assert!(
            (em.collision_probability() - pr.collision_pr).abs() < 0.01,
            "engine {} vs reference {}",
            em.collision_probability(),
            pr.collision_pr
        );
        let et = em.norm_throughput(Microseconds(2050.0));
        assert!(
            (et - pr.norm_throughput).abs() < 0.02,
            "engine throughput {et} vs reference {}",
            pr.norm_throughput
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(3, 9), 9);
            e.run().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wire_events_are_consistent() {
        let sink = Arc::new(Mutex::new(CountingSink::default()));
        let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(3, 4), 4);
        e.add_sink(sink.clone());
        let m = e.run().clone();
        let c = *sink.lock();
        assert_eq!(c.successes, m.successes);
        assert_eq!(c.collisions, m.collision_events);
        assert_eq!(c.idle_slots, m.idle_slots);
        // One SoF per success (single bursts) + one per colliding station;
        // every SoF gets a SACK (collided ones all-errored).
        assert_eq!(c.sofs, m.successes + m.collided_tx);
        assert_eq!(c.sacks, c.sofs);
    }

    #[test]
    fn success_trace_matches_metrics() {
        let tr = Arc::new(Mutex::new(SuccessTrace::new()));
        let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(2, 5), 5);
        e.add_sink(tr.clone());
        let m = e.run().clone();
        let winners = tr.lock().winners.clone();
        assert_eq!(winners.len() as u64, m.successes);
        for s in 0..2 {
            let count = winners.iter().filter(|&&w| w == s).count() as u64;
            assert_eq!(count, m.per_station[s].successes);
        }
    }

    #[test]
    fn burst_policy_accelerates_delivery() {
        let single = {
            let mut e = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 6), 6);
            e.run().clone()
        };
        let burst2 = {
            let mut cfg = quick_cfg(5e6);
            cfg.burst = BurstPolicy::INT6300;
            let mut e = SlottedEngine::new(cfg, stations_1901(2, 6), 6);
            e.run().clone()
        };
        assert!(
            burst2.norm_throughput(Microseconds(2050.0))
                > single.norm_throughput(Microseconds(2050.0)),
            "2-MPDU bursts amortize contention overhead"
        );
        assert_eq!(burst2.mpdus_ok, 2 * burst2.successes);
    }

    #[test]
    fn retry_limit_drops_frames() {
        let mut cfg = quick_cfg(1e7);
        cfg.retry = RetryPolicy::Limited { max_attempts: 1 };
        // Many stations to force collisions.
        let mut e = SlottedEngine::new(cfg, stations_1901(6, 7), 7);
        let m = e.run().clone();
        let drops: u64 = m.per_station.iter().map(|s| s.dropped).sum();
        assert!(
            drops > 0,
            "with a 1-attempt limit every collision drops a frame"
        );
        assert_eq!(
            drops, m.collided_tx,
            "every collision participation is a drop"
        );
    }

    #[test]
    fn unsaturated_station_is_quiet_at_low_load() {
        // One saturated + one nearly-silent Poisson station.
        let mut rng = SmallRng::seed_from_u64(8);
        let specs = vec![
            StationSpec::saturated(Backoff1901::default_ca1(&mut rng)),
            StationSpec {
                traffic: TrafficModel::Poisson {
                    rate_per_us: 1e-6,
                    queue_cap: 64,
                },
                ..StationSpec::saturated(Backoff1901::default_ca1(&mut rng))
            },
        ];
        let mut e = SlottedEngine::new(quick_cfg(5e6), specs, 8);
        let m = e.run().clone();
        assert!(m.per_station[0].successes > 100);
        assert!(
            m.per_station[1].successes < m.per_station[0].successes / 10,
            "a 1-frame-per-second source must win far less than a saturated one"
        );
        // Its few frames do eventually get through.
        assert!(m.per_station[1].successes > 0);
    }

    #[test]
    fn snapshots_emitted_when_enabled() {
        let sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let mut cfg = quick_cfg(1e5);
        cfg.emit_snapshots = true;
        let mut e = SlottedEngine::new(cfg, stations_1901(2, 10), 10);
        e.add_sink(sink.clone());
        e.run_steps(10);
        let events = &sink.lock().events;
        let snaps = events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::Snapshot { .. }))
            .count();
        assert_eq!(snaps, 2 * 10, "two snapshots per step");
    }

    #[test]
    fn step_outcomes_advance_time_correctly() {
        let mut e = SlottedEngine::new(quick_cfg(1e6), stations_1901(2, 11), 11);
        let timing = MacTiming::paper_default();
        // Time is accumulated in f64, so `(t + Δ) − t` is only Δ up to
        // one ulp of the running clock; compare with a tolerance instead
        // of bitwise equality.
        let close = |a: Microseconds, b: Microseconds| (a.as_micros() - b.as_micros()).abs() < 1e-9;
        loop {
            let before = e.time();
            match e.step() {
                StepOutcome::Idle => {
                    assert!(close(e.time() - before, timing.slot));
                }
                StepOutcome::Success { burst, .. } => {
                    assert_eq!(burst, 1);
                    assert!(close(e.time() - before, timing.ts));
                    break;
                }
                StepOutcome::Collision { stations } => {
                    assert!(stations.len() >= 2);
                    assert!(close(e.time() - before, timing.tc));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn empty_station_set_rejected() {
        let _ = SlottedEngine::<Backoff1901>::new(quick_cfg(1e6), vec![], 0);
    }

    #[test]
    fn beacons_fire_on_schedule_and_suspend_contention() {
        let mut cfg = quick_cfg(1e6); // 1 s
        cfg.beacons = Some(BeaconSchedule::standard_50hz());
        let mut e = SlottedEngine::new(cfg, stations_1901(2, 31), 31);
        let m = e.run().clone();
        // One beacon per 40 ms, starting at t = 40 ms: 1 s → 25 beacons.
        assert!(
            (24..=26).contains(&(m.beacons as i32)),
            "{} beacons",
            m.beacons
        );
        assert!((m.time_beacon.as_micros() - m.beacons as f64 * 110.48).abs() < 1e-6);
        // Contention still works around the beacons.
        assert!(m.successes > 100);
        // Time decomposition now includes beacon airtime.
        let accounted =
            m.time_idle + m.time_success + m.time_collision + m.time_prs + m.time_beacon;
        assert!((accounted.as_micros() - m.elapsed.as_micros()).abs() < 1e-6);
    }

    #[test]
    fn beacons_cost_little_throughput() {
        let without = {
            let mut e = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 32), 32);
            e.run().norm_throughput(Microseconds(2050.0))
        };
        let with = {
            let mut cfg = quick_cfg(5e6);
            cfg.beacons = Some(BeaconSchedule::standard_50hz());
            let mut e = SlottedEngine::new(cfg, stations_1901(2, 32), 32);
            e.run().norm_throughput(Microseconds(2050.0))
        };
        // 110.48 µs per 40 ms ≈ 0.28% overhead.
        assert!(with < without);
        assert!(
            without - with < 0.02,
            "beacon cost {} too high",
            without - with
        );
    }

    #[test]
    #[should_panic(expected = "PB error probability")]
    fn error_prob_of_one_rejected() {
        let mut cfg = quick_cfg(1e6);
        cfg.pb_error_prob = 1.0;
        let _ = SlottedEngine::new(cfg, stations_1901(1, 0), 0);
    }

    #[test]
    fn error_free_channel_has_no_pb_errors() {
        let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(2, 21), 21);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert_eq!(s.pbs_errored, 0);
        assert_eq!(s.mpdus_partial, 0);
        assert_eq!(m.frames_completed, m.successes, "one frame per clean win");
        // Goodput equals normalized throughput without errors.
        assert!(
            (m.goodput() - m.norm_throughput(Microseconds(2050.0))).abs() < 1e-9,
            "goodput {} vs throughput {}",
            m.goodput(),
            m.norm_throughput(Microseconds(2050.0))
        );
    }

    #[test]
    fn channel_errors_trigger_selective_retransmission() {
        let mut cfg = quick_cfg(5e6);
        cfg.pb_error_prob = 0.2;
        let mut e = SlottedEngine::new(cfg, stations_1901(2, 22), 22);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert!(s.pbs_errored > 0, "a 20% PB error rate must produce errors");
        assert!(s.mpdus_partial > 0, "partial MPDUs must occur");
        assert!(
            m.frames_completed > 0,
            "frames still complete via retransmission"
        );
        // Retransmitting only errored PBs still delivers everything
        // eventually: delivered PBs exceed errored ones by far at p = 0.2.
        assert!(s.pbs_delivered > s.pbs_errored);
        // Goodput strictly below the error-free run's.
        let clean = {
            let mut e2 = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 22), 22);
            e2.run().goodput()
        };
        assert!(
            m.goodput() < clean,
            "errors must cost goodput: {} vs {clean}",
            m.goodput()
        );
    }

    #[test]
    fn pb_conservation_under_errors() {
        // Every PB put on the wire in a success is either delivered or
        // errored-and-requeued; across the run, delivered + still-pending
        // errored = transmitted.
        let mut cfg = quick_cfg(3e6);
        cfg.pb_error_prob = 0.3;
        let mut e = SlottedEngine::new(cfg, stations_1901(1, 23), 23);
        let m = e.run().clone();
        let s = &m.per_station[0];
        // Each completed frame delivered exactly num_pbs = 4 clean PBs.
        assert_eq!(
            s.pbs_delivered,
            4 * m.frames_completed + (s.pbs_delivered - 4 * m.frames_completed),
        );
        assert!(s.pbs_delivered >= 4 * m.frames_completed);
        // And the per-frame payload credit is consistent with goodput.
        assert!(m.payload_delivered_us > 0.0);
        assert!((m.payload_delivered_us - 2050.0 * s.pbs_delivered as f64 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn noise_burst_covering_horizon_jams_everything() {
        let mut cfg = quick_cfg(1e6);
        cfg.noise = vec![plc_faults::NoiseBurst {
            start_us: 0.0,
            duration_us: 2e6,
        }];
        let mut e = SlottedEngine::new(cfg, stations_1901(1, 31), 31);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert!(s.pbs_errored > 0, "the jammer must error PBs");
        assert_eq!(s.pbs_delivered, 0, "nothing survives a full-horizon burst");
        assert_eq!(m.frames_completed, 0);
    }

    #[test]
    fn empty_noise_schedule_changes_nothing() {
        let mut cfg = quick_cfg(2e6);
        cfg.noise = Vec::new();
        let mut e = SlottedEngine::new(cfg, stations_1901(3, 32), 32);
        let jam_free = e.run().clone();
        let mut e2 = SlottedEngine::new(quick_cfg(2e6), stations_1901(3, 32), 32);
        assert_eq!(&jam_free, e2.run());
    }

    #[test]
    fn bounded_noise_burst_only_hits_its_window() {
        // A burst over the first half of the horizon: errors happen, but
        // the second half still completes frames.
        let mut cfg = quick_cfg(2e6);
        cfg.noise = vec![plc_faults::NoiseBurst {
            start_us: 0.0,
            duration_us: 1e6,
        }];
        let mut e = SlottedEngine::new(cfg, stations_1901(1, 33), 33);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert!(s.pbs_errored > 0);
        assert!(m.frames_completed > 0, "clean half must deliver frames");
        let clean = {
            let mut e2 = SlottedEngine::new(quick_cfg(2e6), stations_1901(1, 33), 33);
            e2.run().frames_completed
        };
        assert!(m.frames_completed < clean);
    }
}
