//! The modular slotted simulation engine.
//!
//! [`SlottedEngine`] implements the same channel dynamics as the paper's
//! reference simulator — a single contention domain where each step is
//! either an idle slot (`σ`), a successful transmission (`Ts`) or a
//! collision (`Tc`) — but in extensible form:
//!
//! * generic over the backoff process, so IEEE 1901, 802.11 DCF and the
//!   ablation variants run under identical dynamics (use
//!   [`plc_mac::AnyBackoff`] to mix protocols in one channel);
//! * per-station traffic models (saturated, Poisson, on/off);
//! * MPDU bursting with per-MPDU SoF/SACK wire events, which is what the
//!   emulated testbed's sniffer captures;
//! * retry policies;
//! * trace sinks and per-station metrics.
//!
//! With the default knobs (saturated stations, single-MPDU bursts,
//! infinite retries) the engine is statistically indistinguishable from
//! the reference port in [`crate::paper`] — an integration test asserts
//! exactly that.

use crate::bursting::BurstPolicy;
use crate::metrics::Metrics;
use crate::trace::{StationId, TraceEvent, TraceSink};
use crate::traffic::{TrafficModel, TrafficState};
use parking_lot::Mutex;
use plc_core::addr::Tei;
use plc_core::frame::{SelectiveAck, SofDelimiter};
use plc_core::priority::Priority;
use plc_core::timing::{MacTiming, MAX_BURST, PREAMBLE, RIFS, SACK};
use plc_core::units::Microseconds;
use plc_mac::process::BackoffProcess;
use plc_mac::retry::{RetryPolicy, RetryState};
use plc_obs::{EngineObs, SharedObserver, StationObs};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A trace sink shared between the engine and its owner.
pub type SharedSink = Arc<Mutex<dyn TraceSink + Send>>;

/// An observer attached to the engine, firing every `every` steps.
struct ObserverSlot {
    observer: SharedObserver,
    every: u64,
}

/// Hot-path span timers installed by [`SlottedEngine::instrument`].
struct EngineTimers {
    step: plc_obs::SpanTimer,
    pb_draw: plc_obs::SpanTimer,
    steps: plc_obs::Counter,
}

/// Beacon scheduling: the CCo transmits one beacon per period; contention
/// is *suspended* (not sensed busy — backoff state freezes) while the
/// beacon occupies the medium, per the standard's region structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeaconSchedule {
    /// Beacon period (HomePlug AV: two mains cycles, 40 ms at 50 Hz).
    pub period: Microseconds,
    /// Beacon airtime.
    pub duration: Microseconds,
}

impl BeaconSchedule {
    /// The standard 50 Hz-mains schedule.
    pub fn standard_50hz() -> Self {
        BeaconSchedule {
            period: plc_core::timing::BEACON_PERIOD_50HZ,
            duration: plc_core::timing::BEACON_AIRTIME,
        }
    }
}

/// Engine-level configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Channel timing (slot, Ts, Tc, frame length).
    pub timing: MacTiming,
    /// Simulation horizon: the engine steps until simulated time exceeds
    /// this value (matching the reference's `while t <= sim_time`).
    pub horizon: Microseconds,
    /// Burst policy applied on contention wins.
    pub burst: BurstPolicy,
    /// Retry policy for failed transmissions.
    pub retry: RetryPolicy,
    /// Per-physical-block channel error probability. 0 (the default)
    /// reproduces the paper's error-free assumption; a positive value
    /// exercises the §4.1 mechanism the paper leaves unmodelled: errored
    /// PBs are flagged in the selective ACK and *only those blocks* are
    /// retransmitted in a later contention win (`plc-phy` derives this
    /// probability from a synthetic channel).
    pub pb_error_prob: f64,
    /// Emit per-station [`TraceEvent::Snapshot`] events after every step
    /// (needed to regenerate Figure 1; costly on long runs).
    pub emit_snapshots: bool,
    /// Emit [`TraceEvent::Sof`]/[`TraceEvent::Sack`] wire events (needed by
    /// the testbed sniffer; harmless otherwise).
    pub emit_wire_events: bool,
    /// Optional beacon schedule (`None` = the paper's pure-CSMA model).
    pub beacons: Option<BeaconSchedule>,
    /// Impulse-noise bursts (sorted by start time): while one is active,
    /// every physical block of every transmitted MPDU errors, without
    /// consuming channel-RNG draws. Empty = the paper's clean medium.
    pub noise: Vec<plc_faults::NoiseBurst>,
}

impl EngineConfig {
    /// Paper defaults: CA1 timing, 500 s horizon, single-MPDU bursts,
    /// infinite retries, no snapshots, wire events on.
    pub fn paper_default() -> Self {
        EngineConfig {
            timing: MacTiming::paper_default(),
            horizon: plc_core::timing::DEFAULT_SIM_TIME,
            burst: BurstPolicy::Single,
            retry: RetryPolicy::Infinite,
            pb_error_prob: 0.0,
            emit_snapshots: false,
            emit_wire_events: true,
            beacons: None,
            noise: Vec::new(),
        }
    }

    /// Same defaults with a custom horizon.
    pub fn with_horizon(horizon: Microseconds) -> Self {
        EngineConfig {
            horizon,
            ..Self::paper_default()
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Specification of one station.
#[derive(Debug, Clone)]
pub struct StationSpec<P> {
    /// The backoff process (already constructed, i.e. already at stage 0
    /// with BC drawn).
    pub process: P,
    /// Priority carried in this station's SoF LinkID field. The
    /// single-class engine does not run priority resolution; this tags the
    /// wire events (data at CA1, MMEs at CA2/CA3 in the testbed).
    pub priority: Priority,
    /// Arrival model.
    pub traffic: TrafficModel,
    /// Physical blocks per MPDU (SoF bookkeeping; 4 PBs ≈ one 2 kB frame).
    pub num_pbs: u16,
    /// Per-station PB error probability override (`None` = the engine's
    /// global `pb_error_prob`). Lets harnesses model per-link channel
    /// quality and tone-map staleness.
    pub pb_error_prob: Option<f64>,
}

impl<P> StationSpec<P> {
    /// A saturated CA1 station around the given process.
    pub fn saturated(process: P) -> Self {
        StationSpec {
            process,
            priority: Priority::CA1,
            traffic: TrafficModel::Saturated,
            num_pbs: 4,
            pb_error_prob: None,
        }
    }
}

struct StationCtx<P> {
    process: P,
    priority: Priority,
    traffic: TrafficState,
    retry: RetryState,
    num_pbs: u16,
    pb_error_prob: Option<f64>,
    /// PB counts of partially-errored MPDUs awaiting selective
    /// retransmission (FIFO; serviced before fresh frames).
    retx: std::collections::VecDeque<u16>,
}

/// What one engine step did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The medium was idle for one slot (or no station had traffic).
    Idle,
    /// One station transmitted a burst successfully.
    Success {
        /// The winner.
        station: StationId,
        /// MPDUs in the burst.
        burst: usize,
    },
    /// Two or more stations collided.
    Collision {
        /// The colliding stations.
        stations: Vec<StationId>,
    },
}

/// The slotted single-contention-domain engine. See the [module
/// docs](self).
pub struct SlottedEngine<P: BackoffProcess> {
    cfg: EngineConfig,
    stations: Vec<StationCtx<P>>,
    rng: SmallRng,
    t: Microseconds,
    metrics: Metrics,
    sinks: Vec<SharedSink>,
    /// Scratch buffer of transmitting stations (avoids per-step allocation).
    tx_buf: Vec<StationId>,
    /// Time of the next scheduled beacon, when beacons are enabled.
    next_beacon: Microseconds,
    /// Steps executed so far (one per [`step`](Self::step) call).
    steps: u64,
    observers: Vec<ObserverSlot>,
    timers: Option<EngineTimers>,
    /// Cursor into `cfg.noise` (time is monotone, so passed bursts never
    /// come back).
    noise_idx: usize,
}

impl<P: BackoffProcess> SlottedEngine<P> {
    /// Build an engine over the given stations. `seed` drives all engine
    /// randomness (traffic arrivals, burst draws) — note the *processes*
    /// were seeded by their own constructor RNGs, so construct them from
    /// the same master seed for full reproducibility (the
    /// [`crate::runner`] builder does this).
    pub fn new(cfg: EngineConfig, stations: Vec<StationSpec<P>>, seed: u64) -> Self {
        assert!(!stations.is_empty(), "need at least one station");
        assert!(cfg.timing.is_valid(), "invalid MacTiming");
        assert!(
            (0.0..1.0).contains(&cfg.pb_error_prob),
            "PB error probability must be in [0, 1)"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = stations.len();
        let stations = stations
            .into_iter()
            .map(|s| StationCtx {
                process: s.process,
                priority: s.priority,
                traffic: TrafficState::new(s.traffic, &mut rng),
                retry: RetryState::new(),
                num_pbs: s.num_pbs,
                pb_error_prob: s.pb_error_prob,
                retx: std::collections::VecDeque::new(),
            })
            .collect();
        let next_beacon = cfg
            .beacons
            .map(|b| b.period)
            .unwrap_or(Microseconds(f64::INFINITY));
        SlottedEngine {
            cfg,
            stations,
            rng,
            t: Microseconds::ZERO,
            metrics: Metrics::new(n),
            sinks: Vec::new(),
            tx_buf: Vec::with_capacity(n),
            next_beacon,
            steps: 0,
            observers: Vec::new(),
            timers: None,
            noise_idx: 0,
        }
    }

    /// Subscribe a trace sink.
    pub fn add_sink(&mut self, sink: SharedSink) {
        self.sinks.push(sink);
    }

    /// Attach a periodic observer: it receives an [`EngineObs`] snapshot
    /// every `every_steps` engine steps. Observers are read-only — they
    /// never touch the engine's RNG stream, so attaching one cannot
    /// change the simulation's results.
    pub fn add_observer(&mut self, observer: SharedObserver, every_steps: u64) {
        assert!(every_steps > 0, "observer interval must be positive");
        self.observers.push(ObserverSlot {
            observer,
            every: every_steps,
        });
    }

    /// Install hot-path instrumentation into `registry`: the span timers
    /// `engine.step` (whole-step wall time) and `engine.pb_draw`
    /// (per-MPDU channel-error sampling), plus the counter
    /// `engine.steps`. Without this call the hot loop pays a single
    /// branch per step for observability.
    pub fn instrument(&mut self, registry: &plc_obs::Registry) {
        self.timers = Some(EngineTimers {
            step: registry.timer("engine.step"),
            pb_draw: registry.timer("engine.pb_draw"),
            steps: registry.counter("engine.steps"),
        });
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current simulated time.
    pub fn time(&self) -> Microseconds {
        self.t
    }

    /// Metrics so far. `elapsed` is kept up to date after every step.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Counter snapshot of station `i`.
    pub fn snapshot(&self, i: StationId) -> plc_mac::process::BackoffSnapshot {
        self.stations[i].process.snapshot()
    }

    /// Number of stations.
    pub fn num_stations(&self) -> usize {
        self.stations.len()
    }

    /// Sample how many of station `i`'s `pbs` physical blocks error on the
    /// channel (per-station override, else the global probability).
    fn sample_pb_errors(&mut self, station: StationId, pbs: u16) -> u16 {
        let p = self.stations[station]
            .pb_error_prob
            .unwrap_or(self.cfg.pb_error_prob);
        if p == 0.0 {
            return 0;
        }
        let _draw_span = self.timers.as_ref().map(|t| t.pb_draw.start());
        let mut errored = 0u16;
        for _ in 0..pbs {
            if rand::Rng::gen::<f64>(&mut self.rng) < p {
                errored += 1;
            }
        }
        errored
    }

    /// Whether an impulse-noise burst is active at `t`. Advances a
    /// monotone cursor; zero cost (one slice-length check) when the
    /// config has no noise.
    fn noise_active(&mut self, t: Microseconds) -> bool {
        let t = t.as_micros();
        while self
            .cfg
            .noise
            .get(self.noise_idx)
            .is_some_and(|b| t >= b.end_us())
        {
            self.noise_idx += 1;
        }
        self.cfg
            .noise
            .get(self.noise_idx)
            .is_some_and(|b| b.contains(t))
    }

    /// Update station `i`'s per-link PB error probability mid-run — the
    /// hook tone-map adaptation harnesses use to model channel drift and
    /// re-estimation.
    pub fn set_station_pb_error(&mut self, station: StationId, p: f64) {
        assert!(
            (0.0..1.0).contains(&p),
            "PB error probability must be in [0, 1)"
        );
        self.stations[station].pb_error_prob = Some(p);
    }

    fn emit(&mut self, ev: TraceEvent) {
        for sink in &self.sinks {
            sink.lock().on_event(&ev);
        }
    }

    /// The SoF delimiter station `i` puts on the wire, `remaining` MPDUs
    /// following in the burst.
    fn sof_for(&self, i: StationId, remaining: usize) -> SofDelimiter {
        let st = &self.stations[i];
        // Frame-length field is in 1.28 µs units.
        let fl = (self.cfg.timing.frame_length.as_micros() / 1.28).round();
        SofDelimiter {
            src: Tei::station(i as u32),
            dst: Tei::station(self.stations.len() as u32), // destination D: one past the senders
            priority: st.priority,
            mpdu_cnt: remaining as u8,
            num_pbs: st.num_pbs,
            fl_units: fl.min(u16::MAX as f64) as u16,
        }
    }

    /// Execute one step: idle slot, success or collision. Advances
    /// simulated time accordingly.
    pub fn step(&mut self) -> StepOutcome {
        // Keep the uninstrumented path free of Drop locals (span guards)
        // so the optimizer sees the same hot loop as without
        // observability; it pays exactly this one branch.
        if self.timers.is_none() && self.observers.is_empty() {
            let outcome = self.step_inner();
            self.steps += 1;
            return outcome;
        }
        self.step_instrumented()
    }

    #[cold]
    fn step_instrumented(&mut self) -> StepOutcome {
        let _step_span = self.timers.as_ref().map(|t| t.step.start());
        let outcome = self.step_inner();
        self.steps += 1;
        if let Some(t) = &self.timers {
            t.steps.inc();
        }
        if !self.observers.is_empty() {
            self.notify_observers();
        }
        outcome
    }

    /// Build the plain-data snapshot observers receive.
    fn engine_obs(&self) -> EngineObs {
        EngineObs {
            t_us: self.t.as_micros(),
            step: self.steps,
            idle_slots: self.metrics.idle_slots,
            successes: self.metrics.successes,
            collision_events: self.metrics.collision_events,
            stations: self
                .stations
                .iter()
                .enumerate()
                .map(|(i, st)| {
                    let snap = st.process.snapshot();
                    StationObs {
                        station: i,
                        stage: snap.stage,
                        cw: snap.cw,
                        bc: snap.bc,
                        dc: snap.dc,
                        bpc: snap.bpc,
                        successes: self.metrics.per_station[i].successes,
                        collisions: self.metrics.per_station[i].collisions,
                    }
                })
                .collect(),
        }
    }

    fn notify_observers(&self) {
        let mut obs: Option<EngineObs> = None;
        for slot in &self.observers {
            if self.steps.is_multiple_of(slot.every) {
                let snapshot = obs.get_or_insert_with(|| self.engine_obs());
                slot.observer.lock().on_engine(snapshot);
            }
        }
    }

    // Force-inlined into both `step` paths: with two call sites the
    // inliner otherwise outlines this hot body, costing ~5-15% engine
    // throughput (measured on the saturated-1901 workloads).
    #[inline(always)]
    fn step_inner(&mut self) -> StepOutcome {
        // The CCo's beacon takes the medium at its scheduled time;
        // contention is suspended (backoff state frozen) for its airtime.
        if let Some(b) = self.cfg.beacons {
            if self.t >= self.next_beacon {
                let tb = self.t;
                self.t += b.duration;
                self.next_beacon += b.period;
                self.metrics.beacons += 1;
                self.metrics.time_beacon += b.duration;
                self.metrics.elapsed = self.t;
                self.emit(TraceEvent::Beacon { t: tb });
                return StepOutcome::Idle;
            }
        }
        let t0 = self.t;

        // Deliver traffic arrivals up to now; newly-backlogged stations
        // start a fresh stage-0 backoff.
        for st in &mut self.stations {
            if !st.traffic.is_saturated() && st.traffic.advance_to(t0.as_micros(), &mut self.rng) {
                st.process.reset(&mut self.rng);
            }
        }

        // Who transmits this slot? A station contends while it has fresh
        // frames queued or errored PBs awaiting retransmission.
        self.tx_buf.clear();
        for (i, st) in self.stations.iter().enumerate() {
            if (st.traffic.has_frame() || !st.retx.is_empty()) && st.process.wants_tx() {
                self.tx_buf.push(i);
            }
        }
        let tx = std::mem::take(&mut self.tx_buf);

        let outcome = match tx.len() {
            0 => {
                for st in &mut self.stations {
                    if st.traffic.has_frame() || !st.retx.is_empty() {
                        st.process.on_idle_slot(&mut self.rng);
                    }
                }
                self.t += self.cfg.timing.slot;
                self.metrics.idle_slots += 1;
                self.metrics.time_idle += self.cfg.timing.slot;
                self.emit(TraceEvent::IdleSlot { t: t0 });
                StepOutcome::Idle
            }
            1 => {
                let w = tx[0];
                // Sendable units: errored-PB retransmissions first, then
                // fresh frames from the queue.
                let retx_ready = self.stations[w].retx.len();
                let fresh_ready = self.stations[w].traffic.backlog();
                let available = retx_ready.saturating_add(fresh_ready).min(MAX_BURST);
                let burst = self.cfg.burst.draw(&mut self.rng, available);
                let dur = self.cfg.timing.burst_duration(burst);
                // Impulse noise wipes every PB of the transmission without
                // consuming channel-RNG draws (the fault layer never
                // touches simulation streams).
                let jammed = self.noise_active(t0);

                // Per-MPDU channel outcome (selective-ACK granularity).
                let mut fresh_consumed = 0usize;
                let mut clean_mpdus = 0usize;
                let mut outcomes: Vec<(u16, u16)> = Vec::with_capacity(burst); // (pbs, errored)
                for _ in 0..burst {
                    let (pbs, is_fresh) = match self.stations[w].retx.pop_front() {
                        Some(pbs) => (pbs, false),
                        None => {
                            fresh_consumed += 1;
                            (self.stations[w].num_pbs, true)
                        }
                    };
                    let errored = if jammed {
                        pbs
                    } else {
                        self.sample_pb_errors(w, pbs)
                    };
                    outcomes.push((pbs, errored));
                    let s = &mut self.metrics.per_station[w];
                    s.pbs_delivered += (pbs - errored) as u64;
                    s.pbs_errored += errored as u64;
                    self.metrics.payload_delivered_us += self.cfg.timing.frame_length.as_micros()
                        * (pbs - errored) as f64
                        / self.stations[w].num_pbs as f64;
                    if errored == 0 {
                        self.metrics.frames_completed += 1;
                        self.metrics.per_station[w].frames_completed += 1;
                        if is_fresh {
                            // A fresh full MPDU through error-free: the
                            // clean delivery `record_success` credits.
                            clean_mpdus += 1;
                        } else {
                            // A retransmission that finished the frame is a
                            // partial MPDU delivery, not a clean full MPDU.
                            self.metrics.per_station[w].mpdus_partial += 1;
                        }
                    } else {
                        self.stations[w].retx.push_back(errored);
                        self.metrics.per_station[w].mpdus_partial += 1;
                    }
                }

                if self.cfg.emit_wire_events {
                    // One SoF per MPDU; SACK follows each payload after RIFS.
                    let mpdu_stride = self.cfg.timing.frame_length + RIFS + SACK;
                    for (k, &(pbs, errored)) in outcomes.iter().enumerate() {
                        let sof_t = t0 + mpdu_stride * (k as u64);
                        let mut sof = self.sof_for(w, burst - 1 - k);
                        sof.num_pbs = pbs;
                        self.emit(TraceEvent::Sof {
                            t: sof_t,
                            station: w,
                            sof,
                        });
                        let ack_t = sof_t + PREAMBLE + self.cfg.timing.frame_length + RIFS;
                        let mut ack = SelectiveAck::all_good(Tei::station(w as u32), pbs);
                        for slot in ack.pb_ok.iter_mut().take(errored as usize) {
                            *slot = false;
                        }
                        self.emit(TraceEvent::Sack { t: ack_t, ack });
                    }
                }

                // Winner resets; everyone else with traffic sensed busy.
                for i in 0..self.stations.len() {
                    if i == w {
                        self.stations[i].process.on_tx_success(&mut self.rng);
                        self.stations[i].retry = RetryState::new();
                        self.stations[i].traffic.consume(fresh_consumed);
                    } else if self.stations[i].traffic.has_frame()
                        || !self.stations[i].retx.is_empty()
                    {
                        self.stations[i].process.on_busy(&mut self.rng);
                    }
                }

                self.t += dur;
                self.metrics.record_success(w, t0, clean_mpdus);
                self.metrics.time_success += dur;
                self.emit(TraceEvent::Success {
                    t: t0,
                    station: w,
                    burst,
                });
                StepOutcome::Success { station: w, burst }
            }
            _ => {
                // Every colliding station still transmits its full burst —
                // the transmitter only learns of the collision from the
                // all-errored SACKs, so every MPDU goes out and every MPDU
                // is acknowledged-with-errors. This is what keeps the
                // testbed's per-MPDU ΣCᵢ/ΣAᵢ equal to the event-level
                // collision probability despite 2-MPDU bursts.
                let bursts: Vec<(usize, usize)> = tx
                    .iter()
                    .map(|&i| {
                        let available = (self.stations[i].retx.len()
                            + self.stations[i].traffic.backlog().min(MAX_BURST))
                        .clamp(1, MAX_BURST);
                        (i, self.cfg.burst.draw(&mut self.rng, available))
                    })
                    .collect();
                let max_burst = bursts.iter().map(|&(_, b)| b).max().unwrap_or(1);
                // The channel is occupied for the longest burst plus the
                // collision-detection overhead (Tc − Ts); equals Tc for
                // single-MPDU transmissions.
                let dur = self.cfg.timing.burst_duration(max_burst) + self.cfg.timing.tc
                    - self.cfg.timing.ts;
                if self.cfg.emit_wire_events {
                    // The colliding bursts overlap in time; emit MPDU slot
                    // by MPDU slot so capture timestamps stay monotone.
                    let mpdu_stride = self.cfg.timing.frame_length + RIFS + SACK;
                    for k in 0..max_burst {
                        for &(i, burst) in bursts.iter().filter(|&&(_, b)| b > k) {
                            let sof_t = t0 + mpdu_stride * (k as u64);
                            let sof = self.sof_for(i, burst - 1 - k);
                            self.emit(TraceEvent::Sof {
                                t: sof_t,
                                station: i,
                                sof,
                            });
                        }
                        // The destination decodes the robust delimiters and
                        // acknowledges with every PB flagged errored.
                        let ack_t = t0
                            + mpdu_stride * (k as u64)
                            + PREAMBLE
                            + self.cfg.timing.frame_length
                            + RIFS;
                        for &(i, _) in bursts.iter().filter(|&&(_, b)| b > k) {
                            let ack = SelectiveAck::all_errored(
                                Tei::station(i as u32),
                                self.stations[i].num_pbs,
                            );
                            self.emit(TraceEvent::Sack { t: ack_t, ack });
                        }
                    }
                }

                for i in 0..self.stations.len() {
                    if tx.contains(&i) {
                        let dropped = self.stations[i].retry.record_failure(self.cfg.retry);
                        if dropped {
                            self.stations[i].retry = RetryState::new();
                            // Drop the head-of-line unit: a pending
                            // retransmission if any, else a queued frame.
                            if self.stations[i].retx.pop_front().is_none() {
                                self.stations[i].traffic.consume(1);
                            }
                            self.stations[i].process.reset(&mut self.rng);
                            self.metrics.per_station[i].dropped += 1;
                            self.emit(TraceEvent::FrameDropped { t: t0, station: i });
                        } else {
                            self.stations[i].process.on_tx_failure(&mut self.rng);
                        }
                    } else if self.stations[i].traffic.has_frame()
                        || !self.stations[i].retx.is_empty()
                    {
                        self.stations[i].process.on_busy(&mut self.rng);
                    }
                }

                self.t += dur;
                self.metrics.record_collision(&bursts);
                self.metrics.time_collision += dur;
                self.emit(TraceEvent::Collision {
                    t: t0,
                    stations: tx.clone(),
                });
                StepOutcome::Collision {
                    stations: tx.clone(),
                }
            }
        };

        if self.cfg.emit_snapshots {
            for i in 0..self.stations.len() {
                let snap = self.stations[i].process.snapshot();
                self.emit(TraceEvent::Snapshot {
                    t: self.t,
                    station: i,
                    snap,
                });
            }
        }

        self.tx_buf = tx;
        self.tx_buf.clear();
        self.metrics.elapsed = self.t;
        outcome
    }

    /// Step until simulated time exceeds the horizon; returns the metrics.
    pub fn run(&mut self) -> &Metrics {
        // The instrumented-or-not decision is loop-invariant: hoist it so
        // the uninstrumented loop compiles exactly as it would without
        // observability support.
        if self.timers.is_none() && self.observers.is_empty() {
            while self.t <= self.cfg.horizon {
                self.step_inner();
                self.steps += 1;
            }
        } else {
            while self.t <= self.cfg.horizon {
                self.step_instrumented();
            }
        }
        &self.metrics
    }

    /// Step at most `max_steps` times (examples and tests).
    pub fn run_steps(&mut self, max_steps: usize) -> &Metrics {
        for _ in 0..max_steps {
            if self.t > self.cfg.horizon {
                break;
            }
            self.step();
        }
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, SuccessTrace, VecTraceSink};
    use plc_mac::Backoff1901;
    use rand::rngs::SmallRng;

    fn stations_1901(n: usize, seed: u64) -> Vec<StationSpec<Backoff1901>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| StationSpec::saturated(Backoff1901::default_ca1(&mut rng)))
            .collect()
    }

    fn quick_cfg(horizon_us: f64) -> EngineConfig {
        EngineConfig::with_horizon(Microseconds(horizon_us))
    }

    #[test]
    fn single_station_only_succeeds() {
        let mut e = SlottedEngine::new(quick_cfg(1e6), stations_1901(1, 1), 1);
        let m = e.run().clone();
        assert!(m.successes > 0);
        assert_eq!(m.collision_events, 0);
        assert_eq!(m.collision_probability(), 0.0);
        assert!(m.elapsed.as_micros() > 1e6);
    }

    #[test]
    fn two_stations_collide_sometimes() {
        let mut e = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 2), 2);
        let m = e.run().clone();
        assert!(m.successes > 0);
        assert!(m.collision_events > 0);
        let p = m.collision_probability();
        assert!(
            p > 0.02 && p < 0.2,
            "N=2 collision probability ≈ 0.074, got {p}"
        );
    }

    #[test]
    fn matches_reference_simulator_statistically() {
        // Engine with default knobs vs the paper port, N = 3, same horizon.
        let horizon = 2e7;
        let mut e = SlottedEngine::new(quick_cfg(horizon), stations_1901(3, 3), 3);
        let em = e.run().clone();
        let pr = crate::paper::PaperSim::with_n_and_time(3, horizon)
            .run(3)
            .unwrap();
        assert!(
            (em.collision_probability() - pr.collision_pr).abs() < 0.01,
            "engine {} vs reference {}",
            em.collision_probability(),
            pr.collision_pr
        );
        let et = em.norm_throughput(Microseconds(2050.0));
        assert!(
            (et - pr.norm_throughput).abs() < 0.02,
            "engine throughput {et} vs reference {}",
            pr.norm_throughput
        );
    }

    #[test]
    fn deterministic_given_seeds() {
        let run = || {
            let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(3, 9), 9);
            e.run().clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn wire_events_are_consistent() {
        let sink = Arc::new(Mutex::new(CountingSink::default()));
        let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(3, 4), 4);
        e.add_sink(sink.clone());
        let m = e.run().clone();
        let c = *sink.lock();
        assert_eq!(c.successes, m.successes);
        assert_eq!(c.collisions, m.collision_events);
        assert_eq!(c.idle_slots, m.idle_slots);
        // One SoF per success (single bursts) + one per colliding station;
        // every SoF gets a SACK (collided ones all-errored).
        assert_eq!(c.sofs, m.successes + m.collided_tx);
        assert_eq!(c.sacks, c.sofs);
    }

    #[test]
    fn success_trace_matches_metrics() {
        let tr = Arc::new(Mutex::new(SuccessTrace::new()));
        let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(2, 5), 5);
        e.add_sink(tr.clone());
        let m = e.run().clone();
        let winners = tr.lock().winners.clone();
        assert_eq!(winners.len() as u64, m.successes);
        for s in 0..2 {
            let count = winners.iter().filter(|&&w| w == s).count() as u64;
            assert_eq!(count, m.per_station[s].successes);
        }
    }

    #[test]
    fn burst_policy_accelerates_delivery() {
        let single = {
            let mut e = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 6), 6);
            e.run().clone()
        };
        let burst2 = {
            let mut cfg = quick_cfg(5e6);
            cfg.burst = BurstPolicy::INT6300;
            let mut e = SlottedEngine::new(cfg, stations_1901(2, 6), 6);
            e.run().clone()
        };
        assert!(
            burst2.norm_throughput(Microseconds(2050.0))
                > single.norm_throughput(Microseconds(2050.0)),
            "2-MPDU bursts amortize contention overhead"
        );
        assert_eq!(burst2.mpdus_ok, 2 * burst2.successes);
    }

    #[test]
    fn retry_limit_drops_frames() {
        let mut cfg = quick_cfg(1e7);
        cfg.retry = RetryPolicy::Limited { max_attempts: 1 };
        // Many stations to force collisions.
        let mut e = SlottedEngine::new(cfg, stations_1901(6, 7), 7);
        let m = e.run().clone();
        let drops: u64 = m.per_station.iter().map(|s| s.dropped).sum();
        assert!(
            drops > 0,
            "with a 1-attempt limit every collision drops a frame"
        );
        assert_eq!(
            drops, m.collided_tx,
            "every collision participation is a drop"
        );
    }

    #[test]
    fn unsaturated_station_is_quiet_at_low_load() {
        // One saturated + one nearly-silent Poisson station.
        let mut rng = SmallRng::seed_from_u64(8);
        let specs = vec![
            StationSpec::saturated(Backoff1901::default_ca1(&mut rng)),
            StationSpec {
                traffic: TrafficModel::Poisson {
                    rate_per_us: 1e-6,
                    queue_cap: 64,
                },
                ..StationSpec::saturated(Backoff1901::default_ca1(&mut rng))
            },
        ];
        let mut e = SlottedEngine::new(quick_cfg(5e6), specs, 8);
        let m = e.run().clone();
        assert!(m.per_station[0].successes > 100);
        assert!(
            m.per_station[1].successes < m.per_station[0].successes / 10,
            "a 1-frame-per-second source must win far less than a saturated one"
        );
        // Its few frames do eventually get through.
        assert!(m.per_station[1].successes > 0);
    }

    #[test]
    fn snapshots_emitted_when_enabled() {
        let sink = Arc::new(Mutex::new(VecTraceSink::new()));
        let mut cfg = quick_cfg(1e5);
        cfg.emit_snapshots = true;
        let mut e = SlottedEngine::new(cfg, stations_1901(2, 10), 10);
        e.add_sink(sink.clone());
        e.run_steps(10);
        let events = &sink.lock().events;
        let snaps = events
            .iter()
            .filter(|ev| matches!(ev, TraceEvent::Snapshot { .. }))
            .count();
        assert_eq!(snaps, 2 * 10, "two snapshots per step");
    }

    #[test]
    fn step_outcomes_advance_time_correctly() {
        let mut e = SlottedEngine::new(quick_cfg(1e6), stations_1901(2, 11), 11);
        let timing = MacTiming::paper_default();
        // Time is accumulated in f64, so `(t + Δ) − t` is only Δ up to
        // one ulp of the running clock; compare with a tolerance instead
        // of bitwise equality.
        let close = |a: Microseconds, b: Microseconds| (a.as_micros() - b.as_micros()).abs() < 1e-9;
        loop {
            let before = e.time();
            match e.step() {
                StepOutcome::Idle => {
                    assert!(close(e.time() - before, timing.slot));
                }
                StepOutcome::Success { burst, .. } => {
                    assert_eq!(burst, 1);
                    assert!(close(e.time() - before, timing.ts));
                    break;
                }
                StepOutcome::Collision { stations } => {
                    assert!(stations.len() >= 2);
                    assert!(close(e.time() - before, timing.tc));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one station")]
    fn empty_station_set_rejected() {
        let _ = SlottedEngine::<Backoff1901>::new(quick_cfg(1e6), vec![], 0);
    }

    #[test]
    fn beacons_fire_on_schedule_and_suspend_contention() {
        let mut cfg = quick_cfg(1e6); // 1 s
        cfg.beacons = Some(BeaconSchedule::standard_50hz());
        let mut e = SlottedEngine::new(cfg, stations_1901(2, 31), 31);
        let m = e.run().clone();
        // One beacon per 40 ms, starting at t = 40 ms: 1 s → 25 beacons.
        assert!(
            (24..=26).contains(&(m.beacons as i32)),
            "{} beacons",
            m.beacons
        );
        assert!((m.time_beacon.as_micros() - m.beacons as f64 * 110.48).abs() < 1e-6);
        // Contention still works around the beacons.
        assert!(m.successes > 100);
        // Time decomposition now includes beacon airtime.
        let accounted =
            m.time_idle + m.time_success + m.time_collision + m.time_prs + m.time_beacon;
        assert!((accounted.as_micros() - m.elapsed.as_micros()).abs() < 1e-6);
    }

    #[test]
    fn beacons_cost_little_throughput() {
        let without = {
            let mut e = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 32), 32);
            e.run().norm_throughput(Microseconds(2050.0))
        };
        let with = {
            let mut cfg = quick_cfg(5e6);
            cfg.beacons = Some(BeaconSchedule::standard_50hz());
            let mut e = SlottedEngine::new(cfg, stations_1901(2, 32), 32);
            e.run().norm_throughput(Microseconds(2050.0))
        };
        // 110.48 µs per 40 ms ≈ 0.28% overhead.
        assert!(with < without);
        assert!(
            without - with < 0.02,
            "beacon cost {} too high",
            without - with
        );
    }

    #[test]
    #[should_panic(expected = "PB error probability")]
    fn error_prob_of_one_rejected() {
        let mut cfg = quick_cfg(1e6);
        cfg.pb_error_prob = 1.0;
        let _ = SlottedEngine::new(cfg, stations_1901(1, 0), 0);
    }

    #[test]
    fn error_free_channel_has_no_pb_errors() {
        let mut e = SlottedEngine::new(quick_cfg(2e6), stations_1901(2, 21), 21);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert_eq!(s.pbs_errored, 0);
        assert_eq!(s.mpdus_partial, 0);
        assert_eq!(m.frames_completed, m.successes, "one frame per clean win");
        // Goodput equals normalized throughput without errors.
        assert!(
            (m.goodput() - m.norm_throughput(Microseconds(2050.0))).abs() < 1e-9,
            "goodput {} vs throughput {}",
            m.goodput(),
            m.norm_throughput(Microseconds(2050.0))
        );
    }

    #[test]
    fn channel_errors_trigger_selective_retransmission() {
        let mut cfg = quick_cfg(5e6);
        cfg.pb_error_prob = 0.2;
        let mut e = SlottedEngine::new(cfg, stations_1901(2, 22), 22);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert!(s.pbs_errored > 0, "a 20% PB error rate must produce errors");
        assert!(s.mpdus_partial > 0, "partial MPDUs must occur");
        assert!(
            m.frames_completed > 0,
            "frames still complete via retransmission"
        );
        // Retransmitting only errored PBs still delivers everything
        // eventually: delivered PBs exceed errored ones by far at p = 0.2.
        assert!(s.pbs_delivered > s.pbs_errored);
        // Goodput strictly below the error-free run's.
        let clean = {
            let mut e2 = SlottedEngine::new(quick_cfg(5e6), stations_1901(2, 22), 22);
            e2.run().goodput()
        };
        assert!(
            m.goodput() < clean,
            "errors must cost goodput: {} vs {clean}",
            m.goodput()
        );
    }

    #[test]
    fn pb_conservation_under_errors() {
        // Every PB put on the wire in a success is either delivered or
        // errored-and-requeued; across the run, delivered + still-pending
        // errored = transmitted.
        let mut cfg = quick_cfg(3e6);
        cfg.pb_error_prob = 0.3;
        let mut e = SlottedEngine::new(cfg, stations_1901(1, 23), 23);
        let m = e.run().clone();
        let s = &m.per_station[0];
        // Each completed frame delivered exactly num_pbs = 4 clean PBs.
        assert_eq!(
            s.pbs_delivered,
            4 * m.frames_completed + (s.pbs_delivered - 4 * m.frames_completed),
        );
        assert!(s.pbs_delivered >= 4 * m.frames_completed);
        // And the per-frame payload credit is consistent with goodput.
        assert!(m.payload_delivered_us > 0.0);
        assert!((m.payload_delivered_us - 2050.0 * s.pbs_delivered as f64 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn noise_burst_covering_horizon_jams_everything() {
        let mut cfg = quick_cfg(1e6);
        cfg.noise = vec![plc_faults::NoiseBurst {
            start_us: 0.0,
            duration_us: 2e6,
        }];
        let mut e = SlottedEngine::new(cfg, stations_1901(1, 31), 31);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert!(s.pbs_errored > 0, "the jammer must error PBs");
        assert_eq!(s.pbs_delivered, 0, "nothing survives a full-horizon burst");
        assert_eq!(m.frames_completed, 0);
    }

    #[test]
    fn empty_noise_schedule_changes_nothing() {
        let mut cfg = quick_cfg(2e6);
        cfg.noise = Vec::new();
        let mut e = SlottedEngine::new(cfg, stations_1901(3, 32), 32);
        let jam_free = e.run().clone();
        let mut e2 = SlottedEngine::new(quick_cfg(2e6), stations_1901(3, 32), 32);
        assert_eq!(&jam_free, e2.run());
    }

    #[test]
    fn bounded_noise_burst_only_hits_its_window() {
        // A burst over the first half of the horizon: errors happen, but
        // the second half still completes frames.
        let mut cfg = quick_cfg(2e6);
        cfg.noise = vec![plc_faults::NoiseBurst {
            start_us: 0.0,
            duration_us: 1e6,
        }];
        let mut e = SlottedEngine::new(cfg, stations_1901(1, 33), 33);
        let m = e.run().clone();
        let s = &m.per_station[0];
        assert!(s.pbs_errored > 0);
        assert!(m.frames_completed > 0, "clean half must deliver frames");
        let clean = {
            let mut e2 = SlottedEngine::new(quick_cfg(2e6), stations_1901(1, 33), 33);
            e2.run().frames_completed
        };
        assert!(m.frames_completed < clean);
    }
}
