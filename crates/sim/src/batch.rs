//! Deterministic sharded execution of many independent runs.
//!
//! [`BatchRunner`] is the one substrate every fan-out in the workspace
//! sits on: the sweep pool ([`parallel_map`](crate::sweep::parallel_map)
//! and friends delegate here), replication batches, and any future
//! multi-domain layer that runs one engine per contention domain.
//!
//! The design choices are all about reproducibility:
//!
//! * **Static round-robin sharding** — item `i` always runs on shard
//!   `i % workers`, each shard walks its items in increasing index
//!   order. No work-stealing queue, so the item→shard mapping is a pure
//!   function of `(items.len(), workers)`.
//! * **Input-order results** — the output vector is indexed by input
//!   position, bit-identical for 1 worker or 64, whatever the OS
//!   scheduler does (provided the work function is deterministic in
//!   `(index, item)`).
//! * **Per-shard registries, merged in shard order** — when a master
//!   [`Registry`](plc_obs::Registry) is attached, every shard gets a
//!   private registry and the shards are folded into the master in
//!   shard-index order after all workers join
//!   ([`Registry::merge_from`](plc_obs::Registry::merge_from)).
//!   Counters and timers merge order-independently; histogram float
//!   sums and gauges are pinned by that fixed order, so instrumented
//!   batches produce the same registry content for any worker count
//!   (up to wall-clock timer readings, which are never deterministic).

use crate::runner::{SimReport, Simulation};
use plc_obs::Registry;
use std::sync::mpsc;

/// A fixed-size sharded runner for many independent work items.
///
/// ```
/// use plc_sim::batch::BatchRunner;
///
/// let squares = BatchRunner::new()
///     .workers(4)
///     .run((0u64..100).collect(), |_, x, _| x * x);
/// assert_eq!(squares[7], 49);
/// ```
#[derive(Clone)]
pub struct BatchRunner {
    workers: usize,
    registry: Option<Registry>,
}

impl std::fmt::Debug for BatchRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRunner")
            .field("workers", &self.workers)
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

impl Default for BatchRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunner {
    /// A runner sized to the machine's available parallelism.
    pub fn new() -> Self {
        BatchRunner {
            workers: crate::sweep::default_workers(),
            registry: None,
        }
    }

    /// Fixed worker (shard) count. Results are identical for any value
    /// ≥ 1; only wall-clock time changes.
    pub fn workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self
    }

    /// Attach a master registry: every shard records into a private
    /// registry, and the shards are merged into `registry` in
    /// shard-index order when the batch completes.
    pub fn registry(mut self, registry: &Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// The configured worker count.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// Evaluate `f(index, item, shard_registry)` for every item and
    /// return the results in input order.
    ///
    /// The registry argument is the shard's private registry when a
    /// master is attached, and a disabled no-op registry otherwise —
    /// work functions can instrument unconditionally.
    ///
    /// # Panics
    ///
    /// If merging a shard registry into the master fails (a metric name
    /// registered with different kinds on the two sides).
    pub fn run<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I, &Registry) -> T + Sync,
    {
        self.run_observed(items, f, |_, _| {})
    }

    /// [`run`](BatchRunner::run) with a result hook: `on_result(index,
    /// &result)` is invoked from the **calling thread** as each item
    /// completes, in completion order. The hook receives only a shared
    /// reference, so it can persist or count results (checkpointers,
    /// progress bars) without being able to perturb the returned
    /// vector, which stays bit-identical for any worker count.
    ///
    /// # Panics
    ///
    /// If merging a shard registry into the master fails (a metric name
    /// registered with different kinds on the two sides).
    pub fn run_observed<I, T, F, P>(&self, items: Vec<I>, f: F, mut on_result: P) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I, &Registry) -> T + Sync,
        P: FnMut(usize, &T),
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(total);
        let shard_regs: Vec<Registry> = (0..workers)
            .map(|_| {
                if self.registry.is_some() {
                    Registry::new()
                } else {
                    Registry::disabled()
                }
            })
            .collect();

        let out = if workers == 1 {
            // Run inline: same results as the sharded path, no threads.
            let reg = &shard_regs[0];
            items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    let r = f(i, item, reg);
                    on_result(i, &r);
                    r
                })
                .collect()
        } else {
            // Static round-robin: shard s owns items s, s+W, s+2W, …
            // walked in increasing index order.
            let mut shards: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                shards[i % workers].push((i, item));
            }
            let (tx, rx) = mpsc::channel::<(usize, T)>();
            let mut out: Vec<Option<T>> = Vec::with_capacity(total);
            out.resize_with(total, || None);
            std::thread::scope(|scope| {
                for (shard, shard_items) in shards.into_iter().enumerate() {
                    let tx = tx.clone();
                    let f = &f;
                    let reg = shard_regs[shard].clone();
                    scope.spawn(move || {
                        for (i, item) in shard_items {
                            // A send fails only if the collector hung up,
                            // which cannot happen while items remain.
                            if tx.send((i, f(i, item, &reg))).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, result) in rx {
                    on_result(i, &result);
                    out[i] = Some(result);
                }
            });
            out.into_iter()
                .map(|r| r.expect("every shard produced its indices"))
                .collect()
        };

        if let Some(master) = &self.registry {
            // Shard-index order pins histogram sums and gauge values.
            for reg in &shard_regs {
                master
                    .merge_from(reg)
                    .unwrap_or_else(|e| panic!("shard registry merge failed: {e}"));
            }
        }
        out
    }

    /// [`run_observed`](BatchRunner::run_observed) with cooperative
    /// cancellation: each shard checks `token` **between items** and
    /// stops picking up new ones once it fires (an item already running
    /// completes — per-item interruption is the engine's own
    /// [`cancel`](crate::Simulation::cancel) hook). Results come back
    /// in input order as `Some` for items that ran and `None` for items
    /// skipped after cancellation; a token that never fires yields all
    /// `Some`, bit-identical to [`run`](BatchRunner::run).
    ///
    /// Shard registries still merge into the master in shard order, so
    /// whatever work did happen is accounted for.
    ///
    /// # Panics
    ///
    /// If merging a shard registry into the master fails (a metric name
    /// registered with different kinds on the two sides).
    pub fn run_cancellable<I, T, F, P>(
        &self,
        token: &plc_core::CancelToken,
        items: Vec<I>,
        f: F,
        mut on_result: P,
    ) -> Vec<Option<T>>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I, &Registry) -> T + Sync,
        P: FnMut(usize, &T),
    {
        let total = items.len();
        if total == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(total);
        let shard_regs: Vec<Registry> = (0..workers)
            .map(|_| {
                if self.registry.is_some() {
                    Registry::new()
                } else {
                    Registry::disabled()
                }
            })
            .collect();

        let out = if workers == 1 {
            let reg = &shard_regs[0];
            items
                .into_iter()
                .enumerate()
                .map(|(i, item)| {
                    if token.is_cancelled() {
                        return None;
                    }
                    let r = f(i, item, reg);
                    on_result(i, &r);
                    Some(r)
                })
                .collect()
        } else {
            let mut shards: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in items.into_iter().enumerate() {
                shards[i % workers].push((i, item));
            }
            let (tx, rx) = mpsc::channel::<(usize, T)>();
            let mut out: Vec<Option<T>> = Vec::with_capacity(total);
            out.resize_with(total, || None);
            std::thread::scope(|scope| {
                for (shard, shard_items) in shards.into_iter().enumerate() {
                    let tx = tx.clone();
                    let f = &f;
                    let reg = shard_regs[shard].clone();
                    let token = token.clone();
                    scope.spawn(move || {
                        for (i, item) in shard_items {
                            if token.is_cancelled() {
                                break;
                            }
                            if tx.send((i, f(i, item, &reg))).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (i, result) in rx {
                    on_result(i, &result);
                    out[i] = Some(result);
                }
            });
            out
        };

        if let Some(master) = &self.registry {
            for reg in &shard_regs {
                master
                    .merge_from(reg)
                    .unwrap_or_else(|e| panic!("shard registry merge failed: {e}"));
            }
        }
        out
    }

    /// Run many independent simulations and return their reports in
    /// input order. With a master registry attached, each engine is
    /// instrumented into its shard's registry and the shards merge
    /// deterministically — `engine.steps` across the whole batch ends
    /// up in one counter no matter how many workers ran.
    ///
    /// # Panics
    ///
    /// On invalid simulation configurations (see [`Simulation::run`])
    /// or a shard registry merge failure.
    pub fn run_sims(&self, sims: Vec<Simulation>) -> Vec<SimReport> {
        let instrument = self.registry.is_some();
        self.run(sims, move |_, sim, reg| {
            if instrument {
                sim.registry(reg).run()
            } else {
                sim.run()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = BatchRunner::new()
            .workers(3)
            .run((0..50u64).collect(), |i, x, _| {
                assert_eq!(i as u64, x);
                x * 2
            });
        assert_eq!(out, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item() {
        let empty: Vec<u64> = BatchRunner::new().workers(4).run(Vec::new(), |_, x, _| x);
        assert!(empty.is_empty());
        let one = BatchRunner::new()
            .workers(4)
            .run(vec![7u64], |_, x, _| x + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn worker_count_does_not_change_sim_reports() {
        let sims: Vec<Simulation> = (0..6)
            .map(|k| Simulation::ieee1901(2).horizon_us(2e5).seed(k))
            .collect();
        let serial = BatchRunner::new().workers(1).run_sims(sims.clone());
        let sharded = BatchRunner::new().workers(4).run_sims(sims.clone());
        assert_eq!(serial, sharded);
        // And each report equals its standalone run.
        for (sim, report) in sims.iter().zip(&serial) {
            assert_eq!(&sim.run(), report);
        }
    }

    #[test]
    fn shard_registries_merge_into_master() {
        let count_steps = |workers: usize| {
            let master = Registry::new();
            let sims: Vec<Simulation> = (0..5)
                .map(|k| Simulation::ieee1901(2).horizon_us(2e5).seed(k))
                .collect();
            BatchRunner::new()
                .workers(workers)
                .registry(&master)
                .run_sims(sims);
            let snap = master.snapshot();
            (
                snap.counter("engine.steps").expect("instrumented"),
                snap.timer("engine.step").map(|t| t.count),
            )
        };
        let (serial_steps, serial_spans) = count_steps(1);
        let (sharded_steps, sharded_spans) = count_steps(3);
        assert!(serial_steps > 0);
        // Counter merges are exact: the total step count is identical
        // for any sharding.
        assert_eq!(serial_steps, sharded_steps);
        assert_eq!(serial_spans, sharded_spans);
    }

    #[test]
    fn without_registry_work_fn_sees_disabled_registry() {
        let out = BatchRunner::new()
            .workers(2)
            .run(vec![1, 2, 3], |_, x, reg| {
                let c = reg.counter("n");
                c.inc();
                (x, c.get())
            });
        assert!(
            out.iter().all(|&(_, c)| c == 0),
            "disabled registry records"
        );
    }

    #[test]
    fn on_result_sees_every_index_once() {
        let mut seen = [0u32; 20];
        BatchRunner::new().workers(3).run_observed(
            (0..20u64).collect(),
            |_, x, _| x,
            |i, &r| {
                assert_eq!(i as u64, r);
                seen[i] += 1;
            },
        );
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn run_cancellable_with_idle_token_matches_run() {
        let token = plc_core::CancelToken::new();
        let out = BatchRunner::new().workers(3).run_cancellable(
            &token,
            (0..30u64).collect(),
            |_, x, _| x * 3,
            |_, _| {},
        );
        let plain = BatchRunner::new()
            .workers(3)
            .run((0..30u64).collect(), |_, x, _| x * 3);
        assert_eq!(
            out.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            plain
        );
    }

    #[test]
    fn pre_cancelled_token_runs_nothing() {
        for workers in [1, 4] {
            let token = plc_core::CancelToken::new();
            token.cancel();
            let mut observed = 0;
            let out = BatchRunner::new().workers(workers).run_cancellable(
                &token,
                (0..20u64).collect(),
                |_, x, _| x,
                |_, _| observed += 1,
            );
            assert_eq!(out.len(), 20);
            assert!(out.iter().all(Option::is_none), "workers={workers}");
            assert_eq!(observed, 0);
        }
    }

    #[test]
    fn cancelling_mid_batch_skips_the_tail() {
        // Inline path: the token is checked before every item, so a
        // cancel from the first result hook leaves exactly one Some.
        let token = plc_core::CancelToken::new();
        let out = BatchRunner::new().workers(1).run_cancellable(
            &token,
            (0..10u64).collect(),
            |_, x, _| x,
            |_, _| token.cancel(),
        );
        assert_eq!(out.iter().filter(|r| r.is_some()).count(), 1);
        assert_eq!(out[0], Some(0));
    }

    #[test]
    fn cancellable_still_merges_shard_registries() {
        let master = Registry::new();
        let token = plc_core::CancelToken::new();
        BatchRunner::new()
            .workers(2)
            .registry(&master)
            .run_cancellable(
                &token,
                (0..6u64).collect(),
                |_, _, reg| reg.counter("items").inc(),
                |_, _| {},
            );
        assert_eq!(master.snapshot().counter("items"), Some(6));
    }

    #[test]
    #[should_panic(expected = "shard registry merge failed")]
    fn kind_clash_with_master_panics() {
        let master = Registry::new();
        master.gauge("engine.steps").set(1.0); // clashes with the counter
        let sims = vec![Simulation::ieee1901(1).horizon_us(1e5)];
        BatchRunner::new()
            .workers(1)
            .registry(&master)
            .run_sims(sims);
    }
}
