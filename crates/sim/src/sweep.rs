//! Deterministic parallel parameter sweeps.
//!
//! Every paper experiment is a sweep: run the simulator over a grid of
//! (configuration × station count) points, replicate each point with
//! decorrelated seeds, and summarize the replications with confidence
//! intervals. This module is the one implementation of that pattern, so
//! experiments stop hand-rolling their own thread scopes:
//!
//! * [`parallel_map`] — a fixed-size worker pool that evaluates arbitrary
//!   per-point work and returns results **in input order**, so output is
//!   bit-identical regardless of worker count or OS scheduling;
//! * [`SweepGrid`] — a builder over (config × N) points with `replications`
//!   per point. Per-replication seeds derive from
//!   [`derive_seed`]`(master_seed, point_index, replication)` via SplitMix64,
//!   so every replication stream is decorrelated and reproducible no matter
//!   how the points are scheduled;
//! * per-point [`Welford`] accumulators are merged in replication order into
//!   a [`ReplicationSummary`] grid, optionally stopping a point early once
//!   its 95% CI half-width undercuts a target;
//! * panics inside a replication are **contained** per point
//!   ([`SweepPointResult::Failed`]), optionally replayed under a
//!   [`SweepGrid::retries`] budget (same seeds, so a recovered retry is
//!   byte-identical to a first-try success), and
//!   [`SweepGrid::run_with_checkpoint`] persists finished points so an
//!   interrupted sweep resumes instead of restarting;
//! * [`SweepGrid::run_point_at`] / [`SweepGrid::run_point_with`] expose
//!   single-point evaluation (with optional cooperative cancellation)
//!   for external job engines that journal and resume points
//!   individually — see the `plc-jobs` crate;
//! * [`SweepResults`] serializes to JSON through
//!   [`export::sweep_results_json`](crate::export::sweep_results_json).
//!
//! ```
//! use plc_sim::sweep::SweepGrid;
//! use plc_sim::Simulation;
//!
//! let results = SweepGrid::new(42)
//!     .config("ca1", Simulation::ieee1901(1).horizon_us(2.0e5))
//!     .stations([2, 3])
//!     .replications(2)
//!     .workers(2)
//!     .run();
//! assert_eq!(results.points.len(), 2);
//! assert_eq!(results.points[0].summary().unwrap().collision_probability.count, 2);
//! ```

use crate::runner::{ReplicationSummary, SimReport, Simulation};
use plc_stats::summary::Welford;
use serde::{Deserialize, Serialize};

/// The SplitMix64 finalizer: one full avalanche round. A bijection on
/// `u64`, so distinct inputs always map to distinct outputs.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed for one `(point, replication)` cell of a sweep from the
/// master seed.
///
/// The pair is packed into one word (`point_index` in the high 32 bits,
/// `replication` in the low 32) and pushed through the SplitMix64
/// finalizer twice. Because the finalizer is a bijection and the packing
/// is injective, the derivation is **provably injective** over
/// `(point_index, replication)` for any fixed master seed as long as both
/// coordinates stay below 2³².
///
/// This replaces ad-hoc `seed + k` schemes whose replication streams for
/// adjacent master seeds overlap (master 3, replication 1 colliding with
/// master 4, replication 0).
pub fn derive_seed(master_seed: u64, point_index: u64, replication: u64) -> u64 {
    debug_assert!(point_index < 1 << 32, "sweep points limited to 2^32");
    debug_assert!(replication < 1 << 32, "replications limited to 2^32");
    let cell = (point_index << 32) | (replication & 0xFFFF_FFFF);
    splitmix64(splitmix64(master_seed) ^ cell.wrapping_mul(0x2545_F491_4F6C_DD1D))
}

/// Number of workers used when the caller does not pick one: the machine's
/// available parallelism (at least 1).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluate `f(index, item)` for every item on a fixed-size worker pool
/// and return the results **in input order**.
///
/// Work is distributed through a shared queue; finished results flow back
/// over a channel and are reassembled by index, so the output is a pure
/// function of the inputs — bit-identical for 1 worker or 64, whatever the
/// OS scheduler does. `f` must itself be deterministic in `(index, item)`
/// for that guarantee to carry through.
///
/// ```
/// let squares = plc_sim::sweep::parallel_map(4, (0u64..100).collect(), |_, x| x * x);
/// assert_eq!(squares[7], 49);
/// ```
pub fn parallel_map<I, T, F>(workers: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    parallel_map_with_progress(workers, items, f, |_| {})
}

/// [`parallel_map`] with a progress callback.
///
/// `on_done` is invoked with the number of completed items (1 ≤ n ≤
/// `items.len()`) from the **calling thread** (the result collector), in
/// completion order — it observes progress without being able to affect
/// the results, which stay bit-identical for any worker count.
pub fn parallel_map_with_progress<I, T, F, P>(
    workers: usize,
    items: Vec<I>,
    f: F,
    mut on_done: P,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
    P: FnMut(usize),
{
    let mut done = 0usize;
    parallel_map_observed(workers, items, f, |_, _| {
        done += 1;
        on_done(done);
    })
}

/// The worker-pool core every `parallel_map` variant builds on: evaluate
/// `f(index, item)` on a fixed-size pool, calling `on_result(index,
/// &result)` from the **calling thread** (the result collector) as each
/// item completes, in completion order.
///
/// `on_result` sees results before input-order reassembly — this is the
/// hook the sweep checkpointer uses to persist every finished point as it
/// lands — but it receives only a shared reference, so it cannot perturb
/// the returned vector, which stays bit-identical for any worker count.
///
/// Execution is delegated to [`BatchRunner`](crate::batch::BatchRunner)
/// with static round-robin sharding; see that type for the full
/// determinism contract (and for per-shard registry merging, which this
/// registry-less wrapper does not expose).
pub fn parallel_map_observed<I, T, F, P>(
    workers: usize,
    items: Vec<I>,
    f: F,
    on_result: P,
) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
    P: FnMut(usize, &T),
{
    crate::batch::BatchRunner::new()
        .workers(workers)
        .run_observed(items, |i, item, _| f(i, item), on_result)
}

/// Render a caught panic payload as a human-readable reason string.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The per-point quantity an early-stopping rule watches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Quantity {
    /// `SimReport::collision_probability`.
    CollisionProbability,
    /// `SimReport::norm_throughput`.
    NormThroughput,
    /// `SimReport::jain_fairness`.
    JainFairness,
}

/// Stop replicating a point once the watched quantity's 95% CI half-width
/// drops below `ci95_half_width` (checked only after `min_replications`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyStop {
    /// The quantity whose confidence interval is watched.
    pub quantity: Quantity,
    /// Target half-width of the 95% confidence interval.
    pub ci95_half_width: f64,
    /// Never stop before this many replications (CI estimates below ~3
    /// observations are meaningless).
    pub min_replications: u64,
}

/// Builder for a deterministic (config × N × replication) sweep.
///
/// Point indices are row-major over `configs × stations`: the point for
/// config `c` and the `i`-th station count has
/// `point_index = c * stations.len() + i`. Replication `k` of that point
/// runs with seed [`derive_seed`]`(master_seed, point_index, k)`.
#[derive(Clone)]
pub struct SweepGrid {
    configs: Vec<(String, Simulation)>,
    stations: Vec<usize>,
    replications: u64,
    master_seed: u64,
    workers: usize,
    retries: u32,
    early_stop: Option<EarlyStop>,
    observers: Vec<plc_obs::SharedObserver>,
    registry: Option<plc_obs::Registry>,
}

impl std::fmt::Debug for SweepGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepGrid")
            .field("configs", &self.configs)
            .field("stations", &self.stations)
            .field("replications", &self.replications)
            .field("master_seed", &self.master_seed)
            .field("workers", &self.workers)
            .field("retries", &self.retries)
            .field("early_stop", &self.early_stop)
            .field("observers", &self.observers.len())
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

impl SweepGrid {
    /// Empty grid with a master seed; defaults to 1 replication and the
    /// machine's available parallelism.
    pub fn new(master_seed: u64) -> Self {
        SweepGrid {
            configs: Vec::new(),
            stations: Vec::new(),
            replications: 1,
            master_seed,
            workers: default_workers(),
            retries: 0,
            early_stop: None,
            observers: Vec::new(),
            registry: None,
        }
    }

    /// Add one labelled configuration template. The template's station
    /// count and seed are overridden per point; everything else (protocol,
    /// CSMA table, timing, horizon, traffic, …) is swept as-is.
    pub fn config(mut self, label: impl Into<String>, template: Simulation) -> Self {
        self.configs.push((label.into(), template));
        self
    }

    /// Set the station counts the grid sweeps over.
    pub fn stations(mut self, ns: impl IntoIterator<Item = usize>) -> Self {
        self.stations = ns.into_iter().collect();
        self
    }

    /// Replications per point (the paper averages 10 testbed runs).
    pub fn replications(mut self, r: u64) -> Self {
        self.replications = r.max(1);
        self
    }

    /// Fixed worker-pool size. Results are identical for any value ≥ 1.
    pub fn workers(mut self, w: usize) -> Self {
        self.workers = w.max(1);
        self
    }

    /// Transient-panic retry budget per point (default 0).
    ///
    /// A panicking execution is replayed with the **same** derived seeds
    /// up to `k` extra times before the point is recorded as
    /// [`SweepPointResult::Failed`]. Replaying identical seeds keeps the
    /// determinism contract: a retry that succeeds produces exactly the
    /// bytes a first-try success would have. Retries therefore only help
    /// against *environmental* faults (memory exhaustion, injected
    /// chaos); a deterministic panic fails identically on every attempt
    /// and just costs `k` extra executions. The attempt count is recorded
    /// on the result either way.
    pub fn retries(mut self, k: u32) -> Self {
        self.retries = k;
        self
    }

    /// Enable early stopping per point.
    pub fn early_stop(mut self, rule: EarlyStop) -> Self {
        self.early_stop = Some(rule);
        self
    }

    /// Attach a progress observer. It receives a
    /// [`SweepProgress`](plc_obs::SweepProgress) (completed/total units,
    /// elapsed wall time, ETA) from the collector thread as work units
    /// finish. Repeatable. Observers cannot perturb the sweep's results:
    /// the JSON export stays byte-identical with or without them.
    pub fn observer(mut self, observer: plc_obs::SharedObserver) -> Self {
        self.observers.push(observer);
        self
    }

    /// Record sweep instrumentation into `registry`: the `sweep.cell`
    /// span timer (one span per replication cell) and the `sweep.cells`
    /// counter.
    pub fn registry(mut self, registry: &plc_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Number of grid points (`configs × stations`).
    pub fn num_points(&self) -> usize {
        self.configs.len() * self.stations.len()
    }

    /// The master seed every cell seed derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Requested replications per point.
    pub fn replication_budget(&self) -> u64 {
        self.replications
    }

    /// Transient-panic retry budget per point (see
    /// [`retries`](SweepGrid::retries)).
    pub fn retry_budget(&self) -> u32 {
        self.retries
    }

    /// Configured worker-pool size.
    pub fn num_workers(&self) -> usize {
        self.workers
    }

    /// The early-stopping rule, if one is set.
    pub fn early_stop_rule(&self) -> Option<EarlyStop> {
        self.early_stop
    }

    /// The configuration labels, in declaration order.
    pub fn config_labels(&self) -> Vec<String> {
        self.configs.iter().map(|(l, _)| l.clone()).collect()
    }

    /// The station counts the grid sweeps over.
    pub fn station_counts(&self) -> &[usize] {
        &self.stations
    }

    /// The `(config label, station count)` a point index maps to, if it
    /// is in range. Point indices are row-major over `configs ×
    /// stations`.
    pub fn point_spec(&self, point_index: usize) -> Option<(&str, usize)> {
        let per_config = self.stations.len();
        if per_config == 0 {
            return None;
        }
        let (label, _) = self.configs.get(point_index / per_config)?;
        let n = self.stations[point_index % per_config];
        Some((label.as_str(), n))
    }

    /// Replications actually scheduled for a template: deterministic
    /// backends (mean-field) ignore the seed, so every replication would
    /// be byte-identical — one run per point replaces the whole budget.
    fn reps_for(&self, template: &Simulation) -> u64 {
        if template.is_deterministic() {
            1
        } else {
            self.replications
        }
    }

    /// Row-major `(index, label, template, n)` tuples of the grid.
    fn grid_points(&self) -> Vec<(usize, &str, &Simulation, usize)> {
        self.configs
            .iter()
            .flat_map(|(label, template)| {
                self.stations
                    .iter()
                    .map(move |&n| (label.as_str(), template, n))
            })
            .enumerate()
            .map(|(idx, (label, template, n))| (idx, label, template, n))
            .collect()
    }

    /// Progress callback shared by [`run`](SweepGrid::run) and
    /// [`run_with_checkpoint`](SweepGrid::run_with_checkpoint). Progress
    /// is observed from the collector thread (wall-clock ETA, completion
    /// order); it cannot feed back into the results.
    fn notify(&self, started: std::time::Instant, done: usize, total: usize) {
        if self.observers.is_empty() {
            return;
        }
        let elapsed = started.elapsed().as_secs_f64();
        let eta = if done > 0 && done < total {
            elapsed / done as f64 * (total - done) as f64
        } else {
            0.0
        };
        let progress = plc_obs::SweepProgress {
            completed: done,
            total,
            elapsed_secs: elapsed,
            eta_secs: eta,
        };
        for o in &self.observers {
            o.lock().on_sweep_progress(&progress);
        }
    }

    /// The instrumented single-cell runner both execution paths share.
    fn timed_cell_fn(&self) -> impl Fn(&Simulation, usize, u64, u64, u64) -> SimReport + Sync + '_ {
        // Degrade gracefully on metric-name clashes: a sweep should still
        // run (uninstrumented) if the caller's registry already uses these
        // names for other kinds.
        let cell_timer = self
            .registry
            .as_ref()
            .and_then(|r| r.try_timer("sweep.cell").ok());
        let cell_counter = self
            .registry
            .as_ref()
            .and_then(|r| r.try_counter("sweep.cells").ok());
        move |template: &Simulation, n: usize, master: u64, idx: u64, rep: u64| {
            let _span = cell_timer.as_ref().map(|t| t.start());
            let report = run_cell(template, n, master, idx, rep);
            if let Some(c) = &cell_counter {
                c.inc();
            }
            report
        }
    }

    /// Evaluate one whole grid point (all its replications, early stopping
    /// applied) with panic containment: a panicking replication yields
    /// [`SweepPointResult::Failed`] instead of poisoning the pool.
    fn run_point(
        &self,
        cell: &(dyn Fn(&Simulation, usize, u64, u64, u64) -> SimReport + Sync),
        idx: usize,
        label: &str,
        template: &Simulation,
        n: usize,
    ) -> SweepPointResult {
        let master = self.master_seed;
        let max_reps = self.reps_for(template);
        let early = self.early_stop;
        let mut attempt: u32 = 1;
        loop {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut acc = PointAccumulator::new();
                let mut reps_run = 0;
                for rep in 0..max_reps {
                    let report = cell(template, n, master, idx as u64, rep);
                    acc.merge_report(&report);
                    reps_run = rep + 1;
                    if let Some(rule) = early {
                        if reps_run >= rule.min_replications.max(2)
                            && acc.ci95_half_width(rule.quantity) <= rule.ci95_half_width
                        {
                            break;
                        }
                    }
                }
                acc.finish(label.to_string(), n, idx, reps_run)
            }));
            match caught {
                Ok(mut point) => {
                    point.attempts = attempt;
                    return SweepPointResult::Ok(point);
                }
                Err(payload) => {
                    if attempt > self.retries {
                        return SweepPointResult::Failed {
                            config: label.to_string(),
                            n,
                            point_index: idx,
                            reason: panic_reason(payload),
                            attempts: attempt,
                        };
                    }
                    attempt += 1;
                }
            }
        }
    }

    /// Evaluate exactly one grid point by index — the building block of
    /// external job engines that schedule, journal and resume points
    /// individually. Returns `None` if `point_index` is out of range.
    ///
    /// The point runs on the calling thread through the same pointwise
    /// path as early-stopping sweeps, which is pinned byte-identical to
    /// [`run`](SweepGrid::run)'s fan-out merge — assembling
    /// [`SweepResults`] from per-point calls reproduces a whole-grid run
    /// bit for bit. Panic containment and the
    /// [`retries`](SweepGrid::retries) budget apply exactly as in `run`.
    pub fn run_point_at(&self, point_index: usize) -> Option<SweepPointResult> {
        self.run_point_with(point_index, None)
    }

    /// [`run_point_at`](SweepGrid::run_point_at) with a cooperative
    /// cancellation token installed into the point's engine runs.
    ///
    /// When `cancel` fires mid-execution the engine returns early with
    /// **partial, non-deterministic** metrics; the caller owns the token
    /// and must check [`CancelToken::is_cancelled`] afterwards and
    /// discard the result (this is how watchdog timeouts reclaim a stuck
    /// point without killing the process). Deterministic backends
    /// (mean-field) ignore the token. With `cancel = None` this is
    /// byte-identical to the uncancellable path.
    ///
    /// [`CancelToken::is_cancelled`]: plc_core::CancelToken::is_cancelled
    pub fn run_point_with(
        &self,
        point_index: usize,
        cancel: Option<&plc_core::CancelToken>,
    ) -> Option<SweepPointResult> {
        let points = self.grid_points();
        let &(idx, label, template, n) = points.get(point_index)?;
        let timed_cell = self.timed_cell_fn();
        let cancellable;
        let template = match cancel {
            Some(token) => {
                cancellable = template.clone().cancel(token.clone());
                &cancellable
            }
            None => template,
        };
        Some(self.run_point(&timed_cell, idx, label, template, n))
    }

    /// Run the sweep on the worker pool and summarize every point.
    ///
    /// A panicking replication (a configuration whose engine asserts, a
    /// numeric blow-up) is **contained**: the point it belongs to becomes
    /// [`SweepPointResult::Failed`] carrying the panic message, and every
    /// other point completes normally — one bad point no longer kills a
    /// whole overnight sweep.
    pub fn run(&self) -> SweepResults {
        let points = self.grid_points();
        let started = std::time::Instant::now();
        let timed_cell = self.timed_cell_fn();

        let results = if self.early_stop.is_some() {
            // Early stopping makes a point's replication count depend on
            // its own running CI, so the unit of work is the whole point.
            let total_points = points.len();
            parallel_map_with_progress(
                self.workers,
                points,
                |_, (idx, label, template, n)| self.run_point(&timed_cell, idx, label, template, n),
                |done| self.notify(started, done, total_points),
            )
        } else {
            // Fixed replication counts: fan out at (point, replication)
            // granularity for load balance, then merge each point's
            // replications in replication order. `parallel_map` returns in
            // input order, so the merge order — and therefore every bit of
            // the output — is schedule-independent. Deterministic-backend
            // points schedule one cell each, so replication counts vary
            // per point and the merge walks prefix offsets, not a fixed
            // stride.
            let per_point_reps: Vec<u64> = points
                .iter()
                .map(|&(_, _, template, _)| self.reps_for(template))
                .collect();
            let offsets: Vec<usize> = per_point_reps
                .iter()
                .scan(0usize, |acc, &r| {
                    let start = *acc;
                    *acc += r as usize;
                    Some(start)
                })
                .collect();
            let cells: Vec<(usize, &Simulation, usize, u64)> = points
                .iter()
                .flat_map(|&(idx, _, template, n)| {
                    (0..per_point_reps[idx]).map(move |rep| (idx, template, n, rep))
                })
                .collect();
            let master = self.master_seed;
            let total_cells = cells.len();
            let retries = self.retries;
            // Each cell retries independently with its own (identical)
            // seed; the merge below takes the max attempt count over a
            // point's cells so both execution paths report the same
            // `attempts` for a deterministic workload.
            let reports = parallel_map_with_progress(
                self.workers,
                cells,
                |_, (idx, template, n, rep)| {
                    let mut attempts: u32 = 1;
                    loop {
                        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            timed_cell(template, n, master, idx as u64, rep)
                        }));
                        match caught {
                            Ok(report) => return (Ok(report), attempts),
                            Err(payload) => {
                                if attempts > retries {
                                    return (Err(panic_reason(payload)), attempts);
                                }
                                attempts += 1;
                            }
                        }
                    }
                },
                |done| self.notify(started, done, total_cells),
            );
            points
                .iter()
                .map(|&(idx, label, _, n)| {
                    let reps = per_point_reps[idx];
                    let mut acc = PointAccumulator::new();
                    let mut failure = None;
                    let mut attempts: u32 = 1;
                    for rep in 0..reps as usize {
                        let (outcome, cell_attempts) = &reports[offsets[idx] + rep];
                        attempts = attempts.max(*cell_attempts);
                        match outcome {
                            Ok(report) => acc.merge_report(report),
                            Err(reason) => {
                                failure.get_or_insert_with(|| reason.clone());
                            }
                        }
                    }
                    match failure {
                        None => {
                            let mut point = acc.finish(label.to_string(), n, idx, reps);
                            point.attempts = attempts;
                            SweepPointResult::Ok(point)
                        }
                        Some(reason) => SweepPointResult::Failed {
                            config: label.to_string(),
                            n,
                            point_index: idx,
                            reason,
                            attempts,
                        },
                    }
                })
                .collect()
        };

        SweepResults {
            master_seed: self.master_seed,
            replications: self.replications,
            points: results,
        }
    }

    /// [`run`](SweepGrid::run) with crash recovery: every finished point is
    /// appended to `path` as it lands, and a later call with the same grid
    /// resumes from the points already on disk instead of recomputing them.
    ///
    /// The file is one JSON header line (master seed, replication budget,
    /// point count — a stale or mismatching checkpoint is discarded, never
    /// merged) followed by one JSON line per completed
    /// [`SweepPointResult`], and is **deleted on success**. Because each
    /// point's result is a pure function of `(master_seed, point_index)`,
    /// a resumed sweep is bit-identical to an uninterrupted one — which is
    /// also why this path evaluates at point granularity: the pointwise
    /// merge is pinned byte-identical to `run`'s fan-out merge.
    pub fn run_with_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<SweepResults> {
        use std::io::Write;

        let path = path.as_ref();
        let points = self.grid_points();
        let header = CheckpointHeader {
            master_seed: self.master_seed,
            replications: self.replications,
            num_points: points.len() as u64,
        };

        // Load whatever a previous interrupted run left behind, if it was
        // running the same grid. A torn final line (the crash happened
        // mid-write) parses as garbage and is simply dropped.
        let mut done: std::collections::BTreeMap<usize, SweepPointResult> =
            std::collections::BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(path) {
            let mut lines = text.lines();
            let compatible = lines
                .next()
                .and_then(|l| serde_json::from_str::<CheckpointHeader>(l).ok())
                .is_some_and(|h| h == header);
            if compatible {
                for line in lines {
                    if let Ok(p) = serde_json::from_str::<SweepPointResult>(line) {
                        done.insert(p.point_index(), p);
                    }
                }
            }
        }

        // Rewrite the file from the known-good state: header plus every
        // recovered point. This truncates stale headers and torn tails.
        let mut file = std::fs::File::create(path)?;
        writeln!(
            file,
            "{}",
            serde_json::to_string(&header).expect("header serializes")
        )?;
        for p in done.values() {
            writeln!(
                file,
                "{}",
                serde_json::to_string(p).expect("point serializes")
            )?;
        }
        file.flush()?;

        let todo: Vec<(usize, &str, &Simulation, usize)> = points
            .iter()
            .copied()
            .filter(|(idx, ..)| !done.contains_key(idx))
            .collect();
        let started = std::time::Instant::now();
        let timed_cell = self.timed_cell_fn();
        let total = points.len();
        let preloaded = done.len();
        let mut io_error: Option<std::io::Error> = None;
        let mut completed = 0usize;
        let fresh = parallel_map_observed(
            self.workers,
            todo,
            |_, (idx, label, template, n)| self.run_point(&timed_cell, idx, label, template, n),
            |_, point: &SweepPointResult| {
                if io_error.is_none() {
                    let line = serde_json::to_string(point).expect("point serializes");
                    if let Err(e) = writeln!(file, "{line}").and_then(|()| file.flush()) {
                        io_error = Some(e);
                    }
                }
                completed += 1;
                self.notify(started, preloaded + completed, total);
            },
        );
        if let Some(e) = io_error {
            return Err(e);
        }
        drop(file);

        for p in fresh {
            done.insert(p.point_index(), p);
        }
        let results = SweepResults {
            master_seed: self.master_seed,
            replications: self.replications,
            points: done.into_values().collect(),
        };
        debug_assert_eq!(results.points.len(), total);
        std::fs::remove_file(path)?;
        Ok(results)
    }
}

/// First line of a checkpoint file: identifies the grid so a resume never
/// splices points from a different sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CheckpointHeader {
    master_seed: u64,
    replications: u64,
    num_points: u64,
}

/// Run one (point, replication) cell with its derived seed.
fn run_cell(template: &Simulation, n: usize, master: u64, point_index: u64, rep: u64) -> SimReport {
    template
        .clone()
        .set_num_stations(n)
        .seed(derive_seed(master, point_index, rep))
        .run()
}

/// Streaming per-point accumulator: one [`Welford`] per summarized
/// quantity, extended by merging each replication's single-observation
/// accumulator in replication order (so the early-stopping and fixed-count
/// paths perform the exact same float operations).
struct PointAccumulator {
    collision_probability: Welford,
    norm_throughput: Welford,
    jain_fairness: Welford,
}

impl PointAccumulator {
    fn new() -> Self {
        PointAccumulator {
            collision_probability: Welford::new(),
            norm_throughput: Welford::new(),
            jain_fairness: Welford::new(),
        }
    }

    fn merge_report(&mut self, r: &SimReport) {
        let single = |x: f64| {
            let mut w = Welford::new();
            w.push(x);
            w
        };
        self.collision_probability
            .merge(&single(r.collision_probability));
        self.norm_throughput.merge(&single(r.norm_throughput));
        self.jain_fairness.merge(&single(r.jain_fairness));
    }

    fn ci95_half_width(&self, q: Quantity) -> f64 {
        let w = match q {
            Quantity::CollisionProbability => &self.collision_probability,
            Quantity::NormThroughput => &self.norm_throughput,
            Quantity::JainFairness => &self.jain_fairness,
        };
        w.ci_half_width(0.95)
    }

    fn finish(self, config: String, n: usize, point_index: usize, reps: u64) -> SweepPoint {
        SweepPoint {
            config,
            n,
            point_index,
            replications_run: reps,
            attempts: 1,
            summary: ReplicationSummary {
                collision_probability: self.collision_probability.summary(),
                norm_throughput: self.norm_throughput.summary(),
                jain_fairness: self.jain_fairness.summary(),
            },
        }
    }
}

/// The summarized outcome of one grid point that ran to completion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Label of the configuration template.
    pub config: String,
    /// Station count.
    pub n: usize,
    /// Row-major index of the point in the grid.
    pub point_index: usize,
    /// Replications actually run (less than requested under early
    /// stopping).
    pub replications_run: u64,
    /// Execution attempts the point needed: 1 for a first-try success,
    /// more when a transient panic was retried under a
    /// [`SweepGrid::retries`] budget (the fan-out path reports the max
    /// over the point's cells).
    pub attempts: u32,
    /// Mean ± CI summaries over the replications.
    pub summary: ReplicationSummary,
}

/// One grid point's recorded outcome: a summary, or a contained failure.
///
/// A replication that panics (an engine assertion, a numeric blow-up in a
/// pathological configuration) is caught at the worker boundary and
/// recorded as [`Failed`](SweepPointResult::Failed) with the panic
/// message; the rest of the sweep is unaffected. The JSON export keeps
/// both variants, so a sweep artifact always accounts for every point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepPointResult {
    /// The point ran every scheduled replication.
    Ok(SweepPoint),
    /// A replication of this point panicked; `reason` is the panic
    /// message. No summary exists — partial accumulators are discarded so
    /// a `Failed` point can never masquerade as a clean one.
    Failed {
        /// Label of the configuration template.
        config: String,
        /// Station count.
        n: usize,
        /// Row-major index of the point in the grid.
        point_index: usize,
        /// The panic message of the first failing replication.
        reason: String,
        /// Execution attempts consumed before giving up — `retries + 1`
        /// once the [`SweepGrid::retries`] budget is exhausted.
        attempts: u32,
    },
}

impl SweepPointResult {
    /// Label of the configuration template.
    pub fn config(&self) -> &str {
        match self {
            SweepPointResult::Ok(p) => &p.config,
            SweepPointResult::Failed { config, .. } => config,
        }
    }

    /// Station count.
    pub fn n(&self) -> usize {
        match self {
            SweepPointResult::Ok(p) => p.n,
            SweepPointResult::Failed { n, .. } => *n,
        }
    }

    /// Row-major index of the point in the grid.
    pub fn point_index(&self) -> usize {
        match self {
            SweepPointResult::Ok(p) => p.point_index,
            SweepPointResult::Failed { point_index, .. } => *point_index,
        }
    }

    /// The completed point, if this one did not fail.
    pub fn ok(&self) -> Option<&SweepPoint> {
        match self {
            SweepPointResult::Ok(p) => Some(p),
            SweepPointResult::Failed { .. } => None,
        }
    }

    /// The point's summary, if it completed.
    pub fn summary(&self) -> Option<&ReplicationSummary> {
        self.ok().map(|p| &p.summary)
    }

    /// Execution attempts the point consumed (1 = first-try success).
    pub fn attempts(&self) -> u32 {
        match self {
            SweepPointResult::Ok(p) => p.attempts,
            SweepPointResult::Failed { attempts, .. } => *attempts,
        }
    }

    /// The contained panic message, if the point failed.
    pub fn failure(&self) -> Option<&str> {
        match self {
            SweepPointResult::Ok(_) => None,
            SweepPointResult::Failed { reason, .. } => Some(reason),
        }
    }
}

/// All points of a finished sweep, in grid order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResults {
    /// Master seed every cell seed was derived from.
    pub master_seed: u64,
    /// Requested replications per point.
    pub replications: u64,
    /// One result per grid point, in `point_index` order.
    pub points: Vec<SweepPointResult>,
}

impl SweepResults {
    /// The point for (config label, n), if present.
    pub fn point(&self, config: &str, n: usize) -> Option<&SweepPointResult> {
        self.points
            .iter()
            .find(|p| p.config() == config && p.n() == n)
    }

    /// The completed points, skipping contained failures.
    pub fn ok_points(&self) -> impl Iterator<Item = &SweepPoint> + '_ {
        self.points.iter().filter_map(SweepPointResult::ok)
    }

    /// The failed points as `(point, reason)` — empty for a clean sweep.
    pub fn failures(&self) -> impl Iterator<Item = (&SweepPointResult, &str)> + '_ {
        self.points
            .iter()
            .filter_map(|p| p.failure().map(|r| (p, r)))
    }

    /// Serialize to a compact JSON document (see
    /// [`export::sweep_results_json`](crate::export::sweep_results_json)).
    pub fn to_json(&self) -> String {
        crate::export::sweep_results_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Distinct inputs through a bijection stay distinct.
        let outs: std::collections::HashSet<u64> = (0..1000).map(splitmix64).collect();
        assert_eq!(outs.len(), 1000);
    }

    #[test]
    fn derived_seeds_are_unique_across_cells() {
        let mut seen = std::collections::HashSet::new();
        for point in 0..64u64 {
            for rep in 0..64u64 {
                assert!(seen.insert(derive_seed(99, point, rep)));
            }
        }
    }

    #[test]
    fn adjacent_masters_do_not_collide() {
        // The failure mode of `seed + k` schemes.
        assert_ne!(derive_seed(3, 0, 1), derive_seed(4, 0, 0));
        assert_ne!(derive_seed(3, 1, 0), derive_seed(4, 0, 0));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(3, (0..50u64).collect(), |i, x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, (0..50u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u64> = parallel_map(4, Vec::<u64>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(4, vec![7u64], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn grid_shape_and_labels() {
        let results = SweepGrid::new(1)
            .config("a", Simulation::ieee1901(1).horizon_us(1e5))
            .config("b", Simulation::dcf(1).horizon_us(1e5))
            .stations([2, 3, 4])
            .replications(2)
            .workers(2)
            .run();
        assert_eq!(results.points.len(), 6);
        assert_eq!(results.points[0].config(), "a");
        assert_eq!(results.points[0].n(), 2);
        assert_eq!(results.points[5].config(), "b");
        assert_eq!(results.points[5].n(), 4);
        assert_eq!(results.ok_points().count(), 6);
        assert_eq!(results.failures().count(), 0);
        for (i, p) in results.points.iter().enumerate() {
            assert_eq!(p.point_index(), i);
            let ok = p.ok().expect("clean grid has no failures");
            assert_eq!(ok.replications_run, 2);
            assert_eq!(ok.summary.collision_probability.count, 2);
        }
        assert!(results.point("b", 3).is_some());
        assert!(results.point("c", 3).is_none());
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let grid = SweepGrid::new(7)
            .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
            .stations([2, 3])
            .replications(3);
        let serial = grid.clone().workers(1).run();
        let pooled = grid.clone().workers(8).run();
        assert_eq!(serial, pooled);
        assert_eq!(serial.to_json(), pooled.to_json());
    }

    #[test]
    fn early_stop_cuts_replications() {
        // A huge CI target stops every point at min_replications.
        let rule = EarlyStop {
            quantity: Quantity::CollisionProbability,
            ci95_half_width: 10.0,
            min_replications: 2,
        };
        let results = SweepGrid::new(5)
            .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
            .stations([2])
            .replications(10)
            .early_stop(rule)
            .run();
        assert_eq!(results.points[0].ok().unwrap().replications_run, 2);

        // An unattainable target (0) runs the full budget.
        let strict = EarlyStop {
            ci95_half_width: 0.0,
            ..rule
        };
        let full = SweepGrid::new(5)
            .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
            .stations([2])
            .replications(4)
            .early_stop(strict)
            .run();
        assert_eq!(full.points[0].ok().unwrap().replications_run, 4);
    }

    #[test]
    fn early_stop_matches_fixed_path_prefix() {
        // With early stopping disabled by an unattainable target, the
        // per-point path must produce bit-identical summaries to the
        // fan-out path: both merge single-observation accumulators in
        // replication order.
        let grid = SweepGrid::new(11)
            .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
            .stations([2, 3])
            .replications(3);
        let fanned = grid.clone().run();
        let pointwise = grid
            .clone()
            .early_stop(EarlyStop {
                quantity: Quantity::NormThroughput,
                ci95_half_width: 0.0,
                min_replications: 3,
            })
            .run();
        assert_eq!(fanned, pointwise);
    }

    #[test]
    fn progress_observer_sees_every_cell() {
        use parking_lot::Mutex as PlMutex;
        use std::sync::Arc;
        let collector = Arc::new(PlMutex::new(plc_obs::CollectingObserver::default()));
        let registry = plc_obs::Registry::new();
        let results = SweepGrid::new(9)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2, 3])
            .replications(2)
            .workers(2)
            .observer(collector.clone())
            .registry(&registry)
            .run();
        assert_eq!(results.points.len(), 2);
        let progress = collector.lock().progress.clone();
        // 2 points × 2 replications = 4 cells, one report each.
        assert_eq!(progress.len(), 4);
        assert!(progress.windows(2).all(|w| w[0].completed < w[1].completed));
        let last = progress.last().unwrap();
        assert_eq!(last.completed, 4);
        assert_eq!(last.total, 4);
        assert_eq!(last.eta_secs, 0.0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sweep.cells"), Some(4));
        assert_eq!(snap.timer("sweep.cell").unwrap().count, 4);
    }

    #[test]
    fn observers_do_not_change_sweep_json() {
        let grid = SweepGrid::new(13)
            .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
            .stations([2, 3])
            .replications(2);
        let bare = grid.clone().workers(1).run();
        let observed = grid
            .clone()
            .workers(4)
            .observer(plc_obs::shared(plc_obs::CollectingObserver::default()))
            .registry(&plc_obs::Registry::new())
            .run();
        assert_eq!(bare, observed);
        assert_eq!(bare.to_json(), observed.to_json());
    }

    #[test]
    fn meanfield_template_collapses_replications() {
        use crate::backend::Backend;
        let grid = SweepGrid::new(41)
            .config(
                "mf",
                Simulation::ieee1901(1)
                    .backend(Backend::MeanField)
                    .horizon_us(1e6),
            )
            .config("slotted", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2, 5])
            .replications(4);
        let results = grid.clone().workers(1).run();
        for p in results.ok_points() {
            let expected = if p.config == "mf" { 1 } else { 4 };
            assert_eq!(
                p.replications_run, expected,
                "{} at N={} ran {} replications",
                p.config, p.n, p.replications_run
            );
        }
        assert_eq!(results.ok_points().count(), 4);
        // Mixed per-point replication counts stay schedule-independent.
        // Compared through the JSON export because single-replication
        // summaries hold `std_dev: NaN`, and NaN breaks struct equality.
        let pooled = grid.clone().workers(8).run();
        assert_eq!(results.to_json(), pooled.to_json());
        // And the fan-out path matches the pointwise (early-stop) path.
        let pointwise = grid
            .early_stop(EarlyStop {
                quantity: Quantity::NormThroughput,
                ci95_half_width: 0.0,
                min_replications: 4,
            })
            .run();
        assert_eq!(results.to_json(), pointwise.to_json());
    }

    #[test]
    fn json_round_trips() {
        let results = SweepGrid::new(3)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2])
            .replications(2)
            .run();
        let text = results.to_json();
        let back: SweepResults = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, results);
    }

    /// A template whose engine asserts at construction (`invalid
    /// MacTiming`) — the sweep-level stand-in for any panicking
    /// replication.
    fn broken_sim() -> Simulation {
        let mut bad = plc_core::timing::MacTiming::paper_default();
        bad.slot = plc_core::units::Microseconds(-1.0);
        Simulation::ieee1901(1).horizon_us(1e5).timing(bad)
    }

    #[test]
    fn panicking_point_is_contained() {
        // The good config comes first so its point_index matches the
        // single-config control sweep below.
        let grid = SweepGrid::new(17)
            .config("good", Simulation::ieee1901(1).horizon_us(1e5))
            .config("bad", broken_sim())
            .stations([2])
            .replications(2)
            .workers(2);
        let results = grid.run();
        assert_eq!(results.points.len(), 2);
        let good = results.point("good", 2).expect("good point present");
        assert!(good.ok().is_some());
        let bad = results.point("bad", 2).expect("bad point present");
        let reason = bad.failure().expect("bad config must fail");
        assert!(reason.contains("MacTiming"), "reason: {reason}");
        assert_eq!(results.ok_points().count(), 1);
        assert_eq!(results.failures().count(), 1);
        // The surviving point is bit-identical to a fault-free sweep's.
        let clean = SweepGrid::new(17)
            .config("good", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2])
            .replications(2)
            .run();
        assert_eq!(good.ok(), clean.points[0].ok());
        // The failure stays on record through the JSON export.
        let text = results.to_json();
        assert!(text.contains("Failed"));
        let back: SweepResults = serde_json::from_str(&text).expect("parse");
        assert_eq!(back, results);
    }

    #[test]
    fn panicking_point_contained_under_early_stop() {
        let results = SweepGrid::new(19)
            .config("good", Simulation::ieee1901(1).horizon_us(1e5))
            .config("bad", broken_sim())
            .stations([2])
            .replications(3)
            .early_stop(EarlyStop {
                quantity: Quantity::CollisionProbability,
                ci95_half_width: 0.0,
                min_replications: 2,
            })
            .workers(2)
            .run();
        assert!(results.point("good", 2).unwrap().ok().is_some());
        assert!(results.point("bad", 2).unwrap().failure().is_some());
    }

    #[test]
    fn retry_budget_is_inert_on_a_clean_sweep() {
        let grid = SweepGrid::new(53)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2, 3])
            .replications(2)
            .workers(2);
        let plain = grid.clone().run();
        let retried = grid.clone().retries(3).run();
        assert_eq!(plain, retried);
        assert_eq!(plain.to_json(), retried.to_json());
        for p in &retried.points {
            assert_eq!(p.attempts(), 1);
        }
    }

    #[test]
    fn deterministic_panic_exhausts_retry_budget_on_both_paths() {
        let grid = SweepGrid::new(47)
            .config("bad", broken_sim())
            .stations([2])
            .replications(1)
            .workers(1)
            .retries(2);
        let fanned = grid.clone().run();
        assert_eq!(fanned.points[0].attempts(), 3);
        assert!(fanned.points[0].failure().is_some());
        let pointwise = grid.run_point_at(0).expect("point 0 exists");
        assert_eq!(pointwise.attempts(), 3);
        assert!(pointwise.failure().is_some());
    }

    #[test]
    fn transient_panic_recovers_with_identical_bytes() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let grid = SweepGrid::new(43)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2])
            .replications(2)
            .retries(1);
        // An environmental (non-deterministic) fault: the first cell
        // execution panics, every later one succeeds. Reaches the private
        // cell hook directly because no simulation backend can be made
        // genuinely flaky — they are deterministic by construction.
        let remaining = AtomicU32::new(1);
        let flaky = move |template: &Simulation, n: usize, master: u64, idx: u64, rep: u64| {
            if remaining
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
            {
                panic!("injected transient fault");
            }
            run_cell(template, n, master, idx, rep)
        };
        let (idx, label, template, n) = grid.grid_points()[0];
        let recovered = grid.run_point(&flaky, idx, label, template, n);
        let point = recovered.ok().expect("retry must recover");
        assert_eq!(point.attempts, 2);
        // Identical seeds on replay: everything but the attempt count is
        // byte-identical to a first-try success.
        let clean = grid.run_point_at(0).expect("point 0 exists");
        let clean_point = clean.ok().expect("clean run succeeds");
        assert_eq!(clean_point.attempts, 1);
        assert_eq!(point.summary, clean_point.summary);
        assert_eq!(point.replications_run, clean_point.replications_run);
    }

    #[test]
    fn run_point_at_matches_whole_grid_run() {
        let grid = SweepGrid::new(59)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .config("dcf", Simulation::dcf(1).horizon_us(1e5))
            .stations([2, 3])
            .replications(2);
        let whole = grid.run();
        for idx in 0..grid.num_points() {
            let single = grid.run_point_at(idx).expect("index in range");
            assert_eq!(single, whole.points[idx], "point {idx}");
            assert_eq!(
                grid.point_spec(idx).expect("spec in range"),
                (single.config(), single.n())
            );
        }
        assert!(grid.run_point_at(grid.num_points()).is_none());
        assert!(grid.point_spec(grid.num_points()).is_none());
    }

    #[test]
    fn idle_cancel_token_does_not_perturb_a_point() {
        let token = plc_core::CancelToken::new();
        let grid = SweepGrid::new(61)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([3])
            .replications(2);
        let with = grid.run_point_with(0, Some(&token)).expect("in range");
        let without = grid.run_point_at(0).expect("in range");
        assert_eq!(with, without);
        assert!(!token.is_cancelled());
    }

    #[test]
    fn pre_cancelled_token_stops_a_point_immediately() {
        let token = plc_core::CancelToken::new();
        token.cancel();
        let grid = SweepGrid::new(67)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e6))
            .stations([5])
            .replications(1);
        let res = grid.run_point_with(0, Some(&token)).expect("in range");
        // The engine observes the token before its first slot: the point
        // still yields a result object (the job layer discards it after
        // checking the token), but no airtime was ever simulated.
        let p = res.ok().expect("cancellation is not a panic");
        let thr = p.summary.norm_throughput.mean;
        assert!(
            thr == 0.0 || thr.is_nan(),
            "cancelled point simulated airtime: {thr}"
        );
    }

    fn temp_ckpt(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("plc_sweep_{}_{}.ckpt", name, std::process::id()))
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_cleans_up() {
        let grid = SweepGrid::new(23)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2, 3])
            .replications(2)
            .workers(2);
        let plain = grid.run();
        let path = temp_ckpt("full");
        let _ = std::fs::remove_file(&path);
        let ckpt = grid.run_with_checkpoint(&path).expect("checkpointed run");
        assert_eq!(plain, ckpt);
        assert_eq!(plain.to_json(), ckpt.to_json());
        assert!(!path.exists(), "checkpoint must be deleted on success");
    }

    #[test]
    fn checkpoint_resume_skips_completed_points_and_matches() {
        let grid = SweepGrid::new(29)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2, 3])
            .replications(2)
            .workers(1);
        let plain = grid.run();
        let path = temp_ckpt("resume");
        // Simulate an interrupted run: header plus the first point only.
        let header = serde_json::to_string(&CheckpointHeader {
            master_seed: 29,
            replications: 2,
            num_points: 2,
        })
        .unwrap();
        let first = serde_json::to_string(&plain.points[0]).unwrap();
        std::fs::write(&path, format!("{header}\n{first}\n")).unwrap();
        let registry = plc_obs::Registry::new();
        let resumed = grid
            .clone()
            .registry(&registry)
            .run_with_checkpoint(&path)
            .expect("resumed run");
        assert_eq!(resumed, plain, "resume must be bit-identical");
        assert!(!path.exists());
        // Only the missing point's cells ran: 1 point × 2 replications.
        assert_eq!(registry.snapshot().counter("sweep.cells"), Some(2));
    }

    #[test]
    fn stale_or_torn_checkpoint_is_discarded() {
        let grid = SweepGrid::new(31)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2])
            .replications(2)
            .workers(1);
        let plain = grid.run();
        let path = temp_ckpt("stale");
        // A checkpoint from a different sweep (wrong master seed) with a
        // torn final line: both must be ignored, all cells recomputed.
        let stale_header = serde_json::to_string(&CheckpointHeader {
            master_seed: 9999,
            replications: 2,
            num_points: 1,
        })
        .unwrap();
        std::fs::write(&path, format!("{stale_header}\n{{\"point_in")).unwrap();
        let registry = plc_obs::Registry::new();
        let results = grid
            .clone()
            .registry(&registry)
            .run_with_checkpoint(&path)
            .expect("run over stale checkpoint");
        assert_eq!(results, plain);
        assert!(!path.exists());
        assert_eq!(registry.snapshot().counter("sweep.cells"), Some(2));
    }

    #[test]
    fn failed_points_are_checkpointed_not_retried() {
        let grid = SweepGrid::new(37)
            .config("bad", broken_sim())
            .stations([2])
            .replications(1)
            .workers(1);
        let path = temp_ckpt("failed");
        let _ = std::fs::remove_file(&path);
        let first = grid.run_with_checkpoint(&path).expect("first run");
        assert_eq!(first.failures().count(), 1);
        assert!(!path.exists(), "a fully-accounted sweep still cleans up");
    }
}
