//! Frame aggregation: packing Ethernet frames into PLC frames.
//!
//! §3.1/§4.1 of the report: "IEEE 1901 employs aggregation of multiple
//! Ethernet frames in one PLC frame. The data are organized in physical
//! blocks (PBs) … there is a timeout between the arrival of the first
//! Ethernet frame inserted in the PLC frame and the last Ethernet frame
//! inserted" — with the exact vendor policy unpublished. This module
//! implements the canonical policy those constraints describe:
//!
//! * an MPDU closes when it reaches its PB budget (`max_pbs`, set by the
//!   tone map and standard limits), **or**
//! * when the aggregation timeout since its *first* Ethernet frame
//!   expires, **or**
//! * when the MAC wins contention and drains whatever is ready.
//!
//! [`AggregationQueue`] is a deterministic state machine over arrival
//! events; the sweep in the `aggregation` experiment drives it with
//! Poisson arrivals to show the load ↔ efficiency ↔ latency triangle.

use plc_core::frame::pbs_for_bytes;
use serde::{Deserialize, Serialize};

/// Configuration of the aggregation policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregationConfig {
    /// Timeout from the first enqueued Ethernet frame to forced closure
    /// (µs). The report says such a timeout exists; vendors don't publish
    /// the value.
    pub timeout_us: f64,
    /// Maximum physical blocks per MPDU.
    pub max_pbs: u16,
}

impl AggregationConfig {
    /// A plausible HomePlug AV-like default: 72 PBs (≈ 36 kB, about
    /// 2050 µs of airtime at strip rates) and a 2 ms timeout.
    pub fn default_hpav() -> Self {
        AggregationConfig {
            timeout_us: 2_000.0,
            max_pbs: 72,
        }
    }
}

/// One Ethernet frame waiting to be aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EthernetFrame {
    /// Arrival time (µs).
    pub arrival_us: f64,
    /// Frame length in bytes (≤ 1518 for standard Ethernet).
    pub bytes: usize,
}

/// A closed PLC frame (MPDU payload) ready for transmission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatedMpdu {
    /// Time the MPDU was closed (µs).
    pub closed_at_us: f64,
    /// Ethernet frames packed inside.
    pub frames: usize,
    /// Total payload bytes.
    pub bytes: usize,
    /// Physical blocks occupied (the MAC-visible size).
    pub pbs: u16,
    /// Why the MPDU closed.
    pub reason: CloseReason,
    /// Aggregation latency of the *first* frame (µs): closure time minus
    /// its arrival — the head-of-line cost of waiting to aggregate.
    pub first_frame_wait_us: f64,
}

/// Why an MPDU was closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloseReason {
    /// The PB budget filled up.
    Full,
    /// The aggregation timeout expired.
    Timeout,
    /// The MAC drained the queue at a transmission opportunity.
    Drained,
}

/// The aggregation state machine. Feed arrivals with
/// [`push`](AggregationQueue::push) and clock advances with
/// [`advance_to`](AggregationQueue::advance_to); closed MPDUs accumulate
/// and are taken with [`take_closed`](AggregationQueue::take_closed).
///
/// # Examples
///
/// ```
/// use plc_sim::aggregation::{AggregationConfig, AggregationQueue, EthernetFrame};
///
/// let mut q = AggregationQueue::new(AggregationConfig { timeout_us: 100.0, max_pbs: 72 });
/// q.push(EthernetFrame { arrival_us: 0.0, bytes: 1500 });
/// q.push(EthernetFrame { arrival_us: 50.0, bytes: 1500 });
/// q.advance_to(100.0); // the first frame's timeout expires
/// let mpdus = q.take_closed();
/// assert_eq!(mpdus.len(), 1);
/// assert_eq!(mpdus[0].frames, 2);
/// assert_eq!(mpdus[0].pbs, 6); // 2 × ⌈1500/512⌉
/// ```
#[derive(Debug, Clone)]
pub struct AggregationQueue {
    cfg: AggregationConfig,
    /// Open MPDU state: first-arrival time, frames, bytes, PBs used.
    open: Option<OpenMpdu>,
    closed: Vec<AggregatedMpdu>,
}

#[derive(Debug, Clone, Copy)]
struct OpenMpdu {
    first_arrival_us: f64,
    frames: usize,
    bytes: usize,
    pbs: u16,
}

impl AggregationQueue {
    /// Empty queue under a policy.
    pub fn new(cfg: AggregationConfig) -> Self {
        assert!(cfg.timeout_us > 0.0, "timeout must be positive");
        assert!(cfg.max_pbs >= 1, "need at least one PB per MPDU");
        AggregationQueue {
            cfg,
            open: None,
            closed: Vec::new(),
        }
    }

    /// The policy in effect.
    pub fn config(&self) -> AggregationConfig {
        self.cfg
    }

    /// Advance the clock, closing the open MPDU if its timeout passed.
    pub fn advance_to(&mut self, now_us: f64) {
        if let Some(open) = self.open {
            let deadline = open.first_arrival_us + self.cfg.timeout_us;
            if now_us >= deadline {
                self.close(deadline, CloseReason::Timeout);
            }
        }
    }

    /// Enqueue one Ethernet frame (arrivals must be time-ordered). May
    /// close the running MPDU first (timeout or budget).
    pub fn push(&mut self, frame: EthernetFrame) {
        self.advance_to(frame.arrival_us);
        let frame_pbs = pbs_for_bytes(frame.bytes) as u16;
        assert!(
            frame_pbs <= self.cfg.max_pbs,
            "a single Ethernet frame ({} B) cannot exceed the MPDU budget",
            frame.bytes
        );
        if let Some(open) = self.open {
            if open.pbs + frame_pbs > self.cfg.max_pbs {
                // Budget full: close at this arrival instant, start fresh.
                self.close(frame.arrival_us, CloseReason::Full);
            }
        }
        match &mut self.open {
            Some(open) => {
                open.frames += 1;
                open.bytes += frame.bytes;
                open.pbs += frame_pbs;
            }
            None => {
                self.open = Some(OpenMpdu {
                    first_arrival_us: frame.arrival_us,
                    frames: 1,
                    bytes: frame.bytes,
                    pbs: frame_pbs,
                });
            }
        }
        // A frame that exactly fills the budget closes immediately.
        if let Some(open) = self.open {
            if open.pbs == self.cfg.max_pbs {
                self.close(frame.arrival_us, CloseReason::Full);
            }
        }
    }

    /// The MAC won contention at `now_us`: close whatever is open (if
    /// anything) so it can be transmitted.
    pub fn drain(&mut self, now_us: f64) {
        self.advance_to(now_us);
        if self.open.is_some() {
            self.close(now_us, CloseReason::Drained);
        }
    }

    /// Take the closed MPDUs accumulated so far.
    pub fn take_closed(&mut self) -> Vec<AggregatedMpdu> {
        std::mem::take(&mut self.closed)
    }

    /// Frames currently waiting in the open MPDU.
    pub fn pending_frames(&self) -> usize {
        self.open.map(|o| o.frames).unwrap_or(0)
    }

    fn close(&mut self, at_us: f64, reason: CloseReason) {
        let open = self.open.take().expect("closing requires an open MPDU");
        self.closed.push(AggregatedMpdu {
            closed_at_us: at_us,
            frames: open.frames,
            bytes: open.bytes,
            pbs: open.pbs,
            reason,
            first_frame_wait_us: at_us - open.first_arrival_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eth(t: f64, bytes: usize) -> EthernetFrame {
        EthernetFrame {
            arrival_us: t,
            bytes,
        }
    }

    #[test]
    fn timeout_closes_a_lonely_frame() {
        let mut q = AggregationQueue::new(AggregationConfig {
            timeout_us: 100.0,
            max_pbs: 8,
        });
        q.push(eth(0.0, 1500));
        q.advance_to(99.0);
        assert!(
            q.take_closed().is_empty(),
            "before the timeout nothing closes"
        );
        q.advance_to(100.0);
        let closed = q.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Timeout);
        assert_eq!(closed[0].frames, 1);
        assert_eq!(closed[0].pbs, 3); // 1500 B → 3 × 512 B blocks
        assert_eq!(closed[0].closed_at_us, 100.0);
        assert_eq!(closed[0].first_frame_wait_us, 100.0);
    }

    #[test]
    fn budget_closes_eagerly() {
        // max 6 PBs; each 1500 B frame takes 3: the 2nd fills the MPDU.
        let mut q = AggregationQueue::new(AggregationConfig {
            timeout_us: 1e9,
            max_pbs: 6,
        });
        q.push(eth(0.0, 1500));
        q.push(eth(10.0, 1500));
        let closed = q.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Full);
        assert_eq!(closed[0].frames, 2);
        assert_eq!(closed[0].pbs, 6);
        assert_eq!(q.pending_frames(), 0);
    }

    #[test]
    fn oversized_next_frame_splits_mpdus() {
        // 4-PB budget: a 1500 B frame (3 PBs) then another cannot share.
        let mut q = AggregationQueue::new(AggregationConfig {
            timeout_us: 1e9,
            max_pbs: 4,
        });
        q.push(eth(0.0, 1500));
        q.push(eth(5.0, 1500));
        let closed = q.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].frames, 1, "first MPDU closed with one frame");
        assert_eq!(closed[0].reason, CloseReason::Full);
        assert_eq!(q.pending_frames(), 1, "second frame opens a new MPDU");
    }

    #[test]
    fn drain_takes_whatever_is_ready() {
        let mut q = AggregationQueue::new(AggregationConfig::default_hpav());
        q.push(eth(0.0, 800));
        q.push(eth(100.0, 800));
        q.drain(150.0);
        let closed = q.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].reason, CloseReason::Drained);
        assert_eq!(closed[0].frames, 2);
        assert_eq!(closed[0].first_frame_wait_us, 150.0);
        // Draining an empty queue is a no-op.
        q.drain(200.0);
        assert!(q.take_closed().is_empty());
    }

    #[test]
    fn timeout_anchored_to_first_frame() {
        // Later arrivals do NOT extend the deadline.
        let mut q = AggregationQueue::new(AggregationConfig {
            timeout_us: 100.0,
            max_pbs: 72,
        });
        q.push(eth(0.0, 500));
        q.push(eth(90.0, 500));
        q.push(eth(120.0, 500)); // arrives after the deadline → new MPDU
        let closed = q.take_closed();
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].frames, 2);
        assert_eq!(
            closed[0].closed_at_us, 100.0,
            "closed at the deadline, not at the arrival"
        );
        assert_eq!(q.pending_frames(), 1);
    }

    #[test]
    fn aggregation_efficiency_grows_with_rate() {
        // Deterministic arrivals at two rates: the faster stream packs
        // more frames per MPDU before the timeout.
        let run = |gap_us: f64| {
            let mut q = AggregationQueue::new(AggregationConfig {
                timeout_us: 500.0,
                max_pbs: 72,
            });
            for k in 0..200 {
                q.push(eth(k as f64 * gap_us, 1500));
            }
            q.drain(200.0 * gap_us + 1_000.0);
            let closed = q.take_closed();
            closed.iter().map(|m| m.frames).sum::<usize>() as f64 / closed.len() as f64
        };
        let slow = run(400.0); // ~2 frames per timeout window
        let fast = run(50.0); // ~10 frames per window
        assert!(fast > 2.0 * slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    #[should_panic(expected = "cannot exceed the MPDU budget")]
    fn oversized_single_frame_rejected() {
        let mut q = AggregationQueue::new(AggregationConfig {
            timeout_us: 100.0,
            max_pbs: 2,
        });
        q.push(eth(0.0, 2000)); // needs 4 PBs
    }

    #[test]
    #[should_panic(expected = "timeout must be positive")]
    fn zero_timeout_rejected() {
        AggregationQueue::new(AggregationConfig {
            timeout_us: 0.0,
            max_pbs: 4,
        });
    }
}
