//! High-level simulation builder and report.
//!
//! [`Simulation`] is the one-stop API most callers want: pick a protocol
//! and a station count, optionally adjust the configuration/timing/horizon,
//! and get a [`SimReport`] with the paper's headline quantities already
//! computed.
//!
//! ```
//! use plc_sim::runner::Simulation;
//!
//! let report = Simulation::ieee1901(3)
//!     .horizon_us(5.0e6)
//!     .seed(42)
//!     .run();
//! assert!(report.collision_probability > 0.0);
//! assert!(report.norm_throughput > 0.5);
//! ```

use crate::backend::{Backend, MeanFieldReport};
use crate::bursting::BurstPolicy;
use crate::engine::{EngineConfig, SharedSink, SlottedEngine, StationSpec};
use crate::metrics::Metrics;
use crate::multidomain::MultiDomainReport;
use crate::scenario::Scenario;
use crate::topology::Topology;
use crate::traffic::TrafficModel;
use plc_core::config::CsmaConfig;
use plc_core::timing::MacTiming;
use plc_core::units::Microseconds;
use plc_mac::process::Protocol;
use plc_mac::retry::RetryPolicy;
use plc_mac::{AnyBackoff, Backoff1901, BackoffDcf};
use plc_obs::SharedObserver;
use plc_stats::summary::{Summary, Welford};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Builder for single-contention-domain simulations.
///
/// [`run`](Simulation::run) is the single entry point: sinks and
/// observers are attached with [`sink`](Simulation::sink) /
/// [`observer`](Simulation::observer) before running, instead of through
/// side-channel run variants or post-construction engine mutation.
#[derive(Clone)]
pub struct Simulation {
    pub(crate) n: usize,
    pub(crate) topology: Topology,
    pub(crate) cell_size: Option<usize>,
    pub(crate) domain_workers: usize,
    pub(crate) backend: Backend,
    pub(crate) protocol: Protocol,
    pub(crate) config: CsmaConfig,
    pub(crate) timing: MacTiming,
    pub(crate) horizon: Microseconds,
    pub(crate) seed: u64,
    pub(crate) burst: BurstPolicy,
    pub(crate) retry: RetryPolicy,
    pub(crate) traffic: TrafficModel,
    pub(crate) pb_error_prob: f64,
    pub(crate) beacons: Option<crate::engine::BeaconSchedule>,
    pub(crate) noise: Vec<plc_faults::NoiseBurst>,
    pub(crate) snapshots: bool,
    pub(crate) fast_forward: bool,
    pub(crate) soa: bool,
    pub(crate) cancel: Option<plc_core::CancelToken>,
    pub(crate) sinks: Vec<SharedSink>,
    pub(crate) observers: Vec<(SharedObserver, u64)>,
    pub(crate) registry: Option<plc_obs::Registry>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.n)
            .field("cells", &self.topology.num_cells())
            .field("domain_workers", &self.domain_workers)
            .field("backend", &self.backend)
            .field("protocol", &self.protocol)
            .field("config", &self.config)
            .field("timing", &self.timing)
            .field("horizon", &self.horizon)
            .field("seed", &self.seed)
            .field("burst", &self.burst)
            .field("retry", &self.retry)
            .field("traffic", &self.traffic)
            .field("pb_error_prob", &self.pb_error_prob)
            .field("beacons", &self.beacons)
            .field("noise", &self.noise.len())
            .field("snapshots", &self.snapshots)
            .field("fast_forward", &self.fast_forward)
            .field("soa", &self.soa)
            .field("cancel", &self.cancel.is_some())
            .field("sinks", &self.sinks.len())
            .field("observers", &self.observers.len())
            .field("registry", &self.registry.is_some())
            .finish()
    }
}

impl Simulation {
    /// `n` saturated IEEE 1901 stations with the default CA1 table and the
    /// paper's timing — sugar for a fully-connected single-cell
    /// [`Topology`] (every station hears every station, the legacy
    /// single-domain setting).
    pub fn ieee1901(n: usize) -> Self {
        Simulation {
            n,
            topology: Topology::fully_connected(n),
            cell_size: None,
            domain_workers: 1,
            backend: Backend::Slotted,
            protocol: Protocol::Ieee1901,
            config: CsmaConfig::ieee1901_ca01(),
            timing: MacTiming::paper_default(),
            horizon: plc_core::timing::DEFAULT_SIM_TIME,
            seed: 0,
            burst: BurstPolicy::Single,
            retry: RetryPolicy::Infinite,
            traffic: TrafficModel::Saturated,
            pb_error_prob: 0.0,
            beacons: None,
            noise: Vec::new(),
            snapshots: false,
            fast_forward: true,
            soa: true,
            cancel: None,
            sinks: Vec::new(),
            observers: Vec::new(),
            registry: None,
        }
    }

    /// `n` saturated 802.11 DCF stations (classic CW 16…512 table).
    pub fn dcf(n: usize) -> Self {
        Simulation {
            protocol: Protocol::Dcf80211,
            config: CsmaConfig::dcf_like(16, 6).expect("valid"),
            ..Self::ieee1901(n)
        }
    }

    /// Select the engine: the exact slotted simulator (default) or the
    /// deterministic mean-field fixed point (see [`Backend`]). Both
    /// produce the same [`SimReport`] schema; the mean-field backend
    /// supports only the error-free saturated single-class MAC and
    /// rejects other knobs at run time with a typed error.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The selected backend.
    pub fn backend_kind(&self) -> Backend {
        self.backend
    }

    /// Whether runs are seed-independent (mean-field backend).
    /// Deterministic simulations short-circuit replication:
    /// [`run_repeated`](Simulation::run_repeated) returns a single report
    /// and sweeps run one replication per grid point.
    pub fn is_deterministic(&self) -> bool {
        self.backend.is_deterministic()
    }

    /// Use a custom CSMA parameter table.
    pub fn config(mut self, config: CsmaConfig) -> Self {
        self.config = config;
        self
    }

    /// Override the station count.
    ///
    /// Deprecated: the station count now lives in the [`Topology`];
    /// construct with [`ieee1901(n)`](Simulation::ieee1901) /
    /// [`dcf(n)`](Simulation::dcf) for the fully-connected case or set a
    /// [`topology`](Simulation::topology) explicitly. Sweeps restamp the
    /// count internally.
    #[deprecated(
        since = "0.1.0",
        note = "set the station count via ieee1901(n)/dcf(n) or Simulation::topology(...)"
    )]
    pub fn num_stations(self, n: usize) -> Self {
        self.set_num_stations(n)
    }

    /// Restamp the station count onto this template (sweep internals).
    /// Resets the topology to fully-connected — a sweep over `n` has no
    /// way to scale an *explicit* spatial layout — unless
    /// [`cells_of`](Simulation::cells_of) declared a cell structure, in
    /// which case the isolated-cells layout is rebuilt at the new count.
    pub(crate) fn set_num_stations(mut self, n: usize) -> Self {
        self.n = n;
        self.topology = match self.cell_size {
            Some(size) => Topology::isolated_cells(n, size),
            None => Topology::fully_connected(n),
        };
        self
    }

    /// Group stations into isolated cells of `cell_size` (see
    /// [`Topology::isolated_cells`]) — and, unlike
    /// [`topology`](Simulation::topology)'s explicit layout, keep that
    /// structure when a [`SweepGrid`](crate::SweepGrid) restamps the
    /// station count onto this template. This is the portfolio plumbing
    /// for multi-domain sweep scenarios: a grid over `n` scales the
    /// number of cells, not the contention density inside one.
    pub fn cells_of(mut self, cell_size: usize) -> Self {
        assert!(cell_size >= 1, "cell_size must be at least 1");
        self.cell_size = Some(cell_size);
        self.topology = Topology::isolated_cells(self.n, cell_size);
        self
    }

    /// Place the stations on an explicit [`Topology`]. The station count
    /// follows the topology; a fully-connected topology reproduces the
    /// legacy single-domain engine byte-for-byte, while spatial
    /// topologies run the multi-domain coordinator (see
    /// [`try_run_topology`](Simulation::try_run_topology)).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.n = topology.num_stations();
        self.topology = topology;
        // An explicit layout overrides any earlier `cells_of` structure.
        self.cell_size = None;
        self
    }

    /// Shard independent topology components across this many worker
    /// threads (via [`crate::BatchRunner`]; default 1). Results are
    /// byte-identical for any worker count.
    pub fn domain_workers(mut self, workers: usize) -> Self {
        self.domain_workers = workers;
        self
    }

    /// Build from a [`Scenario`] — the topology-first front door.
    /// Equivalent to `scenario.simulation()`.
    pub fn scenario(scenario: &Scenario) -> Self {
        scenario.simulation()
    }

    /// Use custom channel timing.
    pub fn timing(mut self, timing: MacTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Set the simulation horizon in µs.
    pub fn horizon_us(mut self, us: f64) -> Self {
        self.horizon = Microseconds(us);
        self
    }

    /// Set the master seed. Station backoff draws, traffic arrivals and
    /// burst draws all derive from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the burst policy.
    pub fn burst(mut self, burst: BurstPolicy) -> Self {
        self.burst = burst;
        self
    }

    /// Set the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set the traffic model applied to every station.
    pub fn traffic(mut self, traffic: TrafficModel) -> Self {
        self.traffic = traffic;
        self
    }

    /// Set the per-PB channel error probability (0 = the paper's
    /// error-free assumption). Derive realistic values with
    /// `plc_phy::PbErrorModel`.
    pub fn pb_error_prob(mut self, p: f64) -> Self {
        self.pb_error_prob = p;
        self
    }

    /// Enable beacon scheduling (the paper's model has none; the standard
    /// transmits one CCo beacon per two mains cycles).
    pub fn beacons(mut self, schedule: crate::engine::BeaconSchedule) -> Self {
        self.beacons = Some(schedule);
        self
    }

    /// Schedule impulse-noise bursts (see
    /// [`plc_faults::NoiseBurst`]): while one is active, every PB of
    /// every transmission errors. Typically taken from a
    /// [`plc_faults::FaultPlan`]'s `noise` schedule.
    pub fn noise(mut self, bursts: impl IntoIterator<Item = plc_faults::NoiseBurst>) -> Self {
        self.noise.extend(bursts);
        self.noise.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        self
    }

    /// Emit per-station [`TraceEvent::Snapshot`](crate::trace::TraceEvent)
    /// events after every step (Figure 1-style backoff traces; costly on
    /// long runs).
    pub fn snapshots(mut self, emit: bool) -> Self {
        self.snapshots = emit;
        self
    }

    /// Enable or disable the engine's idle-slot fast-forward (on by
    /// default). The optimization is exact — traces, metrics and sweep
    /// output are byte-identical either way — so disabling it is only
    /// useful for benchmarking the slow path or for debugging.
    pub fn fast_forward(mut self, enabled: bool) -> Self {
        self.fast_forward = enabled;
        self
    }

    /// Enable or disable the struct-of-arrays contention core (on by
    /// default). Like fast-forward, the SoA core is exact — reports,
    /// traces and sweep output are byte-identical either way — so
    /// disabling it only matters for benchmarking the per-object
    /// reference path or for debugging.
    pub fn soa(mut self, enabled: bool) -> Self {
        self.soa = enabled;
        self
    }

    /// Install a cooperative [`CancelToken`](plc_core::CancelToken):
    /// the slotted engine polls it once per slot and returns early when
    /// it fires, leaving partial metrics behind (the report computed
    /// from them covers only the simulated time actually run — check
    /// [`CancelToken::is_cancelled`](plc_core::CancelToken::is_cancelled)
    /// afterwards and discard the report if exactness matters, as the
    /// `plc-jobs` watchdog does). Without a token the engine dispatches
    /// to its exact pre-cancellation loops, so support is zero-cost
    /// when unused. The deterministic mean-field backend solves in
    /// microseconds and ignores the token.
    pub fn cancel(mut self, token: plc_core::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attach a trace sink; every built engine emits its events into it.
    /// Repeatable.
    pub fn sink(mut self, sink: SharedSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attach a periodic observer: it receives an engine snapshot every
    /// `every_steps` steps (see [`SlottedEngine::add_observer`]).
    /// Repeatable. Observers never perturb results.
    pub fn observer(mut self, observer: SharedObserver, every_steps: u64) -> Self {
        self.observers.push((observer, every_steps));
        self
    }

    /// Instrument built engines into `registry` (hot-path span timers
    /// and the `engine.steps` counter; see [`SlottedEngine::instrument`]).
    pub fn registry(mut self, registry: &plc_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Build the engine (for callers that want to attach sinks or step
    /// manually).
    ///
    /// # Panics
    ///
    /// On invalid configuration; [`try_build`](Simulation::try_build)
    /// returns the error instead.
    pub fn build(&self) -> SlottedEngine<AnyBackoff> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build the engine, surfacing configuration problems (overlapping
    /// noise bursts, invalid timing, metric-name clashes in the attached
    /// registry) as typed errors instead of panicking.
    pub fn try_build(&self) -> plc_core::error::Result<SlottedEngine<AnyBackoff>> {
        if self.backend != Backend::Slotted {
            return Err(plc_core::error::Error::invalid_config(
                "the mean-field backend has no slotted engine to build; \
                 call run()/try_run() directly, or select Backend::Slotted",
            ));
        }
        if !self.topology.is_fully_connected() {
            return Err(plc_core::error::Error::invalid_config(
                "a spatial topology has no single slotted engine to build; \
                 call run()/try_run() (or try_run_topology() for the \
                 per-cell breakdown) instead",
            ));
        }
        let mut proc_rng = SmallRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
        );
        let stations: Vec<StationSpec<AnyBackoff>> = (0..self.n)
            .map(|_| {
                let process: AnyBackoff = match self.protocol {
                    Protocol::Ieee1901 => {
                        Backoff1901::new(self.config.clone(), &mut proc_rng).into()
                    }
                    Protocol::Dcf80211 => {
                        BackoffDcf::new(self.config.clone(), &mut proc_rng).into()
                    }
                };
                StationSpec {
                    traffic: self.traffic,
                    ..StationSpec::saturated(process)
                }
            })
            .collect();
        let cfg = EngineConfig {
            timing: self.timing,
            horizon: self.horizon,
            burst: self.burst,
            retry: self.retry,
            pb_error_prob: self.pb_error_prob,
            emit_snapshots: self.snapshots,
            emit_wire_events: true,
            beacons: self.beacons,
            noise: self.noise.clone(),
            fast_forward: self.fast_forward,
            soa: self.soa,
            cancel: self.cancel.clone(),
        };
        let mut engine = SlottedEngine::try_new(cfg, stations, self.seed)?;
        for s in &self.sinks {
            engine.add_sink(s.clone());
        }
        for (obs, every) in &self.observers {
            engine.add_observer(obs.clone(), *every);
        }
        if let Some(reg) = &self.registry {
            engine.instrument(reg)?;
        }
        Ok(engine)
    }

    /// Build, run to the horizon, and summarize. The single entry point:
    /// attached sinks, observers and instrumentation all apply.
    ///
    /// # Panics
    ///
    /// On invalid configuration; [`try_run`](Simulation::try_run)
    /// returns the error instead.
    pub fn run(&self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build and run, surfacing configuration problems as typed errors.
    pub fn try_run(&self) -> plc_core::error::Result<SimReport> {
        match self.backend {
            Backend::Slotted => {
                if !self.topology.is_fully_connected() {
                    return Ok(self.try_run_topology()?.report);
                }
                let mut engine = self.try_build()?;
                engine.run();
                Ok(SimReport::from_metrics(
                    engine.metrics().clone(),
                    self.timing.frame_length,
                ))
            }
            Backend::MeanField => {
                self.meanfield_supported()?;
                crate::backend::meanfield_report(
                    &self.config,
                    self.n,
                    &self.timing,
                    self.horizon,
                    self.registry.as_ref(),
                )
            }
        }
    }

    /// Run and return the full multi-domain view: the merged report plus
    /// per-cell reports and the cross-domain interaction counters.
    ///
    /// Works for any topology — a fully-connected one runs the legacy
    /// single-domain engine and wraps its report as the only cell (zero
    /// jams, zero defers). Requires [`Backend::Slotted`]; the mean-field
    /// backend rejects multi-domain topologies with a typed error.
    pub fn try_run_topology(&self) -> plc_core::error::Result<MultiDomainReport> {
        if self.backend != Backend::Slotted {
            return Err(plc_core::error::Error::invalid_config(
                "the mean-field backend does not model multi-domain topologies; \
                 use Backend::Slotted for this configuration",
            ));
        }
        if self.topology.is_fully_connected() {
            let mut engine = self.try_build()?;
            engine.run();
            let report =
                SimReport::from_metrics(engine.metrics().clone(), self.timing.frame_length);
            return Ok(MultiDomainReport {
                cells: vec![report.clone()],
                report,
                jammed_tx: 0,
                sensed_defers: 0,
            });
        }
        crate::multidomain::run_spatial(self, &self.topology)
    }

    /// [`try_run_topology`](Simulation::try_run_topology), panicking on
    /// invalid configuration.
    pub fn run_topology(&self) -> MultiDomainReport {
        self.try_run_topology().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The analytic quantities behind a mean-field run — the solved fixed
    /// point with diagnostics plus the drift-state access-delay summary —
    /// for callers that want more than the [`SimReport`] schema. Errors
    /// unless the mean-field backend is selected and supported.
    pub fn meanfield_analysis(&self) -> plc_core::error::Result<MeanFieldReport> {
        if self.backend != Backend::MeanField {
            return Err(plc_core::error::Error::invalid_config(
                "meanfield_analysis() needs Backend::MeanField",
            ));
        }
        self.meanfield_supported()?;
        crate::backend::meanfield_analysis(&self.config, self.n, &self.timing)
    }

    /// Reject knobs the mean-field model cannot represent. The backend
    /// covers exactly the paper's analytic setting: error-free channel,
    /// saturated single-class traffic, single-MPDU transmissions,
    /// infinite retries, no beacons/noise/traces.
    fn meanfield_supported(&self) -> plc_core::error::Result<()> {
        use plc_core::error::Error;
        let reject = |what: &str| {
            Err(Error::invalid_config(format!(
                "the mean-field backend does not model {what}; \
                 use Backend::Slotted for this configuration"
            )))
        };
        if !self.topology.is_fully_connected() {
            return reject("multi-domain topologies");
        }
        if self.traffic != TrafficModel::Saturated {
            return reject("unsaturated traffic");
        }
        if self.pb_error_prob != 0.0 {
            return reject("channel errors (pb_error_prob > 0)");
        }
        if self.burst != BurstPolicy::Single {
            return reject("MPDU bursting");
        }
        if self.retry != RetryPolicy::Infinite {
            return reject("finite retry limits");
        }
        if self.beacons.is_some() {
            return reject("beacon schedules");
        }
        if !self.noise.is_empty() {
            return reject("impulse-noise bursts");
        }
        if self.snapshots {
            return reject("per-step snapshots");
        }
        if !self.sinks.is_empty() {
            return reject("trace sinks");
        }
        if !self.observers.is_empty() {
            return reject("periodic observers");
        }
        Ok(())
    }

    /// Build with the given sinks attached, run, and summarize.
    ///
    /// Deprecated: every internal call site now goes through
    /// [`sink`](Simulation::sink) + [`run`](Simulation::run); only the
    /// compatibility test below still calls this. It will be **removed in
    /// 0.2.0** along with its test.
    #[deprecated(
        since = "0.1.0",
        note = "attach sinks with Simulation::sink(...) and call run(); removal planned for 0.2.0"
    )]
    pub fn run_with_sinks(&self, sinks: Vec<SharedSink>) -> SimReport {
        let mut with = self.clone();
        with.sinks.extend(sinks);
        with.run()
    }

    /// Run `repeats` replications with distinct derived seeds and return
    /// each report (the paper averages 10 testbed runs per point).
    ///
    /// Replication `k` runs with
    /// [`sweep::derive_seed`](crate::sweep::derive_seed)`(seed, 0, k)` —
    /// the same SplitMix64 mixing the sweep engine uses — so the streams
    /// of adjacent master seeds never overlap (a plain `seed + k` scheme
    /// collides: base 3 replication 1 equals base 4 replication 0).
    /// Deterministic backends short-circuit: every replication would be
    /// byte-identical (the seed is ignored), so a single report is
    /// returned regardless of `repeats`.
    pub fn run_repeated(&self, repeats: u64) -> Vec<SimReport> {
        if self.is_deterministic() {
            return vec![self.run()];
        }
        (0..repeats)
            .map(|k| {
                let mut s = self.clone();
                s.seed = crate::sweep::derive_seed(self.seed, 0, k);
                s.run()
            })
            .collect()
    }

    /// Run `repeats` replications and summarize, backend-aware: the
    /// slotted engine yields a [`RunSummary::Sampled`] mean ± CI over
    /// genuinely distinct replications, while a deterministic backend
    /// returns its single exact report as [`RunSummary::Deterministic`]
    /// instead of a degenerate zero-variance "confidence interval".
    pub fn run_summary(&self, repeats: u64) -> RunSummary {
        if self.is_deterministic() {
            RunSummary::Deterministic(Box::new(self.run()))
        } else {
            RunSummary::Sampled(ReplicationSummary::of(&self.run_repeated(repeats)))
        }
    }
}

/// Backend-aware replication summary: sampled statistics from the
/// stochastic engine, or the single exact report of a deterministic one.
///
/// Collapsing a deterministic backend into [`ReplicationSummary`] would
/// fabricate a zero-width confidence interval from `repeats` copies of
/// the same number; keeping the variants distinct lets consumers render
/// "exact" instead of "± 0.000".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunSummary {
    /// One exact report from a deterministic backend (mean-field).
    Deterministic(Box<SimReport>),
    /// Mean ± CI across stochastic replications.
    Sampled(ReplicationSummary),
}

impl RunSummary {
    /// Point estimate of the collision probability.
    pub fn collision_probability(&self) -> f64 {
        match self {
            RunSummary::Deterministic(r) => r.collision_probability,
            RunSummary::Sampled(s) => s.collision_probability.mean,
        }
    }

    /// Point estimate of the normalized throughput.
    pub fn norm_throughput(&self) -> f64 {
        match self {
            RunSummary::Deterministic(r) => r.norm_throughput,
            RunSummary::Sampled(s) => s.norm_throughput.mean,
        }
    }

    /// Whether the estimate carries sampling error.
    pub fn is_sampled(&self) -> bool {
        matches!(self, RunSummary::Sampled(_))
    }
}

/// A finished run, with the paper's headline quantities precomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Collision probability (`ΣCᵢ / (ΣCᵢ + successes)`), Figure 2's metric.
    pub collision_probability: f64,
    /// Normalized throughput (`delivered payload airtime / elapsed`).
    pub norm_throughput: f64,
    /// Jain's fairness index over station success counts.
    pub jain_fairness: f64,
    /// Successful transmissions.
    pub successes: u64,
    /// Colliding transmissions (per-station counting).
    pub collided_tx: u64,
    /// Simulated time elapsed (µs).
    pub elapsed_us: f64,
    /// Full metrics.
    pub metrics: Metrics,
}

impl SimReport {
    /// Derive a report from raw metrics.
    pub fn from_metrics(metrics: Metrics, frame_length: Microseconds) -> Self {
        SimReport {
            collision_probability: metrics.collision_probability(),
            norm_throughput: metrics.norm_throughput(frame_length),
            jain_fairness: metrics.jain_fairness(),
            successes: metrics.successes,
            collided_tx: metrics.collided_tx,
            elapsed_us: metrics.elapsed.as_micros(),
            metrics,
        }
    }
}

/// Aggregate replicated reports into mean ± CI summaries per quantity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicationSummary {
    /// Collision probability across replications.
    pub collision_probability: Summary,
    /// Normalized throughput across replications.
    pub norm_throughput: Summary,
    /// Jain fairness across replications.
    pub jain_fairness: Summary,
}

impl ReplicationSummary {
    /// Summarize a set of reports.
    pub fn of(reports: &[SimReport]) -> Self {
        let mut p = Welford::new();
        let mut s = Welford::new();
        let mut j = Welford::new();
        for r in reports {
            p.push(r.collision_probability);
            s.push(r.norm_throughput);
            j.push(r.jain_fairness);
        }
        ReplicationSummary {
            collision_probability: p.summary(),
            norm_throughput: s.summary(),
            jain_fairness: j.summary(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_1901() {
        let r = Simulation::ieee1901(2).horizon_us(5e6).seed(1).run();
        assert!(r.collision_probability > 0.02 && r.collision_probability < 0.2);
        assert!(r.norm_throughput > 0.5);
        assert!(r.successes > 0);
        assert_eq!(r.metrics.num_stations(), 2);
    }

    #[test]
    fn builder_runs_dcf() {
        let r = Simulation::dcf(2).horizon_us(5e6).seed(1).run();
        assert!(r.successes > 0);
        assert!(r.collision_probability > 0.0);
    }

    #[test]
    fn deferral_counter_beats_matched_dcf() {
        // The paper's key effect: with the *same* windows (CW_min = 8,
        // doubling to 64), 1901's deferral counter preemptively spreads
        // stations across stages and yields a lower collision probability
        // than pure DCF, which only reacts to collisions.
        let dcf = Simulation::dcf(4)
            .config(CsmaConfig::dcf_like(8, 4).unwrap())
            .horizon_us(1e7)
            .seed(1)
            .run();
        let p1901 = Simulation::ieee1901(4).horizon_us(1e7).seed(1).run();
        assert!(
            p1901.collision_probability < dcf.collision_probability,
            "1901 {} must beat matched-window DCF {}",
            p1901.collision_probability,
            dcf.collision_probability
        );
    }

    #[test]
    fn reports_are_deterministic() {
        let a = Simulation::ieee1901(3).horizon_us(2e6).seed(7).run();
        let b = Simulation::ieee1901(3).horizon_us(2e6).seed(7).run();
        assert_eq!(a, b);
    }

    #[test]
    fn replications_differ_but_concentrate() {
        let reports = Simulation::ieee1901(3)
            .horizon_us(5e6)
            .seed(3)
            .run_repeated(5);
        assert_eq!(reports.len(), 5);
        let summary = ReplicationSummary::of(&reports);
        assert_eq!(summary.collision_probability.count, 5);
        assert!(summary.collision_probability.std_dev < 0.02);
        assert!(summary.collision_probability.mean > 0.05);
        // Distinct seeds → not all identical.
        assert!(reports.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn adjacent_master_seeds_do_not_share_replications() {
        // Regression: `seed_from_u64(seed + k)` made (base 3, k = 1)
        // reuse (base 4, k = 0)'s stream. SplitMix64 (seed, k) mixing
        // keeps replication sets of adjacent masters fully disjoint.
        let base3 = Simulation::ieee1901(2)
            .horizon_us(5e5)
            .seed(3)
            .run_repeated(3);
        let base4 = Simulation::ieee1901(2)
            .horizon_us(5e5)
            .seed(4)
            .run_repeated(3);
        for a in &base3 {
            for b in &base4 {
                assert_ne!(a, b, "replication streams of masters 3 and 4 overlap");
            }
        }
        // And replications stay reproducible.
        let again = Simulation::ieee1901(2)
            .horizon_us(5e5)
            .seed(3)
            .run_repeated(3);
        assert_eq!(base3, again);
    }

    #[test]
    fn custom_config_flows_through() {
        // A huge constant window nearly eliminates collisions at N=2.
        let r = Simulation::ieee1901(2)
            .config(CsmaConfig::constant_window(256).unwrap())
            .horizon_us(5e6)
            .seed(2)
            .run();
        assert!(
            r.collision_probability < 0.02,
            "CW=256 should be nearly collision-free at N=2, got {}",
            r.collision_probability
        );
    }

    #[test]
    fn doc_example_compiles_and_holds() {
        let report = Simulation::ieee1901(3).horizon_us(5.0e6).seed(42).run();
        assert!(report.collision_probability > 0.0);
        assert!(report.norm_throughput > 0.5);
    }

    #[test]
    fn builder_sink_receives_all_events() {
        use crate::trace::CountingSink;
        use parking_lot::Mutex;
        use std::sync::Arc;
        let sink = Arc::new(Mutex::new(CountingSink::default()));
        let r = Simulation::ieee1901(2)
            .horizon_us(1e6)
            .seed(4)
            .sink(sink.clone())
            .run();
        let c = *sink.lock();
        assert_eq!(c.successes, r.successes);
        assert_eq!(c.collisions, r.metrics.collision_events);
    }

    #[test]
    #[allow(deprecated)]
    fn run_with_sinks_matches_builder_sink() {
        use crate::trace::CountingSink;
        use parking_lot::Mutex;
        use std::sync::Arc;
        let sim = Simulation::ieee1901(2).horizon_us(5e5).seed(9);
        let a_sink = Arc::new(Mutex::new(CountingSink::default()));
        let a = sim.clone().sink(a_sink.clone()).run();
        let b_sink = Arc::new(Mutex::new(CountingSink::default()));
        let b = sim.run_with_sinks(vec![b_sink.clone()]);
        assert_eq!(a, b);
        assert_eq!(*a_sink.lock(), *b_sink.lock());
    }

    #[test]
    fn meanfield_backend_tracks_slotted_at_moderate_n() {
        let slotted = Simulation::ieee1901(10).horizon_us(1e7).seed(11).run();
        let mf = Simulation::ieee1901(10)
            .backend(Backend::MeanField)
            .horizon_us(1e7)
            .run();
        assert!(
            (slotted.collision_probability - mf.collision_probability).abs() < 0.05,
            "slotted γ={} vs mean-field γ={}",
            slotted.collision_probability,
            mf.collision_probability
        );
        assert!((slotted.norm_throughput - mf.norm_throughput).abs() < 0.05);
    }

    #[test]
    fn meanfield_runs_ignore_the_seed() {
        let a = Simulation::ieee1901(5)
            .backend(Backend::MeanField)
            .seed(1)
            .run();
        let b = Simulation::ieee1901(5)
            .backend(Backend::MeanField)
            .seed(999)
            .run();
        assert_eq!(a, b);
    }

    #[test]
    fn meanfield_run_repeated_short_circuits() {
        let reports = Simulation::ieee1901(5)
            .backend(Backend::MeanField)
            .run_repeated(10);
        assert_eq!(reports.len(), 1, "deterministic backend replicates once");
        match Simulation::ieee1901(5)
            .backend(Backend::MeanField)
            .run_summary(10)
        {
            RunSummary::Deterministic(r) => assert_eq!(*r, reports[0]),
            RunSummary::Sampled(_) => panic!("mean-field summary must be Deterministic"),
        }
        match Simulation::ieee1901(3).horizon_us(5e5).run_summary(3) {
            RunSummary::Sampled(s) => assert_eq!(s.collision_probability.count, 3),
            RunSummary::Deterministic(_) => panic!("slotted summary must be Sampled"),
        }
    }

    #[test]
    fn meanfield_rejects_unsupported_knobs() {
        let cases: Vec<(&str, Simulation)> = vec![
            (
                "pb errors",
                Simulation::ieee1901(3)
                    .backend(Backend::MeanField)
                    .pb_error_prob(0.1),
            ),
            (
                "bursting",
                Simulation::ieee1901(3)
                    .backend(Backend::MeanField)
                    .burst(BurstPolicy::Fixed(4)),
            ),
            (
                "finite retries",
                Simulation::ieee1901(3)
                    .backend(Backend::MeanField)
                    .retry(RetryPolicy::Limited { max_attempts: 3 }),
            ),
            (
                "noise",
                Simulation::ieee1901(3).backend(Backend::MeanField).noise([
                    plc_faults::NoiseBurst {
                        start_us: 0.0,
                        duration_us: 100.0,
                    },
                ]),
            ),
            (
                "snapshots",
                Simulation::ieee1901(3)
                    .backend(Backend::MeanField)
                    .snapshots(true),
            ),
        ];
        for (what, sim) in cases {
            let err = sim.try_run().expect_err(what);
            assert!(
                err.to_string()
                    .contains("mean-field backend does not model"),
                "{what}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn meanfield_try_build_is_a_typed_error() {
        let err = Simulation::ieee1901(3)
            .backend(Backend::MeanField)
            .try_build()
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("no slotted engine"));
    }

    #[test]
    fn meanfield_analysis_exposes_diagnostics_and_delay() {
        let a = Simulation::ieee1901(10)
            .backend(Backend::MeanField)
            .meanfield_analysis()
            .unwrap();
        assert!(a.solution.diagnostics.converged);
        assert!(a.delay.mean_us > 0.0);
        // And the accessor refuses on the slotted backend.
        assert!(Simulation::ieee1901(10).meanfield_analysis().is_err());
    }

    #[test]
    fn observers_and_registry_do_not_perturb_results() {
        use parking_lot::Mutex;
        use std::sync::Arc;
        let plain = Simulation::ieee1901(3).horizon_us(1e6).seed(5).run();
        let collector = Arc::new(Mutex::new(plc_obs::CollectingObserver::default()));
        let registry = plc_obs::Registry::new();
        let observed = Simulation::ieee1901(3)
            .horizon_us(1e6)
            .seed(5)
            .observer(collector.clone(), 500)
            .registry(&registry)
            .run();
        assert_eq!(plain, observed, "observation must be read-only");
        let snaps = collector.lock();
        assert!(!snaps.engine.is_empty(), "periodic snapshots must arrive");
        let first = &snaps.engine[0];
        assert_eq!(first.step, 500);
        assert_eq!(first.stations.len(), 3);
        assert_eq!(first.stage_occupancy().iter().sum::<usize>(), 3);
        let steps = registry.snapshot().counter("engine.steps").unwrap();
        assert!(steps >= snaps.engine.len() as u64 * 500);
    }
}
