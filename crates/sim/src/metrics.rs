//! Metrics collected by the simulation engines.
//!
//! Counter semantics deliberately match the testbed's: a "collision" is
//! counted once *per colliding station* (that is what each station's
//! firmware counter `Cᵢ` sees, and what the MATLAB reference accumulates
//! with `collisions += counter`), while a success is one acknowledged
//! transmission. The derived quantities reproduce the paper's definitions:
//!
//! * collision probability `= ΣCᵢ / (ΣCᵢ + successes)` — identical to the
//!   testbed's `ΣCᵢ / ΣAᵢ` because 1901 selective ACKs cover collided
//!   frames too, so `ΣAᵢ = ΣCᵢ + successes`;
//! * normalized throughput `= payload airtime / elapsed time`.

use plc_core::units::Microseconds;
use plc_stats::fairness::jain_index;
use plc_stats::summary::Welford;
use serde::{Deserialize, Serialize};

/// Per-station counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StationMetrics {
    /// Successful transmissions (contention wins that were acknowledged
    /// clean). With bursting, one win still counts once here; MPDU-level
    /// counts live in `mpdus_ok`.
    pub successes: u64,
    /// Transmission attempts that ended in a collision.
    pub collisions: u64,
    /// Total transmission attempts (`successes + collisions`).
    pub attempts: u64,
    /// MPDUs delivered without error (burst-aware: one per MPDU).
    pub mpdus_ok: u64,
    /// MPDUs that collided (one per MPDU put on the wire during a
    /// collision; with bursting every MPDU of the burst goes out and is
    /// acknowledged-with-errors, so all of them count).
    pub mpdus_collided: u64,
    /// MPDUs acknowledged with a mix of clean and errored PBs (channel
    /// errors; the errored PBs are selectively retransmitted).
    pub mpdus_partial: u64,
    /// Physical blocks delivered clean.
    pub pbs_delivered: u64,
    /// Physical blocks received in error (channel errors, not collisions).
    pub pbs_errored: u64,
    /// Frames fully delivered (every PB clean, possibly across several
    /// selective retransmissions).
    pub frames_completed: u64,
    /// Frames discarded by the retry policy.
    pub dropped: u64,
    /// Inter-success times in µs (access-delay proxy).
    pub intersuccess: Welford,
    /// Time of this station's last success, if any.
    pub last_success: Option<Microseconds>,
}

impl StationMetrics {
    /// MPDUs acknowledged by the destination, *including* collided and
    /// partially-errored ones — the 1901 selective-ACK semantics behind
    /// the testbed's `Aᵢ`.
    pub fn mpdus_acked(&self) -> u64 {
        self.mpdus_ok + self.mpdus_partial + self.mpdus_collided
    }
}

/// Aggregate metrics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Simulated time elapsed.
    pub elapsed: Microseconds,
    /// Number of idle contention slots.
    pub idle_slots: u64,
    /// Successful contention rounds.
    pub successes: u64,
    /// Collision rounds (events, not stations).
    pub collision_events: u64,
    /// Colliding stations summed over collision rounds (the paper's
    /// `collisions` counter / the testbed's `ΣCᵢ`).
    pub collided_tx: u64,
    /// Time the medium spent idle.
    pub time_idle: Microseconds,
    /// Time spent in successful transmissions (bursts included).
    pub time_success: Microseconds,
    /// Time spent in collisions.
    pub time_collision: Microseconds,
    /// Time spent in priority-resolution phases (multi-class engine).
    pub time_prs: Microseconds,
    /// Beacons transmitted by the coordinator.
    pub beacons: u64,
    /// Time spent in beacon transmissions.
    pub time_beacon: Microseconds,
    /// MPDUs delivered clean, network-wide.
    pub mpdus_ok: u64,
    /// Frames fully delivered network-wide (all PBs clean, possibly after
    /// selective retransmissions).
    pub frames_completed: u64,
    /// Payload airtime actually delivered (µs), crediting each clean PB
    /// its share of the frame length. Equals `mpdus_ok · frame_length`
    /// on an error-free channel; strictly less under channel errors.
    pub payload_delivered_us: f64,
    /// Per-station breakdown.
    pub per_station: Vec<StationMetrics>,
}

impl Metrics {
    /// Fresh metrics for `n` stations.
    pub fn new(n: usize) -> Self {
        Metrics {
            per_station: vec![StationMetrics::default(); n],
            ..Default::default()
        }
    }

    /// Number of stations.
    pub fn num_stations(&self) -> usize {
        self.per_station.len()
    }

    /// The paper's collision probability: colliding transmissions over all
    /// acknowledged transmissions (`ΣCᵢ / (ΣCᵢ + successes)`).
    ///
    /// Returns 0 when nothing was transmitted.
    pub fn collision_probability(&self) -> f64 {
        let denom = self.collided_tx + self.successes;
        if denom == 0 {
            0.0
        } else {
            self.collided_tx as f64 / denom as f64
        }
    }

    /// MPDU-level collision probability (`Σ mpdus_collided / Σ mpdus_acked`)
    /// — exactly what the testbed computes from the ampstat counters. With
    /// single-MPDU transmissions it coincides with
    /// [`collision_probability`](Self::collision_probability).
    pub fn mpdu_collision_probability(&self) -> f64 {
        let collided: u64 = self.per_station.iter().map(|s| s.mpdus_collided).sum();
        let acked: u64 = self.per_station.iter().map(|s| s.mpdus_acked()).sum();
        if acked == 0 {
            0.0
        } else {
            collided as f64 / acked as f64
        }
    }

    /// Normalized throughput: payload airtime per unit time, where each
    /// delivered MPDU is credited `frame_length` of payload airtime
    /// (`successes · frame_length / t` in the reference simulator; burst
    /// deliveries credit each MPDU).
    pub fn norm_throughput(&self, frame_length: Microseconds) -> f64 {
        if self.elapsed.as_micros() == 0.0 {
            return 0.0;
        }
        (frame_length * self.mpdus_ok) / self.elapsed
    }

    /// Goodput: payload airtime actually delivered per unit time. On an
    /// error-free channel this equals
    /// [`norm_throughput`](Self::norm_throughput); with channel errors it
    /// accounts for errored PBs awaiting selective retransmission.
    pub fn goodput(&self) -> f64 {
        if self.elapsed.as_micros() == 0.0 {
            return 0.0;
        }
        self.payload_delivered_us / self.elapsed.as_micros()
    }

    /// Jain's fairness index over per-station success counts.
    pub fn jain_fairness(&self) -> f64 {
        let alloc: Vec<f64> = self
            .per_station
            .iter()
            .map(|s| s.successes as f64)
            .collect();
        jain_index(&alloc)
    }

    /// Fraction of wall-clock spent idle / in success / in collision / in
    /// PRS. Sums to ~1 (up to the final partial event and beacon time).
    pub fn airtime_shares(&self) -> (f64, f64, f64, f64) {
        let t = self.elapsed.as_micros();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        (
            self.time_idle.as_micros() / t,
            self.time_success.as_micros() / t,
            self.time_collision.as_micros() / t,
            self.time_prs.as_micros() / t,
        )
    }

    /// Record a success for `station` at time `t` (one burst of
    /// `burst_mpdus` MPDUs).
    pub(crate) fn record_success(&mut self, station: usize, t: Microseconds, burst_mpdus: usize) {
        self.successes += 1;
        self.mpdus_ok += burst_mpdus as u64;
        let s = &mut self.per_station[station];
        s.successes += 1;
        s.attempts += 1;
        s.mpdus_ok += burst_mpdus as u64;
        if let Some(last) = s.last_success {
            s.intersuccess.push((t - last).as_micros());
        }
        s.last_success = Some(t);
    }

    /// Fold one cell's metrics into this network-wide view: counters and
    /// airtimes sum, `elapsed` is the maximum over cells (cells run
    /// concurrently on the wire), and `members[local]` maps the cell's
    /// station indices to their global slots. Each station belongs to
    /// exactly one cell, so per-station rows move rather than merge.
    pub(crate) fn absorb_cell(&mut self, cell: &Metrics, members: &[usize]) {
        debug_assert_eq!(cell.per_station.len(), members.len());
        self.elapsed = Microseconds(self.elapsed.as_micros().max(cell.elapsed.as_micros()));
        self.idle_slots += cell.idle_slots;
        self.successes += cell.successes;
        self.collision_events += cell.collision_events;
        self.collided_tx += cell.collided_tx;
        self.time_idle += cell.time_idle;
        self.time_success += cell.time_success;
        self.time_collision += cell.time_collision;
        self.time_prs += cell.time_prs;
        self.beacons += cell.beacons;
        self.time_beacon += cell.time_beacon;
        self.mpdus_ok += cell.mpdus_ok;
        self.frames_completed += cell.frames_completed;
        self.payload_delivered_us += cell.payload_delivered_us;
        for (local, &global) in members.iter().enumerate() {
            self.per_station[global] = cell.per_station[local].clone();
        }
    }

    /// Record a collision among `stations`, each transmitting a burst of
    /// the given MPDU count. `collided_tx` counts *stations* (the
    /// event-level semantics of the reference simulator); the per-station
    /// MPDU counters count every MPDU of the burst (the firmware-counter
    /// semantics of the testbed).
    pub(crate) fn record_collision(&mut self, stations: &[(usize, usize)]) {
        self.collision_events += 1;
        self.collided_tx += stations.len() as u64;
        for &(i, mpdus) in stations {
            let s = &mut self.per_station[i];
            s.collisions += 1;
            s.attempts += 1;
            s.mpdus_collided += mpdus as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_probability_matches_paper_definition() {
        let mut m = Metrics::new(2);
        m.record_success(0, Microseconds(10.0), 1);
        m.record_success(1, Microseconds(20.0), 1);
        m.record_collision(&[(0, 1), (1, 1)]);
        // collisions = 2 stations, successes = 2 → p = 2/4.
        assert_eq!(m.collision_probability(), 0.5);
        assert_eq!(m.collision_events, 1);
        assert_eq!(m.collided_tx, 2);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(3);
        assert_eq!(m.collision_probability(), 0.0);
        assert_eq!(m.mpdu_collision_probability(), 0.0);
        assert_eq!(m.norm_throughput(Microseconds(2050.0)), 0.0);
        assert_eq!(m.airtime_shares(), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn mpdu_probability_equals_event_probability_without_bursts() {
        let mut m = Metrics::new(2);
        for _ in 0..7 {
            m.record_success(0, Microseconds(1.0), 1);
        }
        m.record_collision(&[(0, 1), (1, 1)]);
        assert!((m.collision_probability() - m.mpdu_collision_probability()).abs() < 1e-12);
    }

    #[test]
    fn full_burst_collisions_preserve_mpdu_ratio() {
        let mut m = Metrics::new(2);
        // One success delivering 2 MPDUs, one collision where both
        // stations put their full 2-MPDU bursts on the wire.
        m.record_success(0, Microseconds(1.0), 2);
        m.record_collision(&[(0, 2), (1, 2)]);
        // Event-level: 2 collided stations / 3 transmissions.
        assert!((m.collision_probability() - 2.0 / 3.0).abs() < 1e-12);
        // MPDU-level: 4 collided / 6 acked — the same ratio, which is why
        // the paper's per-MPDU firmware counters reproduce the event-level
        // collision probability despite the 2-MPDU bursts.
        assert!((m.mpdu_collision_probability() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn throughput_counts_mpdus() {
        let mut m = Metrics::new(1);
        m.record_success(0, Microseconds(1.0), 2);
        m.elapsed = Microseconds(10_000.0);
        assert!((m.norm_throughput(Microseconds(2050.0)) - 2.0 * 2050.0 / 10_000.0).abs() < 1e-12);
    }

    #[test]
    fn intersuccess_tracking() {
        let mut m = Metrics::new(1);
        m.record_success(0, Microseconds(100.0), 1);
        m.record_success(0, Microseconds(300.0), 1);
        m.record_success(0, Microseconds(600.0), 1);
        let w = &m.per_station[0].intersuccess;
        assert_eq!(w.count(), 2);
        assert!((w.mean() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn jain_over_success_counts() {
        let mut m = Metrics::new(2);
        for _ in 0..10 {
            m.record_success(0, Microseconds(1.0), 1);
        }
        assert!(
            (m.jain_fairness() - 0.5).abs() < 1e-12,
            "one station hogging → 1/n"
        );
        for _ in 0..10 {
            m.record_success(1, Microseconds(1.0), 1);
        }
        assert!((m.jain_fairness() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acked_includes_collided() {
        let mut m = Metrics::new(1);
        m.record_success(0, Microseconds(1.0), 1);
        m.record_collision(&[(0, 1)]);
        assert_eq!(m.per_station[0].mpdus_acked(), 2);
    }

    #[test]
    fn airtime_shares_sum_to_one() {
        let mut m = Metrics::new(1);
        m.time_idle = Microseconds(300.0);
        m.time_success = Microseconds(500.0);
        m.time_collision = Microseconds(150.0);
        m.time_prs = Microseconds(50.0);
        m.elapsed = Microseconds(1000.0);
        let (i, s, c, p) = m.airtime_shares();
        assert!((i + s + c + p - 1.0).abs() < 1e-12);
        assert_eq!(s, 0.5);
    }
}
