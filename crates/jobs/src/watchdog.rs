//! Per-point watchdog: a deadline thread that cancels a stuck point.
//!
//! The engine has no preemption — a pathological configuration can grind
//! through an enormous horizon. The watchdog arms a wall-clock deadline
//! before a point attempt starts; if the attempt is still running when
//! the deadline passes, the watchdog fires the attempt's
//! [`CancelToken`], which the engine's slot loop polls cooperatively.
//! The attempt then returns promptly with partial metrics, the job layer
//! sees the fired token and discards them as a timeout.
//!
//! Disarming (the normal case — the point finished in time) wakes the
//! deadline thread immediately and joins it, so watchdogs never pile up
//! behind fast points.

use plc_core::CancelToken;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A one-shot deadline armed over a single point attempt.
#[derive(Debug)]
pub struct Watchdog {
    disarmed: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Arm a deadline: unless [`disarm`](Watchdog::disarm)ed first,
    /// `token` is cancelled once `timeout` of wall-clock time elapses.
    pub fn arm(timeout: Duration, token: CancelToken) -> Watchdog {
        let disarmed = Arc::new((Mutex::new(false), Condvar::new()));
        let shared = Arc::clone(&disarmed);
        let handle = std::thread::Builder::new()
            .name("plc-jobs-watchdog".into())
            .spawn(move || {
                let (lock, cvar) = &*shared;
                let deadline = Instant::now() + timeout;
                let mut off = lock.lock().expect("watchdog lock");
                loop {
                    if *off {
                        return;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        token.cancel();
                        return;
                    }
                    let (guard, _) = cvar
                        .wait_timeout(off, deadline - now)
                        .expect("watchdog wait");
                    off = guard;
                }
            })
            .expect("spawn watchdog thread");
        Watchdog {
            disarmed,
            handle: Some(handle),
        }
    }

    /// Stand down: wake the deadline thread and join it. Dropping a
    /// `Watchdog` disarms the same way; after either, a late fire is
    /// impossible — the caller checks the *token* to learn whether the
    /// deadline won the race.
    pub fn disarm(mut self) {
        self.stand_down();
    }

    fn stand_down(&mut self) {
        let (lock, cvar) = &*self.disarmed;
        *lock.lock().expect("watchdog lock") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stand_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_after_the_deadline() {
        let token = CancelToken::new();
        let dog = Watchdog::arm(Duration::from_millis(10), token.clone());
        let started = Instant::now();
        while !token.is_cancelled() {
            assert!(
                started.elapsed() < Duration::from_secs(10),
                "watchdog never fired"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(dog);
        assert!(token.is_cancelled());
    }

    #[test]
    fn disarm_before_deadline_leaves_the_token_clean() {
        let token = CancelToken::new();
        let dog = Watchdog::arm(Duration::from_secs(3600), token.clone());
        dog.disarm();
        assert!(!token.is_cancelled());
    }

    #[test]
    fn drop_is_disarm() {
        let token = CancelToken::new();
        {
            let _dog = Watchdog::arm(Duration::from_secs(3600), token.clone());
        }
        // The deadline thread is joined by Drop; a later fire is
        // impossible.
        assert!(!token.is_cancelled());
    }
}
