//! The job engine: checkpointed, resumable execution of a [`SweepGrid`].
//!
//! A *job* is a sweep bound to a directory. The directory is the whole
//! contract:
//!
//! | file              | contents                                         |
//! |-------------------|--------------------------------------------------|
//! | `manifest.json`   | versioned grid fingerprint + execution record    |
//! | `journal.jsonl`   | one flushed JSON line per settled point          |
//! | `quarantine.jsonl`| bad settlements with ready-to-run repro commands |
//! | `results.json`    | the assembled [`SweepResults`], written atomically on completion |
//! | `metrics.json`    | registry snapshot (when a registry is attached)  |
//!
//! Because every point is a pure function of `(master_seed,
//! point_index)` — [`SweepGrid::run_point_at`] is pinned byte-identical
//! to the whole-grid fan-out — a job that is killed at *any* instant and
//! resumed (with any worker count) produces a `results.json`
//! byte-identical to an uninterrupted run.

use crate::journal::{
    append_quarantine, load_quarantine, Journal, JournalEntry, PointOutcome, QuarantineRecord,
};
use crate::manifest::JobManifest;
use crate::sink::ResultSink;
use crate::watchdog::Watchdog;
use plc_core::{CancelToken, Error, Result};
use plc_faults::JobStall;
use plc_sim::sweep::{SweepGrid, SweepResults};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// File name of the manifest inside a job directory.
pub const MANIFEST_FILE_NAME: &str = "manifest.json";
/// File name of the assembled results inside a job directory.
pub const RESULTS_FILE_NAME: &str = "results.json";
/// File name of the registry export inside a job directory.
pub const METRICS_FILE_NAME: &str = "metrics.json";

/// Execution policy of one job (everything that may differ between a
/// run and its resume without breaking byte-identity).
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// The job directory (created if absent).
    pub dir: PathBuf,
    /// Job-level re-settle budget per point: a point that times out or
    /// fails is replayed (same derived seeds) up to this many extra
    /// times before it is quarantined. Default 0.
    pub retries: u32,
    /// Per-point watchdog deadline; `None` (default) arms no watchdog
    /// and costs nothing.
    pub timeout: Option<Duration>,
    /// Name under which a front end can rebuild the grid on resume.
    pub grid_name: Option<String>,
    /// Only settle these point indices (repro / partial runs). The job
    /// completes — and writes `results.json` — only once *every* grid
    /// point is settled in the journal.
    pub points: Option<Vec<usize>>,
    /// Chaos hook: stall the checkpoint hook after the n-th point
    /// journaled by this process (kill-window injection for crash
    /// tests).
    pub stall: Option<JobStall>,
    /// Command prefix for quarantine repro lines, e.g.
    /// `experiments job run --grid chaos-smoke --dir out`.
    pub repro_prefix: Option<String>,
}

impl JobConfig {
    /// Policy with every knob at its default for `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        JobConfig {
            dir: dir.into(),
            retries: 0,
            timeout: None,
            grid_name: None,
            points: None,
            stall: None,
            repro_prefix: None,
        }
    }
}

/// What one [`Job::run`] did.
#[derive(Debug)]
pub struct JobReport {
    /// The assembled sweep — `Some` only when every grid point is
    /// settled (then also on disk as `results.json`).
    pub results: Option<SweepResults>,
    /// Points settled by this process.
    pub executed: usize,
    /// Points skipped because the journal already held them.
    pub resumed: usize,
    /// Extra attempts consumed by job-level retries.
    pub retried: u64,
    /// Points this run quarantined.
    pub quarantined: Vec<QuarantineRecord>,
}

impl JobReport {
    /// Whether the job is fully settled.
    pub fn is_complete(&self) -> bool {
        self.results.is_some()
    }
}

/// Read the manifest of the job under `dir`.
pub fn read_manifest(dir: &Path) -> Result<JobManifest> {
    let path = dir.join(MANIFEST_FILE_NAME);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| Error::runtime(format!("no job manifest at {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| Error::runtime(format!("corrupt job manifest at {}: {e}", path.display())))
}

/// A checkpointed sweep job bound to a directory.
pub struct Job {
    grid: SweepGrid,
    cfg: JobConfig,
    manifest: JobManifest,
    settled: BTreeMap<usize, JournalEntry>,
    resumed: usize,
    sinks: Vec<Box<dyn ResultSink>>,
    registry: Option<plc_obs::Registry>,
    cancel: CancelToken,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("dir", &self.cfg.dir)
            .field("grid", &self.grid)
            .field("settled", &self.settled.len())
            .field("resumed", &self.resumed)
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl Job {
    /// Start a fresh job: create the directory and atomically write the
    /// manifest. Refuses a directory that already holds a manifest —
    /// that is what [`resume`](Job::resume) is for.
    pub fn create(grid: SweepGrid, cfg: JobConfig) -> Result<Job> {
        if grid.num_points() == 0 {
            return Err(Error::invalid_config(
                "job grid has no points (no configs or no station counts)",
            ));
        }
        std::fs::create_dir_all(&cfg.dir)?;
        let manifest_path = cfg.dir.join(MANIFEST_FILE_NAME);
        if manifest_path.exists() {
            return Err(Error::invalid_config(format!(
                "{} already holds a job manifest; resume it or pick a fresh directory",
                cfg.dir.display()
            )));
        }
        let manifest = JobManifest::from_grid(
            &grid,
            cfg.timeout.map(|t| t.as_millis() as u64),
            cfg.grid_name.clone(),
        );
        let mut doc = serde_json::to_string(&manifest).expect("manifest serializes");
        doc.push('\n');
        plc_core::fs::atomic_write(&manifest_path, doc.as_bytes())?;
        Ok(Job {
            grid,
            cfg,
            manifest,
            settled: BTreeMap::new(),
            resumed: 0,
            sinks: Vec::new(),
            registry: None,
            cancel: CancelToken::new(),
        })
    }

    /// Resume the job under `cfg.dir`: validate the on-disk manifest
    /// against `grid`, load the journal (dropping a torn tail), compact
    /// it, and skip every settled point. A mismatching grid is refused
    /// — a journal is never merged across sweeps.
    pub fn resume(grid: SweepGrid, cfg: JobConfig) -> Result<Job> {
        let manifest = read_manifest(&cfg.dir)?;
        let rebuilt = JobManifest::from_grid(
            &grid,
            cfg.timeout.map(|t| t.as_millis() as u64),
            cfg.grid_name.clone(),
        );
        if let Some(why) = manifest.mismatch(&rebuilt) {
            return Err(Error::invalid_config(format!(
                "cannot resume {}: {}",
                cfg.dir.display(),
                why
            )));
        }
        let mut settled = BTreeMap::new();
        for entry in Journal::load(&cfg.dir)? {
            if entry.point_index < grid.num_points() {
                settled.insert(entry.point_index, entry);
            }
        }
        let clean: Vec<JournalEntry> = settled.values().cloned().collect();
        Journal::compact(&cfg.dir, &clean)?;
        let resumed = settled.len();
        Ok(Job {
            grid,
            cfg,
            manifest,
            settled,
            resumed,
            sinks: Vec::new(),
            registry: None,
            cancel: CancelToken::new(),
        })
    }

    /// [`create`](Job::create) when `cfg.dir` holds no manifest,
    /// [`resume`](Job::resume) otherwise.
    pub fn create_or_resume(grid: SweepGrid, cfg: JobConfig) -> Result<Job> {
        if cfg.dir.join(MANIFEST_FILE_NAME).exists() {
            Job::resume(grid, cfg)
        } else {
            Job::create(grid, cfg)
        }
    }

    /// Attach a streaming sink (repeatable). Sinks observe settled
    /// points after their journal line is durable; they cannot perturb
    /// results.
    pub fn sink(mut self, sink: Box<dyn ResultSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Record job instrumentation into `registry`: the
    /// `job.points_done` / `job.points_retried` / `job.points_quarantined`
    /// / `job.points_resumed` counters and the `job.checkpoint_flush`
    /// span timer. The registry is also exported to `metrics.json` when
    /// the job completes.
    pub fn registry(mut self, registry: &plc_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// The job's manifest.
    pub fn manifest(&self) -> &JobManifest {
        &self.manifest
    }

    /// Points already settled in the journal.
    pub fn settled_points(&self) -> usize {
        self.settled.len()
    }

    /// A token that gracefully stops the run between points: settled
    /// work stays journaled, and a later [`resume`](Job::resume)
    /// finishes the rest.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Execute every unsettled point, journaling each as it lands.
    ///
    /// Points are evaluated on the grid's worker pool; the journal, the
    /// sinks and the quarantine ledger are all fed from the collector
    /// thread, in completion order. When the last point settles, the
    /// assembled [`SweepResults`] is written atomically to
    /// `results.json` and every sink's
    /// [`on_complete`](ResultSink::on_complete) fires.
    pub fn run(mut self) -> Result<JobReport> {
        let counters = self.registry.as_ref().map(|r| {
            (
                r.try_counter("job.points_done").ok(),
                r.try_counter("job.points_retried").ok(),
                r.try_counter("job.points_quarantined").ok(),
                r.try_counter("job.points_resumed").ok(),
                r.try_timer("job.checkpoint_flush").ok(),
            )
        });
        let (done_ctr, retried_ctr, quarantined_ctr, resumed_ctr, flush_timer) =
            counters.unwrap_or((None, None, None, None, None));
        if let Some(c) = &resumed_ctr {
            c.add(self.resumed as u64);
        }

        let todo: Vec<usize> = (0..self.grid.num_points())
            .filter(|idx| !self.settled.contains_key(idx))
            .filter(|idx| {
                self.cfg
                    .points
                    .as_ref()
                    .map(|only| only.contains(idx))
                    .unwrap_or(true)
            })
            .collect();

        let mut journal = Journal::open_append(&self.cfg.dir)?;
        let grid = &self.grid;
        let cfg = &self.cfg;
        let sinks = &mut self.sinks;
        let mut io_error: Option<std::io::Error> = None;
        let mut executed = 0usize;
        let mut retried = 0u64;
        let mut quarantined: Vec<QuarantineRecord> = Vec::new();
        let mut fresh: Vec<JournalEntry> = Vec::new();

        let outcomes = plc_sim::BatchRunner::new()
            .workers(grid.num_workers())
            .run_cancellable(
                &self.cancel,
                todo,
                |_, idx, _shard_registry| settle_point(grid, cfg, idx),
                |_, entry: &JournalEntry| {
                    {
                        let _span = flush_timer.as_ref().map(|t| t.start());
                        if io_error.is_none() {
                            if let Err(e) = journal.append(entry) {
                                io_error = Some(e);
                            }
                        }
                    }
                    executed += 1;
                    retried += u64::from(entry.job_attempts - 1);
                    if let Some(c) = &done_ctr {
                        c.inc();
                    }
                    if let Some(c) = &retried_ctr {
                        c.add(u64::from(entry.job_attempts - 1));
                    }
                    if !entry.outcome.is_ok() {
                        let record = quarantine_record(grid, cfg, entry);
                        if io_error.is_none() {
                            if let Err(e) = append_quarantine(&cfg.dir, &record) {
                                io_error = Some(e);
                            }
                        }
                        if let Some(c) = &quarantined_ctr {
                            c.inc();
                        }
                        quarantined.push(record);
                    }
                    for sink in sinks.iter_mut() {
                        sink.on_point(entry);
                    }
                    fresh.push(entry.clone());
                    if let Some(stall) = cfg.stall {
                        if stall.fires_at(executed) {
                            std::thread::sleep(Duration::from_millis(stall.stall_ms));
                        }
                    }
                },
            );
        drop(outcomes);
        drop(journal);
        if let Some(e) = io_error {
            return Err(e.into());
        }
        for entry in fresh {
            self.settled.insert(entry.point_index, entry);
        }

        let results = if self.settled.len() == self.grid.num_points() {
            let results = SweepResults {
                master_seed: self.grid.master_seed(),
                replications: self.grid.replication_budget(),
                points: self
                    .settled
                    .values()
                    .map(|e| e.outcome.to_point_result())
                    .collect(),
            };
            let mut doc = results.to_json();
            doc.push('\n');
            plc_core::fs::atomic_write(self.cfg.dir.join(RESULTS_FILE_NAME), doc.as_bytes())?;
            for sink in self.sinks.iter_mut() {
                sink.on_complete(&results);
            }
            if let Some(registry) = &self.registry {
                registry.write_json_atomic(self.cfg.dir.join(METRICS_FILE_NAME))?;
            }
            Some(results)
        } else {
            None
        };

        Ok(JobReport {
            results,
            executed,
            resumed: self.resumed,
            retried,
            quarantined,
        })
    }
}

/// Settle one point on a worker thread: run it under an optional
/// watchdog, replaying bad settlements until the job-level retry budget
/// is exhausted. Replays use the same derived seeds, so a retry that
/// recovers is byte-identical to a first-try success.
fn settle_point(grid: &SweepGrid, cfg: &JobConfig, idx: usize) -> JournalEntry {
    let mut attempts: u32 = 1;
    loop {
        let token = CancelToken::new();
        let watchdog = cfg.timeout.map(|t| Watchdog::arm(t, token.clone()));
        let result = grid
            .run_point_with(idx, Some(&token))
            .expect("job schedules only in-range points");
        if let Some(dog) = watchdog {
            dog.disarm();
        }
        let outcome = if token.is_cancelled() {
            // Partial metrics from a cancelled engine are not data.
            let (config, n) = grid.point_spec(idx).expect("in-range point has a spec");
            PointOutcome::TimedOut {
                config: config.to_string(),
                n,
                point_index: idx,
                timeout_ms: cfg
                    .timeout
                    .map(|t| t.as_millis() as u64)
                    .unwrap_or_default(),
            }
        } else {
            PointOutcome::Done(result)
        };
        if !outcome.is_ok() && attempts <= cfg.retries {
            attempts += 1;
            continue;
        }
        return JournalEntry {
            point_index: idx,
            job_attempts: attempts,
            outcome,
        };
    }
}

/// Render the quarantine record for a badly settled point.
fn quarantine_record(grid: &SweepGrid, cfg: &JobConfig, entry: &JournalEntry) -> QuarantineRecord {
    let (config, n) = grid
        .point_spec(entry.point_index)
        .map(|(c, n)| (c.to_string(), n))
        .unwrap_or_default();
    let reason = match &entry.outcome {
        PointOutcome::Done(r) => r.failure().unwrap_or("unknown failure").to_string(),
        PointOutcome::TimedOut { timeout_ms, .. } => {
            format!("watchdog timeout after {timeout_ms} ms")
        }
    };
    let repro = match &cfg.repro_prefix {
        Some(prefix) => format!("{prefix} --points {}", entry.point_index),
        None => format!(
            "re-run this job with `points = [{}]` in its JobConfig",
            entry.point_index
        ),
    };
    QuarantineRecord {
        point_index: entry.point_index,
        config,
        n,
        job_attempts: entry.job_attempts,
        reason,
        repro,
    }
}

/// Progress of a job directory, derived from the manifest and journal
/// alone — readable while the job runs, after a crash, or from another
/// process.
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job's manifest.
    pub manifest: JobManifest,
    /// Points settled in the journal.
    pub settled: usize,
    /// Settled points with a usable summary.
    pub ok: usize,
    /// Settled points quarantined (failed or timed out).
    pub quarantined: usize,
    /// Grid points in total.
    pub total: usize,
    /// Whether `results.json` exists (the job ran to completion).
    pub complete: bool,
}

impl JobStatus {
    /// Read the status of the job under `dir`.
    pub fn read(dir: &Path) -> Result<JobStatus> {
        let manifest = read_manifest(dir)?;
        let mut settled: BTreeMap<usize, JournalEntry> = BTreeMap::new();
        for entry in Journal::load(dir)? {
            settled.insert(entry.point_index, entry);
        }
        let ok = settled.values().filter(|e| e.outcome.is_ok()).count();
        let quarantined = settled.len() - ok;
        Ok(JobStatus {
            total: manifest.num_points,
            settled: settled.len(),
            ok,
            quarantined,
            complete: dir.join(RESULTS_FILE_NAME).exists(),
            manifest,
        })
    }

    /// One human-readable progress line.
    pub fn render(&self) -> String {
        let name = self.manifest.grid_name.as_deref().unwrap_or("unnamed");
        let state = if self.complete {
            "complete"
        } else if self.settled == self.total {
            "settled (results pending)"
        } else {
            "in progress"
        };
        format!(
            "job '{}' (seed {}): {}/{} points settled, {} ok, {} quarantined — {}",
            name,
            self.manifest.master_seed,
            self.settled,
            self.total,
            self.ok,
            self.quarantined,
            state
        )
    }

    /// Quarantine ledger of the job under `dir` (empty when absent).
    pub fn quarantine(dir: &Path) -> Result<Vec<QuarantineRecord>> {
        Ok(load_quarantine(dir)?)
    }
}
