//! The job manifest: a versioned fingerprint of *what* is being swept.
//!
//! The manifest is written once, atomically, when a job directory is
//! created, and re-validated on every resume: a journal is only ever
//! merged into a run of the **same** grid. Determinism-relevant fields
//! (seed, replication budget, grid shape, early-stop rule) participate in
//! the compatibility check; execution policy (workers, retries, timeout)
//! deliberately does not — resuming with more workers or a different
//! watchdog must still reproduce the uninterrupted run byte for byte,
//! because every point is a pure function of `(master_seed,
//! point_index)`.

use plc_sim::sweep::{EarlyStop, SweepGrid};
use serde::{Deserialize, Serialize};

/// Journal/manifest format revision. Bump on any incompatible change to
/// [`JobManifest`] or the journal line schema; a resume across versions
/// is refused rather than misread.
pub const FORMAT_VERSION: u32 = 1;

/// Identity and execution record of one sweep job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobManifest {
    /// [`FORMAT_VERSION`] at creation time.
    pub format_version: u32,
    /// Master seed every cell seed derives from.
    pub master_seed: u64,
    /// Requested replications per point.
    pub replications: u64,
    /// Configuration labels, in declaration order.
    pub configs: Vec<String>,
    /// Station counts the grid sweeps over.
    pub stations: Vec<usize>,
    /// Grid points (`configs × stations`).
    pub num_points: usize,
    /// The early-stopping rule, if one is set.
    pub early_stop: Option<EarlyStop>,
    /// Per-point retry budget the job ran with (recorded, not part of
    /// the compatibility fingerprint).
    pub retries: u32,
    /// Per-point watchdog timeout in milliseconds, if armed (recorded,
    /// not fingerprinted).
    pub timeout_ms: Option<u64>,
    /// Name of the grid in the caller's registry, when launched through
    /// a named front end (lets `job resume` rebuild the grid without
    /// re-specifying it).
    pub grid_name: Option<String>,
    /// `git describe` of the source tree that created the job —
    /// best-effort provenance, not fingerprinted.
    pub created_by: Option<String>,
}

impl JobManifest {
    /// Capture `grid` (shape and determinism knobs) plus the job's
    /// execution policy.
    pub fn from_grid(grid: &SweepGrid, timeout_ms: Option<u64>, grid_name: Option<String>) -> Self {
        JobManifest {
            format_version: FORMAT_VERSION,
            master_seed: grid.master_seed(),
            replications: grid.replication_budget(),
            configs: grid.config_labels(),
            stations: grid.station_counts().to_vec(),
            num_points: grid.num_points(),
            early_stop: grid.early_stop_rule(),
            retries: grid.retry_budget(),
            timeout_ms,
            grid_name,
            created_by: git_describe(),
        }
    }

    /// Whether `self` (from disk) describes the same deterministic sweep
    /// as `other` (rebuilt by the resuming process). Compares format
    /// version and every determinism-relevant field; ignores execution
    /// policy and provenance.
    pub fn same_grid(&self, other: &JobManifest) -> bool {
        self.format_version == other.format_version
            && self.master_seed == other.master_seed
            && self.replications == other.replications
            && self.configs == other.configs
            && self.stations == other.stations
            && self.num_points == other.num_points
            && self.early_stop == other.early_stop
    }

    /// Human-readable one-line description of the first fingerprint
    /// mismatch against `other`, if any.
    pub fn mismatch(&self, other: &JobManifest) -> Option<String> {
        if self.format_version != other.format_version {
            return Some(format!(
                "format version {} on disk, {} in this build",
                self.format_version, other.format_version
            ));
        }
        if self.master_seed != other.master_seed {
            return Some(format!(
                "master seed {} on disk, {} requested",
                self.master_seed, other.master_seed
            ));
        }
        if self.replications != other.replications {
            return Some(format!(
                "replication budget {} on disk, {} requested",
                self.replications, other.replications
            ));
        }
        if self.configs != other.configs {
            return Some(format!(
                "config labels {:?} on disk, {:?} requested",
                self.configs, other.configs
            ));
        }
        if self.stations != other.stations {
            return Some(format!(
                "station counts {:?} on disk, {:?} requested",
                self.stations, other.stations
            ));
        }
        if self.num_points != other.num_points {
            return Some(format!(
                "{} points on disk, {} requested",
                self.num_points, other.num_points
            ));
        }
        if self.early_stop != other.early_stop {
            return Some("early-stop rule differs".to_string());
        }
        None
    }
}

/// Best-effort `git describe --always --dirty` of the current directory.
/// Provenance only; `None` outside a git checkout or without git.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8(out.stdout).ok()?;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        None
    } else {
        Some(trimmed.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_sim::Simulation;

    fn grid() -> SweepGrid {
        SweepGrid::new(7)
            .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
            .stations([2, 3])
            .replications(2)
    }

    #[test]
    fn manifest_captures_the_grid() {
        let m = JobManifest::from_grid(&grid(), Some(500), Some("unit".into()));
        assert_eq!(m.format_version, FORMAT_VERSION);
        assert_eq!(m.master_seed, 7);
        assert_eq!(m.replications, 2);
        assert_eq!(m.configs, vec!["ca1".to_string()]);
        assert_eq!(m.stations, vec![2, 3]);
        assert_eq!(m.num_points, 2);
        assert_eq!(m.timeout_ms, Some(500));
        assert_eq!(m.grid_name.as_deref(), Some("unit"));
    }

    #[test]
    fn fingerprint_ignores_execution_policy() {
        let a = JobManifest::from_grid(&grid(), Some(500), None);
        let mut b = JobManifest::from_grid(&grid().workers(8).retries(3), None, Some("x".into()));
        b.created_by = Some("elsewhere".into());
        assert!(a.same_grid(&b), "{:?}", a.mismatch(&b));
        assert!(a.mismatch(&b).is_none());
    }

    #[test]
    fn fingerprint_catches_every_grid_change() {
        let base = JobManifest::from_grid(&grid(), None, None);
        let seeds = JobManifest::from_grid(
            &SweepGrid::new(8)
                .config("ca1", Simulation::ieee1901(1).horizon_us(1e5))
                .stations([2, 3])
                .replications(2),
            None,
            None,
        );
        assert!(!base.same_grid(&seeds));
        assert!(seeds.mismatch(&base).unwrap().contains("master seed"));
        let fewer = JobManifest::from_grid(&grid().stations([2]), None, None);
        assert!(!base.same_grid(&fewer));
        let mut version = base.clone();
        version.format_version += 1;
        assert!(!base.same_grid(&version));
        assert!(base.mismatch(&version).unwrap().contains("format version"));
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = JobManifest::from_grid(&grid(), None, Some("unit".into()));
        let json = serde_json::to_string(&m).unwrap();
        let back: JobManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
