//! The append-only checkpoint journal and the quarantine ledger.
//!
//! `journal.jsonl` holds one JSON line per *settled* point — settled
//! meaning the job will never execute it again: completed, failed after
//! exhausting retries, or timed out after exhausting retries. Each line
//! is flushed before the job moves on, so after a crash the journal is a
//! prefix of the finished work plus at most one torn line; loading drops
//! the torn tail and a compaction rewrite (atomic temp-file + rename)
//! restores a clean file before new lines are appended.
//!
//! `quarantine.jsonl` records the points that settled *badly*, each with
//! a ready-to-run repro command, so an overnight sweep's failures are
//! triageable without re-running the job.

use plc_sim::sweep::SweepPointResult;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// How one point settled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PointOutcome {
    /// The point ran to completion (possibly as a contained
    /// [`Failed`](SweepPointResult::Failed) after in-sweep panic
    /// retries).
    Done(SweepPointResult),
    /// Every attempt hit the per-point watchdog; partial metrics were
    /// discarded (a timed-out point never masquerades as data).
    TimedOut {
        /// Label of the configuration template.
        config: String,
        /// Station count.
        n: usize,
        /// Row-major index of the point in the grid.
        point_index: usize,
        /// The watchdog deadline that fired, milliseconds.
        timeout_ms: u64,
    },
}

impl PointOutcome {
    /// Row-major index of the point this outcome settles.
    pub fn point_index(&self) -> usize {
        match self {
            PointOutcome::Done(r) => r.point_index(),
            PointOutcome::TimedOut { point_index, .. } => *point_index,
        }
    }

    /// Whether the point produced a usable summary.
    pub fn is_ok(&self) -> bool {
        matches!(self, PointOutcome::Done(r) if r.ok().is_some())
    }

    /// The completed result, for assembling final [`SweepResults`]
    /// (timed-out points are rendered as `Failed` with a deterministic
    /// reason so every grid point stays accounted for).
    ///
    /// [`SweepResults`]: plc_sim::sweep::SweepResults
    pub fn to_point_result(&self) -> SweepPointResult {
        match self {
            PointOutcome::Done(r) => r.clone(),
            PointOutcome::TimedOut {
                config,
                n,
                point_index,
                timeout_ms,
            } => SweepPointResult::Failed {
                config: config.clone(),
                n: *n,
                point_index: *point_index,
                reason: format!("watchdog timeout after {timeout_ms} ms"),
                attempts: 1,
            },
        }
    }
}

/// One settled point as journaled: the outcome plus how many job-level
/// attempts (initial + watchdog/failure retries) it consumed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// Row-major index of the settled point.
    pub point_index: usize,
    /// Job-level attempts consumed (1 = settled on the first try).
    pub job_attempts: u32,
    /// How the point settled.
    pub outcome: PointOutcome,
}

/// One quarantined point: a bad settlement plus the exact command that
/// replays it in isolation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuarantineRecord {
    /// Row-major index of the quarantined point.
    pub point_index: usize,
    /// Label of the configuration template.
    pub config: String,
    /// Station count.
    pub n: usize,
    /// Job-level attempts consumed before quarantining.
    pub job_attempts: u32,
    /// Why the point was quarantined (panic message or watchdog note).
    pub reason: String,
    /// A shell command replaying exactly this point.
    pub repro: String,
}

/// The open, append-mode journal of one running job.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// File name of the journal inside a job directory.
    pub const FILE_NAME: &'static str = "journal.jsonl";

    /// Parse journal text, dropping a torn final line (and anything
    /// unparsable — a journal is only ever appended to by this module,
    /// so garbage means a crash mid-write).
    fn parse(text: &str) -> Vec<JournalEntry> {
        text.lines()
            .filter_map(|l| serde_json::from_str::<JournalEntry>(l).ok())
            .collect()
    }

    /// Load the settled entries under `dir` (empty when no journal
    /// exists yet). Torn tails are dropped, not errors.
    pub fn load(dir: &Path) -> std::io::Result<Vec<JournalEntry>> {
        match std::fs::read_to_string(dir.join(Self::FILE_NAME)) {
            Ok(text) => Ok(Self::parse(&text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    /// Atomically rewrite the journal under `dir` to exactly `entries`
    /// (one line each) — this is the compaction that scrubs a torn tail
    /// after a crash, via temp-file + rename. Stray `journal.jsonl.*.tmp`
    /// files a killed writer left behind are removed as well: they were
    /// never renamed into place, so they hold no settled work.
    pub fn compact(dir: &Path, entries: &[JournalEntry]) -> std::io::Result<()> {
        let mut doc = String::new();
        for e in entries {
            doc.push_str(&serde_json::to_string(e).expect("journal entry serializes"));
            doc.push('\n');
        }
        plc_core::fs::atomic_write(dir.join(Self::FILE_NAME), doc.as_bytes())?;
        remove_stray_tmp_files(dir, Self::FILE_NAME);
        Ok(())
    }

    /// Open the journal under `dir` for appending (creating it empty if
    /// absent).
    pub fn open_append(dir: &Path) -> std::io::Result<Journal> {
        let path = dir.join(Self::FILE_NAME);
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(Journal { path, file })
    }

    /// Append one settled point and flush it to the OS before returning
    /// — after this call the entry survives a `SIGKILL` of the process.
    pub fn append(&mut self, entry: &JournalEntry) -> std::io::Result<()> {
        let line = serde_json::to_string(entry).expect("journal entry serializes");
        writeln!(self.file, "{line}")?;
        self.file.flush()
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Best-effort removal of `<file_name>.<pid>.<seq>.tmp` leftovers from
/// writers that were killed mid-`atomic_write`. Such files were never
/// renamed over the destination, so deleting them loses nothing; errors
/// are swallowed because a leftover temp file is cosmetic, not state.
fn remove_stray_tmp_files(dir: &Path, file_name: &str) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("{file_name}.");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue;
        };
        if name.starts_with(&prefix) && name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

/// Append `record` to `quarantine.jsonl` under `dir`, flushed like a
/// journal line.
pub fn append_quarantine(dir: &Path, record: &QuarantineRecord) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(QUARANTINE_FILE_NAME))?;
    let line = serde_json::to_string(record).expect("quarantine record serializes");
    writeln!(file, "{line}")?;
    file.flush()
}

/// File name of the quarantine ledger inside a job directory.
pub const QUARANTINE_FILE_NAME: &str = "quarantine.jsonl";

/// Load the quarantine ledger under `dir` (empty when absent).
pub fn load_quarantine(dir: &Path) -> std::io::Result<Vec<QuarantineRecord>> {
    match std::fs::read_to_string(dir.join(QUARANTINE_FILE_NAME)) {
        Ok(text) => Ok(text
            .lines()
            .filter_map(|l| serde_json::from_str::<QuarantineRecord>(l).ok())
            .collect()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_sim::sweep::SweepPointResult;

    fn entry(idx: usize) -> JournalEntry {
        JournalEntry {
            point_index: idx,
            job_attempts: 1,
            outcome: PointOutcome::TimedOut {
                config: "ca1".into(),
                n: 2,
                point_index: idx,
                timeout_ms: 100,
            },
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plc_jobs_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn journal_appends_load_back_in_order() {
        let dir = temp_dir("order");
        let mut j = Journal::open_append(&dir).unwrap();
        for i in 0..3 {
            j.append(&entry(i)).unwrap();
        }
        drop(j);
        let back = Journal::load(&dir).unwrap();
        assert_eq!(back, vec![entry(0), entry(1), entry(2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_compaction_scrubs_it() {
        let dir = temp_dir("torn");
        let mut j = Journal::open_append(&dir).unwrap();
        j.append(&entry(0)).unwrap();
        j.append(&entry(1)).unwrap();
        drop(j);
        // Simulate a crash mid-write: a torn, unparsable final line.
        let path = dir.join(Journal::FILE_NAME);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"point_index\":2,\"job_att");
        std::fs::write(&path, &text).unwrap();
        let back = Journal::load(&dir).unwrap();
        assert_eq!(back, vec![entry(0), entry(1)]);
        Journal::compact(&dir, &back).unwrap();
        let clean = std::fs::read_to_string(&path).unwrap();
        assert_eq!(clean.lines().count(), 2);
        assert!(clean.ends_with('\n'));
        assert_eq!(Journal::load(&dir).unwrap(), back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_tmp_files_are_ignored_by_load_and_cleaned_by_compaction() {
        // A writer SIGKILLed inside `atomic_write` leaves
        // `journal.jsonl.<pid>.<seq>.tmp` behind: never renamed, so it
        // must not contribute entries, and compaction must sweep it.
        let dir = temp_dir("straytmp");
        let mut j = Journal::open_append(&dir).unwrap();
        j.append(&entry(0)).unwrap();
        j.append(&entry(1)).unwrap();
        drop(j);
        let stray = dir.join(format!("{}.99999.7.tmp", Journal::FILE_NAME));
        // Partial bytes of a *valid-looking* entry: if load ever read tmp
        // files, this would parse and corrupt the settled set.
        std::fs::write(&stray, serde_json::to_string(&entry(2)).unwrap()).unwrap();
        let back = Journal::load(&dir).unwrap();
        assert_eq!(back, vec![entry(0), entry(1)], "tmp file leaked into load");
        Journal::compact(&dir, &back).unwrap();
        assert!(!stray.exists(), "compaction left the stray tmp file");
        assert_eq!(Journal::load(&dir).unwrap(), back);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_loads_empty() {
        let dir = temp_dir("missing");
        assert!(Journal::load(&dir).unwrap().is_empty());
        assert!(load_quarantine(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn timed_out_renders_as_deterministic_failure() {
        let out = entry(4).outcome.to_point_result();
        assert_eq!(out.point_index(), 4);
        assert_eq!(out.failure(), Some("watchdog timeout after 100 ms"));
        assert!(!entry(4).outcome.is_ok());
    }

    #[test]
    fn quarantine_ledger_round_trips() {
        let dir = temp_dir("quarantine");
        let rec = QuarantineRecord {
            point_index: 5,
            config: "ca1".into(),
            n: 4,
            job_attempts: 3,
            reason: "watchdog timeout after 100 ms".into(),
            repro: "experiments job run --grid unit --points 5".into(),
        };
        append_quarantine(&dir, &rec).unwrap();
        let back = load_quarantine(&dir).unwrap();
        assert_eq!(back, vec![rec]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn done_outcome_preserves_the_point_bytes() {
        let point = SweepPointResult::Failed {
            config: "bad".into(),
            n: 2,
            point_index: 1,
            reason: "panic".into(),
            attempts: 2,
        };
        let e = JournalEntry {
            point_index: 1,
            job_attempts: 2,
            outcome: PointOutcome::Done(point.clone()),
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: JournalEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.outcome.to_point_result(), point);
    }
}
