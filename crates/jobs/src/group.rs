//! Multi-grid job composition: several sweeps as one resumable unit.
//!
//! A [`JobGroup`] binds an ordered set of named [`SweepGrid`]s to one
//! parent directory: each member runs as a full [`Job`] in its own
//! subdirectory (`<dir>/<member-name>/` — manifest, journal, results,
//! quarantine, all the usual crash-tolerance machinery), and the parent
//! directory holds a `group.json` manifest recording the member names
//! in order. Members execute sequentially; killing the process at any
//! instant leaves a prefix of completed members plus at most one
//! partially journaled member, and re-running the same group resumes
//! exactly — completed members reassemble from their journals without
//! re-executing a single point, the partial member finishes its
//! remainder, and the rest run fresh.
//!
//! This is the composition layer the `plc-boost` optimizer runs on: one
//! successive-halving rung = one group with one member grid per
//! portfolio scenario.

use crate::job::{Job, JobConfig, JobReport, JobStatus, MANIFEST_FILE_NAME};
use plc_core::{Error, Result};
use plc_sim::sweep::{SweepGrid, SweepResults};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// File name of the group manifest inside a group directory.
pub const GROUP_FILE_NAME: &str = "group.json";

/// The on-disk identity of a job group: which members it is composed
/// of, in execution order. Per-member determinism is fingerprinted by
/// each member job's own manifest; the group manifest pins only the
/// composition so a resume with a different member set is refused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupManifest {
    /// [`crate::FORMAT_VERSION`] at creation time.
    pub format_version: u32,
    /// Member names, in execution order (also the subdirectory names).
    pub members: Vec<String>,
}

/// One member of a [`JobGroup`]: a named grid plus the execution policy
/// its [`Job`] runs under. The member name becomes the subdirectory and
/// must be a single path component.
pub struct GroupMember {
    /// Member name (subdirectory under the group dir).
    pub name: String,
    /// The sweep this member settles.
    pub grid: SweepGrid,
    /// Job-level retry budget (see [`JobConfig::retries`]).
    pub retries: u32,
    /// Per-point watchdog deadline (see [`JobConfig::timeout`]).
    pub timeout: Option<std::time::Duration>,
    /// Chaos stall hook, forwarded to the member job (kill-window
    /// injection for crash tests).
    pub stall: Option<plc_faults::JobStall>,
}

impl GroupMember {
    /// A member with default execution policy.
    pub fn new(name: impl Into<String>, grid: SweepGrid) -> Self {
        GroupMember {
            name: name.into(),
            grid,
            retries: 0,
            timeout: None,
            stall: None,
        }
    }
}

/// What one [`JobGroup::run`] did: every member's [`JobReport`] in
/// execution order, with its name.
#[derive(Debug)]
pub struct GroupReport {
    /// Per-member reports, in execution order.
    pub members: Vec<(String, JobReport)>,
}

impl GroupReport {
    /// Whether every member settled every point.
    pub fn is_complete(&self) -> bool {
        self.members.iter().all(|(_, r)| r.is_complete())
    }

    /// The assembled results of the named member, when complete.
    pub fn results(&self, name: &str) -> Option<&SweepResults> {
        self.members
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, r)| r.results.as_ref())
    }
}

/// An ordered set of named sweeps run as one crash-tolerant unit.
pub struct JobGroup {
    dir: PathBuf,
    members: Vec<GroupMember>,
    registry: Option<plc_obs::Registry>,
}

impl JobGroup {
    /// Compose `members` under `dir`. Member names must be unique,
    /// non-empty single path components.
    pub fn new(dir: impl Into<PathBuf>, members: Vec<GroupMember>) -> Result<JobGroup> {
        if members.is_empty() {
            return Err(Error::invalid_config("job group has no members"));
        }
        for m in &members {
            if m.name.is_empty() || m.name.contains(['/', '\\', '.']) {
                return Err(Error::invalid_config(format!(
                    "group member name {:?} must be a plain path component",
                    m.name
                )));
            }
        }
        let mut names: Vec<&str> = members.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != members.len() {
            return Err(Error::invalid_config("group member names must be unique"));
        }
        Ok(JobGroup {
            dir: dir.into(),
            members,
            registry: None,
        })
    }

    /// Record member-job instrumentation into `registry` (the `job.*`
    /// counters accumulate across members).
    pub fn registry(mut self, registry: &plc_obs::Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Execute every member in order, creating or resuming each
    /// member's [`Job`]. The group manifest is written on first run and
    /// validated on every rerun: a directory composed of different
    /// members is refused rather than partially reused.
    pub fn run(self) -> Result<GroupReport> {
        std::fs::create_dir_all(&self.dir)?;
        let manifest = GroupManifest {
            format_version: crate::manifest::FORMAT_VERSION,
            members: self.members.iter().map(|m| m.name.clone()).collect(),
        };
        let path = self.dir.join(GROUP_FILE_NAME);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let on_disk: GroupManifest = serde_json::from_str(&text).map_err(|e| {
                    Error::runtime(format!("corrupt group manifest at {}: {e}", path.display()))
                })?;
                if on_disk != manifest {
                    return Err(Error::invalid_config(format!(
                        "cannot resume group at {}: members {:?} on disk, {:?} requested",
                        self.dir.display(),
                        on_disk.members,
                        manifest.members
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                let mut doc = serde_json::to_string(&manifest).expect("group manifest serializes");
                doc.push('\n');
                plc_core::fs::atomic_write(&path, doc.as_bytes())?;
            }
            Err(e) => return Err(e.into()),
        }

        let mut reports = Vec::with_capacity(self.members.len());
        for member in self.members {
            let sub = self.dir.join(&member.name);
            let mut cfg = JobConfig::new(&sub);
            cfg.retries = member.retries;
            cfg.timeout = member.timeout;
            cfg.stall = member.stall;
            cfg.grid_name = Some(member.name.clone());
            let mut job = Job::create_or_resume(member.grid, cfg)?;
            if let Some(r) = &self.registry {
                job = job.registry(r);
            }
            reports.push((member.name, job.run()?));
        }
        Ok(GroupReport { members: reports })
    }
}

/// Progress of a group directory: the member list from `group.json`
/// plus each member job's [`JobStatus`] (absent for members whose job
/// directory was never created).
pub fn group_status(dir: &Path) -> Result<Vec<(String, Option<JobStatus>)>> {
    let path = dir.join(GROUP_FILE_NAME);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| Error::runtime(format!("no group manifest at {}: {e}", path.display())))?;
    let manifest: GroupManifest = serde_json::from_str(&text).map_err(|e| {
        Error::runtime(format!("corrupt group manifest at {}: {e}", path.display()))
    })?;
    let mut out = Vec::with_capacity(manifest.members.len());
    for name in manifest.members {
        let sub = dir.join(&name);
        let status = if sub.join(MANIFEST_FILE_NAME).exists() {
            Some(JobStatus::read(&sub)?)
        } else {
            None
        };
        out.push((name, status));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plc_sim::Simulation;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plc_jobs_group_{}_{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn grid(seed: u64) -> SweepGrid {
        SweepGrid::new(seed)
            .config("ca1", Simulation::ieee1901(1).horizon_us(2.0e5))
            .stations([2, 3])
            .replications(1)
    }

    #[test]
    fn group_runs_members_in_order_and_resumes_without_rework() {
        let dir = temp_dir("order");
        let members = || {
            vec![
                GroupMember::new("alpha", grid(1)),
                GroupMember::new("beta", grid(2)),
            ]
        };
        let report = JobGroup::new(&dir, members()).unwrap().run().unwrap();
        assert!(report.is_complete());
        assert_eq!(report.members[0].0, "alpha");
        assert_eq!(report.members[1].0, "beta");
        assert!(dir.join("alpha/results.json").exists());
        assert!(dir.join("beta/results.json").exists());
        // Member results equal the plain grid run, byte for byte.
        assert_eq!(
            report.results("alpha").unwrap().to_json(),
            grid(1).run().to_json()
        );

        // A rerun resumes both members and executes nothing.
        let again = JobGroup::new(&dir, members()).unwrap().run().unwrap();
        for (_, r) in &again.members {
            assert_eq!(r.executed, 0);
            assert_eq!(r.resumed, 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_refuses_a_different_composition() {
        let dir = temp_dir("composition");
        JobGroup::new(&dir, vec![GroupMember::new("alpha", grid(1))])
            .unwrap()
            .run()
            .unwrap();
        let err = JobGroup::new(&dir, vec![GroupMember::new("gamma", grid(1))])
            .unwrap()
            .run()
            .unwrap_err();
        assert!(err.to_string().contains("members"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_status_reads_partial_progress() {
        let dir = temp_dir("status");
        JobGroup::new(&dir, vec![GroupMember::new("alpha", grid(1))])
            .unwrap()
            .run()
            .unwrap();
        // Hand-extend the manifest with a member that never ran: status
        // must render it as absent rather than erroring.
        let manifest = GroupManifest {
            format_version: crate::manifest::FORMAT_VERSION,
            members: vec!["alpha".into(), "beta".into()],
        };
        plc_core::fs::atomic_write(
            dir.join(GROUP_FILE_NAME),
            serde_json::to_string(&manifest).unwrap(),
        )
        .unwrap();
        let status = group_status(&dir).unwrap();
        assert_eq!(status.len(), 2);
        assert!(status[0].1.as_ref().unwrap().complete);
        assert!(status[1].1.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_member_names_are_rejected() {
        for bad in ["", "a/b", "..", "x.y"] {
            assert!(
                JobGroup::new("/tmp/never", vec![GroupMember::new(bad, grid(1))]).is_err(),
                "{bad:?} accepted"
            );
        }
        let dup = vec![
            GroupMember::new("a", grid(1)),
            GroupMember::new("a", grid(2)),
        ];
        assert!(JobGroup::new("/tmp/never", dup).is_err());
    }
}
