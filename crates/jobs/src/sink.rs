//! Incremental result streaming: watch a job's points as they settle.
//!
//! Sinks observe the journal stream — they are fed from the job's
//! collector thread *after* each entry is durably journaled, so a sink
//! never sees a point the journal could lose. Sinks cannot perturb
//! results: they receive shared references and the job ignores their
//! internal failures (a broken pipe mid-sweep must not kill the sweep;
//! check [`JsonlFileSink::error`] afterwards).

use crate::journal::JournalEntry;
use plc_sim::sweep::SweepResults;
use std::io::Write;
use std::path::Path;

/// Observer of a running job's settled points.
pub trait ResultSink: Send {
    /// One point settled and its journal line is durable.
    fn on_point(&mut self, entry: &JournalEntry);

    /// The job finished; `results` is the complete assembled sweep.
    fn on_complete(&mut self, results: &SweepResults) {
        let _ = results;
    }
}

/// Stream settled points as JSON lines into any writer (a file, a pipe,
/// a buffer). I/O errors are latched, not raised — inspect
/// [`error`](JsonlFileSink::error) after the job.
pub struct JsonlFileSink<W: Write + Send> {
    writer: W,
    written: u64,
    error: Option<std::io::Error>,
}

impl JsonlFileSink<std::io::BufWriter<std::fs::File>> {
    /// Create (truncating) `path` and stream settled points into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlFileSink::new(std::io::BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonlFileSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> Self {
        JsonlFileSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Entries successfully written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first latched I/O error, if any.
    pub fn error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }
}

impl<W: Write + Send> ResultSink for JsonlFileSink<W> {
    fn on_point(&mut self, entry: &JournalEntry) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(entry).expect("journal entry serializes");
        match writeln!(self.writer, "{line}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn on_complete(&mut self, _results: &SweepResults) {
        if self.error.is_none() {
            if let Err(e) = self.writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Stream settled points into an in-process channel — the live-progress
/// hook for dashboards or tests. A disconnected receiver is tolerated
/// (the job outlives its observers).
pub struct ChannelSink {
    tx: std::sync::mpsc::Sender<JournalEntry>,
}

impl ChannelSink {
    /// A sink plus the receiving end of its channel.
    pub fn new() -> (Self, std::sync::mpsc::Receiver<JournalEntry>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (ChannelSink { tx }, rx)
    }
}

impl ResultSink for ChannelSink {
    fn on_point(&mut self, entry: &JournalEntry) {
        let _ = self.tx.send(entry.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::PointOutcome;

    fn entry(idx: usize) -> JournalEntry {
        JournalEntry {
            point_index: idx,
            job_attempts: 1,
            outcome: PointOutcome::TimedOut {
                config: "ca1".into(),
                n: 2,
                point_index: idx,
                timeout_ms: 50,
            },
        }
    }

    #[test]
    fn file_sink_streams_parseable_lines() {
        let mut sink = JsonlFileSink::new(Vec::<u8>::new());
        sink.on_point(&entry(0));
        sink.on_point(&entry(1));
        assert_eq!(sink.written(), 2);
        assert!(sink.error().is_none());
        let text = String::from_utf8(sink.writer.clone()).unwrap();
        let back: Vec<JournalEntry> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(back, vec![entry(0), entry(1)]);
    }

    #[test]
    fn channel_sink_delivers_and_tolerates_a_dead_receiver() {
        let (mut sink, rx) = ChannelSink::new();
        sink.on_point(&entry(3));
        assert_eq!(rx.recv().unwrap(), entry(3));
        drop(rx);
        sink.on_point(&entry(4)); // must not panic
    }
}
