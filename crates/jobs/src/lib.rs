//! # plc-jobs — crash-tolerant, resumable sweep jobs
//!
//! [`plc_sim::sweep::SweepGrid`] answers "run this grid"; this crate
//! answers "run this grid **overnight, on a machine that might die**".
//! A [`Job`] binds a grid to a directory and makes four promises:
//!
//! 1. **Durability** — every settled point is appended to an on-disk
//!    journal and flushed before the job moves on; the manifest and all
//!    final artifacts are written via temp-file + rename
//!    ([`plc_core::fs::atomic_write`]), so no crash instant can leave a
//!    torn document (a torn journal *tail* is dropped and compacted
//!    away on resume).
//! 2. **Exact resume** — [`Job::resume`] validates the on-disk
//!    [`JobManifest`] against the rebuilt grid (a journal is never
//!    merged across sweeps), skips settled points, and finishes the
//!    rest. Because each point is a pure function of `(master_seed,
//!    point_index)`, the final `results.json` is **byte-identical** to
//!    an uninterrupted run — for any kill instant and any worker count.
//! 3. **Progress despite pathology** — a per-point [`Watchdog`] cancels
//!    a stuck point through the engine's cooperative
//!    [`CancelToken`](plc_core::CancelToken) poll; timeouts and
//!    contained failures are replayed under a bounded retry budget
//!    (same seeds — a recovered retry is indistinguishable from a
//!    first-try success) and then **quarantined** with a ready-to-run
//!    repro command instead of sinking the sweep.
//! 4. **Observability** — settled points stream through [`ResultSink`]s
//!    as their journal lines become durable, and an attached
//!    [`plc_obs::Registry`] records `job.points_done` /
//!    `job.points_retried` / `job.points_quarantined` /
//!    `job.points_resumed` and times every checkpoint flush.
//!
//! ```
//! use plc_jobs::{Job, JobConfig};
//! use plc_sim::{Simulation, SweepGrid};
//!
//! let dir = std::env::temp_dir().join(format!("plc_jobs_doc_{}", std::process::id()));
//! let _ = std::fs::remove_dir_all(&dir);
//! let grid = SweepGrid::new(42)
//!     .config("ca1", Simulation::ieee1901(1).horizon_us(2.0e5))
//!     .stations([2, 3])
//!     .replications(2);
//! let report = Job::create(grid.clone(), JobConfig::new(&dir)).unwrap().run().unwrap();
//! let results = report.results.expect("all points settled");
//! // Byte-identical to running the grid without the job engine:
//! assert_eq!(results.to_json(), grid.run().to_json());
//! // ...and a resume of the finished job recomputes nothing.
//! let resumed = Job::resume(grid, JobConfig::new(&dir)).unwrap().run().unwrap();
//! assert_eq!(resumed.executed, 0);
//! assert_eq!(resumed.resumed, 2);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod group;
pub mod job;
pub mod journal;
pub mod manifest;
pub mod sink;
pub mod watchdog;

pub use group::{group_status, GroupManifest, GroupMember, GroupReport, JobGroup, GROUP_FILE_NAME};
pub use job::{
    read_manifest, Job, JobConfig, JobReport, JobStatus, MANIFEST_FILE_NAME, METRICS_FILE_NAME,
    RESULTS_FILE_NAME,
};
pub use journal::{Journal, JournalEntry, PointOutcome, QuarantineRecord, QUARANTINE_FILE_NAME};
pub use manifest::{JobManifest, FORMAT_VERSION};
pub use sink::{ChannelSink, JsonlFileSink, ResultSink};
pub use watchdog::Watchdog;
