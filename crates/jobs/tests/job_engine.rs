//! End-to-end tests of the job engine inside one process: partial runs,
//! exact resume, watchdog quarantine, streaming sinks and counters.
//! (Kill-and-resume across real processes lives in `plc-bench`, next to
//! the `experiments` binary it drives.)

use plc_jobs::{ChannelSink, Job, JobConfig, JobStatus, JsonlFileSink, PointOutcome};
use plc_sim::{Simulation, SweepGrid};
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("plc_jobs_it_{}_{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_grid() -> SweepGrid {
    SweepGrid::new(77)
        .config("ca1", Simulation::ieee1901(1).horizon_us(2e5))
        .config("ca3", Simulation::ieee1901(3).horizon_us(2e5))
        .stations([2, 3])
        .replications(2)
        .workers(2)
}

#[test]
fn partial_run_then_resume_is_byte_identical_across_worker_counts() {
    let dir = temp_dir("resume");
    let clean = small_grid().run().to_json();

    // Settle only point 2 first (any subset works), on one worker.
    let mut cfg = JobConfig::new(&dir);
    cfg.points = Some(vec![2]);
    let first = Job::create(small_grid().workers(1), cfg)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(first.executed, 1);
    assert!(!first.is_complete(), "3 of 4 points still unsettled");
    assert!(!dir.join(plc_jobs::RESULTS_FILE_NAME).exists());

    let status = JobStatus::read(&dir).unwrap();
    assert_eq!((status.settled, status.total), (1, 4));
    assert!(!status.complete);
    assert!(status.render().contains("1/4 points settled"));

    // Resume with a different worker count; results must not care.
    let registry = plc_obs::Registry::new();
    let second = Job::resume(small_grid().workers(4), JobConfig::new(&dir))
        .unwrap()
        .registry(&registry)
        .run()
        .unwrap();
    assert_eq!(second.resumed, 1);
    assert_eq!(second.executed, 3);
    let results = second.results.expect("job complete");
    assert_eq!(results.to_json(), clean, "resume must be byte-identical");
    let on_disk = std::fs::read_to_string(dir.join(plc_jobs::RESULTS_FILE_NAME)).unwrap();
    assert_eq!(on_disk, format!("{clean}\n"));

    let snap = registry.snapshot();
    assert_eq!(snap.counter("job.points_resumed"), Some(1));
    assert_eq!(snap.counter("job.points_done"), Some(3));
    assert_eq!(snap.counter("job.points_retried"), Some(0));
    assert_eq!(snap.counter("job.points_quarantined"), Some(0));
    assert_eq!(snap.timer("job.checkpoint_flush").unwrap().count, 3);
    // The registry export landed next to the results.
    assert!(dir.join(plc_jobs::METRICS_FILE_NAME).exists());

    let status = JobStatus::read(&dir).unwrap();
    assert_eq!(status.settled, 4);
    assert!(status.complete);
    assert!(status.render().ends_with("complete"));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn fresh_create_refuses_an_existing_job_and_resume_refuses_a_stranger() {
    let dir = temp_dir("refuse");
    let job = Job::create(small_grid(), JobConfig::new(&dir)).unwrap();
    drop(job);
    // A second create on the same directory must refuse.
    let err = Job::create(small_grid(), JobConfig::new(&dir)).unwrap_err();
    assert!(err.to_string().contains("already holds a job manifest"));
    // Resuming with a different grid must refuse, naming the mismatch.
    let other = small_grid().replications(5);
    let err = Job::resume(other, JobConfig::new(&dir)).unwrap_err();
    assert!(err.to_string().contains("replication budget"), "{err}");
    // Resuming with execution-policy changes only is fine.
    let mut cfg = JobConfig::new(&dir);
    cfg.retries = 2;
    let report = Job::resume(small_grid().workers(1), cfg)
        .unwrap()
        .run()
        .unwrap();
    assert!(report.is_complete());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn watchdog_times_out_retries_and_quarantines_a_stuck_point() {
    let dir = temp_dir("watchdog");
    // One pathological point: an enormous horizon that cannot finish
    // inside the watchdog deadline.
    let grid = SweepGrid::new(5)
        .config("stuck", Simulation::ieee1901(1).horizon_us(5e10))
        .stations([20])
        .replications(1)
        .workers(1);
    let mut cfg = JobConfig::new(&dir);
    cfg.timeout = Some(std::time::Duration::from_millis(40));
    cfg.retries = 1;
    cfg.repro_prefix = Some("experiments job run --grid stuck --dir out".into());
    let registry = plc_obs::Registry::new();
    let report = Job::create(grid, cfg)
        .unwrap()
        .registry(&registry)
        .run()
        .unwrap();
    // The point settled badly but the job completed and accounted for it.
    assert!(report.is_complete());
    assert_eq!(report.quarantined.len(), 1);
    let q = &report.quarantined[0];
    assert_eq!(q.point_index, 0);
    assert_eq!(q.config, "stuck");
    assert_eq!(q.n, 20);
    assert_eq!(q.job_attempts, 2, "one retry before quarantine");
    assert!(q.reason.contains("watchdog timeout after 40 ms"));
    assert_eq!(
        q.repro,
        "experiments job run --grid stuck --dir out --points 0"
    );
    // The quarantine ledger persists the same record.
    let ledger = JobStatus::quarantine(&dir).unwrap();
    assert_eq!(ledger, report.quarantined);
    // The assembled results render the timeout as a deterministic
    // failure, so every grid point stays accounted for.
    let results = report.results.unwrap();
    assert_eq!(results.points.len(), 1);
    assert_eq!(
        results.points[0].failure(),
        Some("watchdog timeout after 40 ms")
    );
    let snap = registry.snapshot();
    assert_eq!(snap.counter("job.points_quarantined"), Some(1));
    assert_eq!(snap.counter("job.points_retried"), Some(1));
    let status = JobStatus::read(&dir).unwrap();
    assert_eq!(status.quarantined, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sinks_stream_every_settled_point_before_completion() {
    let dir = temp_dir("sinks");
    let stream_path = dir.join("stream.jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let (channel, rx) = ChannelSink::new();
    let report = Job::create(small_grid(), JobConfig::new(&dir))
        .unwrap()
        .sink(Box::new(JsonlFileSink::create(&stream_path).unwrap()))
        .sink(Box::new(channel))
        .run()
        .unwrap();
    assert!(report.is_complete());
    // The channel saw all four settlements.
    let mut seen: Vec<usize> = rx.try_iter().map(|e| e.point_index).collect();
    seen.sort_unstable();
    assert_eq!(seen, vec![0, 1, 2, 3]);
    // The JSONL stream parses back into the same entries the journal
    // holds (order may differ between collectors? no — same collector
    // feeds both, so order matches the journal exactly).
    let stream = std::fs::read_to_string(&stream_path).unwrap();
    let journal = std::fs::read_to_string(dir.join("journal.jsonl")).unwrap();
    assert_eq!(stream, journal);
    for line in stream.lines() {
        let entry: plc_jobs::JournalEntry = serde_json::from_str(line).unwrap();
        assert!(matches!(entry.outcome, PointOutcome::Done(_)));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stall_hook_fires_without_perturbing_results() {
    let dir = temp_dir("stall");
    let clean = small_grid().run().to_json();
    let mut cfg = JobConfig::new(&dir);
    cfg.stall = Some(plc_faults::JobStall {
        after_points: 2,
        stall_ms: 30,
    });
    let started = std::time::Instant::now();
    let report = Job::create(small_grid(), cfg).unwrap().run().unwrap();
    assert!(started.elapsed() >= std::time::Duration::from_millis(30));
    assert_eq!(report.results.unwrap().to_json(), clean);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A sink that fires a job-level cancel token the moment the first
/// point settles — on one worker the collector runs between points, so
/// exactly one point executes.
struct CancelOnFirst(plc_core::CancelToken);

impl plc_jobs::ResultSink for CancelOnFirst {
    fn on_point(&mut self, _entry: &plc_jobs::JournalEntry) {
        self.0.cancel();
    }
}

#[test]
fn graceful_cancel_keeps_the_journal_and_resume_finishes() {
    let dir = temp_dir("cancel");
    let clean = small_grid().run().to_json();
    let job = Job::create(small_grid().workers(1), JobConfig::new(&dir)).unwrap();
    let token = job.cancel_token();
    let report = job.sink(Box::new(CancelOnFirst(token))).run().unwrap();
    assert!(!report.is_complete());
    assert_eq!(report.executed, 1);
    // Everything journaled survives; resume completes the grid.
    let resumed = Job::resume(small_grid(), JobConfig::new(&dir))
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(resumed.resumed, 1);
    assert_eq!(resumed.executed, 3);
    assert_eq!(resumed.results.unwrap().to_json(), clean);
    std::fs::remove_dir_all(&dir).unwrap();
}
