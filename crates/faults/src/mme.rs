//! The management-bus fault injector.
//!
//! Every management transaction (ampstat read/reset, sniffer control,
//! capture collection) asks the injector for a fate before the bus routes
//! it. The decision stream is a dedicated [`FaultRng`] derived from the
//! plan seed — transaction k always gets the same fate, no matter what
//! the simulation did in between.

use crate::plan::FaultPlan;
use crate::rng::FaultRng;

/// Sub-stream tag of the MME decision sequence (see [`FaultRng::derive`]).
const STREAM_MME: u64 = 0x4D4D_4520; // "MME "

/// What happens to one management transaction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MmeFate {
    /// Both legs deliver; the confirm arrives after `delay_us` (0 for the
    /// undelayed common case). Delays beyond the client timeout surface
    /// as a timeout whose device-side effects already applied.
    Deliver {
        /// Confirm latency, µs.
        delay_us: f64,
    },
    /// The request leg was lost: the device never saw it.
    RequestLost,
    /// The confirm leg was lost: the device processed the request (side
    /// effects applied) but the client times out anyway.
    ConfirmLost,
}

/// Per-run injector state: the decision stream plus optional fault
/// counters (observability only — counters never affect fates).
#[derive(Debug, Clone)]
pub struct MmeFaults {
    rng: FaultRng,
    loss: f64,
    delay_prob: f64,
    delay_us: f64,
    timeout_us: f64,
    obs: Option<MmeFaultObs>,
}

#[derive(Clone)]
struct MmeFaultObs {
    lost_request: plc_obs::Counter,
    lost_confirm: plc_obs::Counter,
    delayed: plc_obs::Counter,
}

impl std::fmt::Debug for MmeFaultObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MmeFaultObs")
    }
}

impl MmeFaults {
    /// Injector for one run of `plan`.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        MmeFaults {
            rng: FaultRng::derive(plan.seed, STREAM_MME),
            loss: plan.mme_loss,
            delay_prob: plan.mme_delay_prob,
            delay_us: plan.mme_delay_us,
            timeout_us: plan.mme_timeout_us,
            obs: None,
        }
    }

    /// Count injected faults into `registry` (`faults.mme.lost_request`,
    /// `faults.mme.lost_confirm`, `faults.mme.delayed`). Fails if any of
    /// those names is already registered as a non-counter.
    pub fn attach_registry(&mut self, registry: &plc_obs::Registry) -> plc_core::error::Result<()> {
        self.obs = Some(MmeFaultObs {
            lost_request: registry.try_counter("faults.mme.lost_request")?,
            lost_confirm: registry.try_counter("faults.mme.lost_confirm")?,
            delayed: registry.try_counter("faults.mme.delayed")?,
        });
        Ok(())
    }

    /// The client timeout the plan prescribes, µs.
    pub fn timeout_us(&self) -> f64 {
        self.timeout_us
    }

    /// Decide the fate of the next transaction. Exactly three draws per
    /// call (request leg, confirm leg, delay), so the decision stream
    /// stays aligned whatever probabilities the plan sets.
    pub fn next_fate(&mut self) -> MmeFate {
        let req_lost = self.rng.chance(self.loss);
        let cnf_lost = self.rng.chance(self.loss);
        let delayed = self.rng.chance(self.delay_prob);
        if req_lost {
            if let Some(o) = &self.obs {
                o.lost_request.inc();
            }
            return MmeFate::RequestLost;
        }
        if cnf_lost {
            if let Some(o) = &self.obs {
                o.lost_confirm.inc();
            }
            return MmeFate::ConfirmLost;
        }
        if delayed {
            if let Some(o) = &self.obs {
                o.delayed.inc();
            }
            return MmeFate::Deliver {
                delay_us: self.delay_us,
            };
        }
        MmeFate::Deliver { delay_us: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_plan_always_delivers() {
        let mut f = MmeFaults::from_plan(&FaultPlan::default());
        for _ in 0..200 {
            assert_eq!(f.next_fate(), MmeFate::Deliver { delay_us: 0.0 });
        }
    }

    #[test]
    fn fates_replay_exactly() {
        let plan = FaultPlan::builder().seed(5).mme_loss(0.3).build();
        let mut a = MmeFaults::from_plan(&plan);
        let mut b = MmeFaults::from_plan(&plan);
        for _ in 0..500 {
            assert_eq!(a.next_fate(), b.next_fate());
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let plan = FaultPlan::builder().seed(1).mme_loss(0.2).build();
        let mut f = MmeFaults::from_plan(&plan);
        let lost = (0..10_000)
            .filter(|_| !matches!(f.next_fate(), MmeFate::Deliver { .. }))
            .count();
        // Per-transaction failure ≈ 1 - 0.8² = 0.36.
        assert!((3200..4000).contains(&lost), "lost {lost} of 10000");
    }

    #[test]
    fn registry_counts_faults_without_changing_them() {
        let plan = FaultPlan::builder().seed(2).mme_loss(0.5).build();
        let mut plain = MmeFaults::from_plan(&plan);
        let mut counted = MmeFaults::from_plan(&plan);
        let registry = plc_obs::Registry::new();
        counted.attach_registry(&registry).unwrap();
        let fates: Vec<MmeFate> = (0..100).map(|_| plain.next_fate()).collect();
        let counted_fates: Vec<MmeFate> = (0..100).map(|_| counted.next_fate()).collect();
        assert_eq!(fates, counted_fates, "counters must not perturb fates");
        let snap = registry.snapshot();
        let req = snap.counter("faults.mme.lost_request").unwrap_or(0);
        let cnf = snap.counter("faults.mme.lost_confirm").unwrap_or(0);
        let total = fates
            .iter()
            .filter(|f| !matches!(f, MmeFate::Deliver { .. }))
            .count() as u64;
        assert_eq!(req + cnf, total);
    }

    #[test]
    fn delay_fires_with_delay_us() {
        let plan = FaultPlan::builder().seed(3).mme_delay(1.0, 123.0).build();
        let mut f = MmeFaults::from_plan(&plan);
        assert_eq!(f.next_fate(), MmeFate::Deliver { delay_us: 123.0 });
    }
}
