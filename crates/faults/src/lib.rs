//! # plc-faults — deterministic fault injection
//!
//! The paper's measurement methodology (§3.2–3.3) runs over vendor
//! firmware and a shared medium that are unreliable in practice: ampstat
//! confirmations get lost, INT6300-class devices brown out and clear
//! their counters mid-test, impulse noise wipes out whole slots. This
//! crate makes those failures *schedulable and reproducible*:
//!
//! * [`FaultPlan`] — a seeded, serializable description of every fault a
//!   run should see: MME request/confirm loss and delay on the management
//!   bus, device brownouts (firmware counters cleared), counter wrap
//!   modulus, and impulse-noise slot bursts for the slotted engine.
//! * [`FaultRng`] — the plan's own SplitMix64 stream. Fault decisions
//!   never touch a simulation RNG, so `(master_seed, FaultPlan)` →
//!   byte-identical results, with or without instrumentation, on any
//!   worker count.
//! * [`MmeFaults`] — the per-run injector the `MgmtBus` consults before
//!   routing each management transaction.
//! * [`RetryPolicy`] — bounded exponential backoff with deterministic
//!   jitter, used by the resilient `ampstat`/`faifa` clients.
//!
//! ```
//! use plc_faults::FaultPlan;
//!
//! let plan = FaultPlan::builder()
//!     .seed(7)
//!     .mme_loss(0.2)
//!     .device_reset_at(0, 120.0e6) // station 0 browns out at t = 120 s
//!     .counter_wrap_u32()
//!     .build();
//! assert!(!plan.is_benign());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mme;
pub mod plan;
pub mod retry;
pub mod rng;

pub use mme::{MmeFate, MmeFaults};
pub use plan::{DeviceReset, FaultPlan, FaultPlanBuilder, JobStall, NoiseBurst};
pub use retry::RetryPolicy;
pub use rng::FaultRng;
