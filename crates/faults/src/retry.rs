//! Bounded exponential backoff with deterministic jitter.
//!
//! The resilient tool clients (`ampstat`/`faifa` over a lossy bus) retry
//! timed-out transactions. Real clients jitter their backoff to avoid
//! synchronizing; ours jitter *deterministically* from a dedicated
//! [`FaultRng`](crate::FaultRng) stream, so the retry schedule — and
//! every observable counter derived from it — replays byte for byte.

use crate::rng::FaultRng;
use serde::{Deserialize, Serialize};

/// Sub-stream tag of client jitter sequences (see
/// [`FaultRng::derive`](crate::FaultRng::derive)).
pub const STREAM_RETRY: u64 = 0x5254_5259; // "RTRY"

/// A bounded exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1; a lone attempt means no
    /// retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, µs.
    pub base_us: f64,
    /// Backoff ceiling, µs.
    pub cap_us: f64,
    /// Seed of the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// 10 attempts, 100 µs base doubling to a 3200 µs cap. At the chaos
    /// plan's 20% per-leg loss (≈ 36% per-transaction failure), ten
    /// attempts push the give-up probability below 4·10⁻⁵ per request.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_us: 100.0,
            cap_us: 3200.0,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, fail fast (the pre-resilience behaviour).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// A policy with the given attempt budget.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Self::default()
        }
    }

    /// The jitter stream this policy's clients should draw from.
    pub fn jitter_rng(&self) -> FaultRng {
        FaultRng::derive(self.jitter_seed, STREAM_RETRY)
    }

    /// Backoff before retry number `attempt` (0-based: the delay after
    /// the first failed attempt is `backoff_us(0, …)`). Exponential
    /// growth capped at `cap_us`, then jittered to 50–100% of the capped
    /// value — the "equal jitter" scheme, deterministic via `rng`.
    pub fn backoff_us(&self, attempt: u32, rng: &mut FaultRng) -> f64 {
        let exp = self.base_us * 2.0_f64.powi(attempt.min(30) as i32);
        let capped = exp.min(self.cap_us);
        capped * (0.5 + 0.5 * rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy::default();
        let mut rng = p.jitter_rng();
        let delays: Vec<f64> = (0..12).map(|k| p.backoff_us(k, &mut rng)).collect();
        // Every delay within [base/2, cap].
        for d in &delays {
            assert!(*d >= p.base_us * 0.5 && *d <= p.cap_us, "delay {d}");
        }
        // Late delays sit at the cap's jitter band.
        assert!(delays[11] >= p.cap_us * 0.5);
    }

    #[test]
    fn jitter_is_deterministic() {
        let p = RetryPolicy::default();
        let mut a = p.jitter_rng();
        let mut b = p.jitter_rng();
        for k in 0..8 {
            assert_eq!(p.backoff_us(k, &mut a), p.backoff_us(k, &mut b));
        }
    }

    #[test]
    fn none_means_single_attempt() {
        assert_eq!(RetryPolicy::none().max_attempts, 1);
        assert_eq!(RetryPolicy::with_attempts(0).max_attempts, 1);
    }

    #[test]
    fn huge_attempt_does_not_overflow() {
        let p = RetryPolicy::default();
        let mut rng = p.jitter_rng();
        let d = p.backoff_us(u32::MAX, &mut rng);
        assert!(d.is_finite() && d <= p.cap_us);
    }
}
