//! The fault layer's own random stream.
//!
//! Fault decisions must be deterministic *and* independent of the
//! simulation: drawing them from an engine or process RNG would shift
//! every subsequent backoff draw and silently change the experiment being
//! measured. [`FaultRng`] is a self-contained SplitMix64 sequence — the
//! same mixer the sweep engine uses for seed derivation — so a
//! `(seed, stream)` pair always replays the exact same fault sequence.

/// The SplitMix64 finalizer: one full avalanche round (a bijection on
/// `u64`).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic SplitMix64 generator dedicated to fault decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Generator seeded directly.
    pub fn new(seed: u64) -> Self {
        FaultRng { state: seed }
    }

    /// Generator for a named sub-stream of `seed`. Distinct `stream`
    /// values yield decorrelated sequences (the pair is pushed through
    /// the finalizer, a bijection, before use), so the MME injector and a
    /// retry client can both derive from one plan seed without sharing
    /// draws.
    pub fn derive(seed: u64, stream: u64) -> Self {
        FaultRng {
            state: mix(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
                ^ mix(stream.wrapping_mul(0x2545_F491_4F6C_DD1D)),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard u64 → f64 construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`. Always consumes
    /// exactly one draw, even for `p = 0` — fault streams stay aligned no
    /// matter which probabilities a plan sets.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_deterministic() {
        let mut a = FaultRng::new(42);
        let mut b = FaultRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut a = FaultRng::derive(42, 0);
        let mut b = FaultRng::derive(42, 1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "derived streams must not track each other");
    }

    #[test]
    fn unit_interval_and_chance_edges() {
        let mut rng = FaultRng::new(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
        assert!(!rng.chance(0.0), "p = 0 never fires");
        let mut rng = FaultRng::new(8);
        assert!(rng.chance(1.0), "p = 1 always fires");
    }

    #[test]
    fn chance_consumes_one_draw_regardless_of_p() {
        let mut a = FaultRng::new(3);
        let mut b = FaultRng::new(3);
        a.chance(0.0);
        b.chance(0.9);
        assert_eq!(a.next_u64(), b.next_u64(), "streams must stay aligned");
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = FaultRng::new(11);
        let hits = (0..10_000).filter(|_| rng.chance(0.2)).count();
        assert!((1600..2400).contains(&hits), "p=0.2 over 10k draws: {hits}");
    }
}
