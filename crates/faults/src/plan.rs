//! The fault plan: everything that will go wrong, decided up front.

use serde::{Deserialize, Serialize};

/// One scheduled device brownout: at `at_us` (simulated time) the
/// station's firmware restarts and its statistics counters, sniffer state
/// and pending captures are cleared — what a real INT6300 reset does to a
/// running §3.2 measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceReset {
    /// Index of the transmitting station (0-based, as in
    /// `PowerStrip::station_mac`).
    pub station: usize,
    /// Simulated time of the reset, µs.
    pub at_us: f64,
}

/// One impulse-noise burst on the medium: while active, every physical
/// block of every transmitted MPDU errors (delimiters stay decodable —
/// impulse noise at these durations wipes payloads, not the robustly
/// modulated preamble).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseBurst {
    /// Burst start, µs of simulated time.
    pub start_us: f64,
    /// Burst duration, µs.
    pub duration_us: f64,
}

impl NoiseBurst {
    /// End of the burst, µs.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.duration_us
    }

    /// Whether `t_us` falls inside the burst.
    pub fn contains(&self, t_us: f64) -> bool {
        t_us >= self.start_us && t_us < self.end_us()
    }
}

/// A scheduled *host-side* stall for chaos-testing checkpointed job
/// runners: after `after_points` journaled sweep points, the runner's
/// checkpoint hook sleeps `stall_ms` of wall-clock time.
///
/// Unlike every other fault in this crate, the stall perturbs the
/// **process running the simulation**, not the simulated network — it
/// exists so a kill-and-resume harness can hold a job in a known
/// "mid-journal" state long enough to SIGKILL it deterministically, and
/// so watchdog timeouts have a reproducible victim. It is pure data
/// here; the `plc-jobs` runner interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobStall {
    /// Journaled points to complete before the stall engages.
    pub after_points: usize,
    /// Wall-clock stall duration, milliseconds.
    pub stall_ms: u64,
}

impl JobStall {
    /// Whether the hook should stall after `points_done` journaled
    /// points (fires exactly once, on the `after_points`-th completion).
    pub fn fires_at(&self, points_done: usize) -> bool {
        points_done == self.after_points
    }
}

/// A seeded, serializable schedule of faults.
///
/// The plan is pure data: injectors ([`crate::MmeFaults`], the testbed's
/// reset hook, the engine's noise hook) derive their own
/// [`FaultRng`](crate::FaultRng) streams from `seed`, so the same plan
/// replays the same faults byte for byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of every fault stream (decorrelated from simulation seeds by
    /// construction — fault draws never touch a simulation RNG).
    pub seed: u64,
    /// Probability that one *leg* (request or confirm) of a management
    /// transaction is lost. The paper's tools see this as a timeout.
    pub mme_loss: f64,
    /// Probability that a delivered confirm is delayed.
    pub mme_delay_prob: f64,
    /// Delay applied when `mme_delay_prob` fires, µs. Delays beyond
    /// `mme_timeout_us` surface as timeouts with device side effects
    /// already applied.
    pub mme_delay_us: f64,
    /// The management client's timeout, µs.
    pub mme_timeout_us: f64,
    /// Scheduled device brownouts.
    pub device_resets: Vec<DeviceReset>,
    /// Firmware counter modulus (`Some(2^32)` models the real chips' u32
    /// counters wrapping during long tests); `None` = unbounded.
    pub counter_wrap: Option<u64>,
    /// Impulse-noise bursts for the slotted engine.
    pub noise: Vec<NoiseBurst>,
}

impl Default for FaultPlan {
    /// A benign plan: no loss, no delay, no resets, no wrap, no noise.
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            mme_loss: 0.0,
            mme_delay_prob: 0.0,
            mme_delay_us: 0.0,
            mme_timeout_us: 1000.0,
            device_resets: Vec::new(),
            counter_wrap: None,
            noise: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Start building a plan.
    pub fn builder() -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan::default(),
        }
    }

    /// True when the plan injects nothing: no loss, no delay, no resets,
    /// no wrap, no noise. A benign plan's injectors are exact no-ops.
    pub fn is_benign(&self) -> bool {
        self.mme_loss == 0.0
            && self.mme_delay_prob == 0.0
            && self.device_resets.is_empty()
            && self.counter_wrap.is_none()
            && self.noise.is_empty()
    }

    /// The reset schedule for one station, sorted by time.
    pub fn resets_for(&self, station: usize) -> Vec<DeviceReset> {
        let mut r: Vec<DeviceReset> = self
            .device_resets
            .iter()
            .copied()
            .filter(|r| r.station == station)
            .collect();
        r.sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        r
    }
}

/// Builder for [`FaultPlan`].
///
/// ```
/// use plc_faults::FaultPlan;
///
/// let plan = FaultPlan::builder()
///     .mme_loss(0.2)
///     .device_reset_at(1, 5.0e6)
///     .build();
/// assert_eq!(plan.device_resets.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Seed of the fault streams.
    pub fn seed(mut self, seed: u64) -> Self {
        self.plan.seed = seed;
        self
    }

    /// Per-leg MME loss probability (each transaction has a request and a
    /// confirm leg, lost independently).
    pub fn mme_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.plan.mme_loss = p;
        self
    }

    /// Delay `delay_us` applied to the confirm with probability `p`.
    pub fn mme_delay(mut self, p: f64, delay_us: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "delay probability must be in [0, 1]"
        );
        assert!(delay_us >= 0.0, "delay must be non-negative");
        self.plan.mme_delay_prob = p;
        self.plan.mme_delay_us = delay_us;
        self
    }

    /// The management client's timeout, µs.
    pub fn mme_timeout_us(mut self, t: f64) -> Self {
        assert!(t > 0.0, "timeout must be positive");
        self.plan.mme_timeout_us = t;
        self
    }

    /// Schedule a brownout of `station` at `at_us` of simulated time.
    /// Repeatable.
    pub fn device_reset_at(mut self, station: usize, at_us: f64) -> Self {
        assert!(at_us >= 0.0, "reset time must be non-negative");
        self.plan.device_resets.push(DeviceReset { station, at_us });
        self
    }

    /// Wrap firmware counters at 2³² (the real chips' register width).
    pub fn counter_wrap_u32(self) -> Self {
        self.counter_wrap(1 << 32)
    }

    /// Wrap firmware counters at an arbitrary modulus (small values let
    /// tests exercise wrap stitching in seconds).
    pub fn counter_wrap(mut self, modulus: u64) -> Self {
        assert!(modulus > 1, "wrap modulus must exceed 1");
        self.plan.counter_wrap = Some(modulus);
        self
    }

    /// Add an impulse-noise burst. Repeatable.
    pub fn noise_burst(mut self, start_us: f64, duration_us: f64) -> Self {
        assert!(start_us >= 0.0 && duration_us > 0.0, "invalid noise burst");
        self.plan.noise.push(NoiseBurst {
            start_us,
            duration_us,
        });
        self
    }

    /// Finish the plan. Reset and noise schedules are sorted by time so
    /// injectors can consume them with a monotone cursor.
    pub fn build(mut self) -> FaultPlan {
        self.plan
            .device_resets
            .sort_by(|a, b| a.at_us.total_cmp(&b.at_us));
        self.plan
            .noise
            .sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_benign() {
        assert!(FaultPlan::default().is_benign());
        assert!(FaultPlan::builder().build().is_benign());
    }

    #[test]
    fn builder_sets_every_field() {
        let plan = FaultPlan::builder()
            .seed(9)
            .mme_loss(0.2)
            .mme_delay(0.1, 50.0)
            .mme_timeout_us(500.0)
            .device_reset_at(2, 1.0e6)
            .device_reset_at(0, 2.0e5)
            .counter_wrap_u32()
            .noise_burst(3.0e5, 1.0e4)
            .build();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.mme_loss, 0.2);
        assert_eq!(plan.mme_delay_prob, 0.1);
        assert_eq!(plan.mme_timeout_us, 500.0);
        assert_eq!(plan.counter_wrap, Some(1 << 32));
        assert!(!plan.is_benign());
        // Sorted by time.
        assert_eq!(plan.device_resets[0].station, 0);
        assert_eq!(plan.device_resets[1].station, 2);
    }

    #[test]
    fn resets_for_filters_and_sorts() {
        let plan = FaultPlan::builder()
            .device_reset_at(1, 9.0)
            .device_reset_at(0, 5.0)
            .device_reset_at(1, 3.0)
            .build();
        let r = plan.resets_for(1);
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].at_us, 3.0);
        assert_eq!(r[1].at_us, 9.0);
        assert!(plan.resets_for(7).is_empty());
    }

    #[test]
    fn noise_burst_containment() {
        let b = NoiseBurst {
            start_us: 10.0,
            duration_us: 5.0,
        };
        assert!(!b.contains(9.9));
        assert!(b.contains(10.0));
        assert!(b.contains(14.9));
        assert!(!b.contains(15.0));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::builder()
            .seed(3)
            .mme_loss(0.25)
            .device_reset_at(1, 7.0)
            .counter_wrap(1000)
            .noise_burst(1.0, 2.0)
            .build();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn builder_rejects_bad_loss() {
        let _ = FaultPlan::builder().mme_loss(1.5);
    }

    #[test]
    fn job_stall_round_trips_and_fires_once() {
        let stall = JobStall {
            after_points: 3,
            stall_ms: 500,
        };
        let json = serde_json::to_string(&stall).unwrap();
        let back: JobStall = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stall);
        assert!(!stall.fires_at(2));
        assert!(stall.fires_at(3));
        assert!(!stall.fires_at(4));
    }
}
