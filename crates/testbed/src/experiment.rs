//! The §3.2 measurement methodology, automated.
//!
//! "To measure collision probability, we reset the statistics of the
//! frames transmitted at all the stations at the beginning of each test.
//! Then, at the end of the test we request the number of collided and
//! acknowledged frames transmitted from all the stations given the MAC
//! address of the destination station D. … To evaluate the collision
//! probability in the network, we compute ΣCᵢ / ΣAᵢ."
//!
//! [`CollisionExperiment`] runs exactly that loop against the emulated
//! power strip and returns the raw per-station counters (Table 2's rows)
//! and the derived probability (Figure 2's measurement series). The whole
//! path — reset MMEs, test traffic, query MMEs, reply-byte parsing — is
//! the same one a hardware test would take.
//!
//! # Robust measurement under faults
//!
//! On real hardware the methodology has two failure modes the end-only
//! read cannot survive: a device that browns out mid-test comes back with
//! cleared counters, and a 32-bit firmware counter silently wraps during
//! a long test. Both make the final read an undercount with no way to
//! tell. The experiment therefore supports **checkpointed reads**
//! ([`CollisionExperiment::checkpoints`]): the engine pauses `k` times
//! (the last pause exactly at the horizon), the retrying ampstat client
//! reads every station at each pause, and the per-interval deltas are
//! **stitched** back into monotone totals:
//!
//! * `cur ≥ prev` — normal interval, delta is `cur − prev`;
//! * `cur < prev` with a wrap modulus `m` in the fault plan and
//!   `prev > m/2` — the counter wrapped, delta is `cur + m − prev`;
//! * `cur < prev` with device resets in the plan — the device rebooted,
//!   delta is `cur` (the counts between the previous checkpoint and the
//!   reset are lost — checkpoint density bounds that loss);
//! * otherwise the discontinuity has no scheduled explanation and the run
//!   fails with [`Error::CounterDiscontinuity`] rather than silently
//!   undercounting.
//!
//! Every stitched discontinuity is tallied in
//! [`ExperimentOutcome::discontinuities`].

use crate::powerstrip::{PowerStrip, TestbedConfig};
use crate::tools::AmpStat;
use plc_core::addr::MacAddr;
use plc_core::error::{Error, Result};
use plc_core::mme::{AmpStatCnf, Direction};
use plc_core::priority::Priority;
use plc_core::units::Microseconds;
use plc_faults::{FaultPlan, RetryPolicy};
use plc_sim::bursting::BurstPolicy;
use serde::{Deserialize, Serialize};

/// One collision-probability test (paper defaults: 240 s, CA1 data,
/// 2-MPDU bursts, light MME background).
///
/// # Examples
///
/// ```
/// use plc_testbed::CollisionExperiment;
///
/// // The §3.2 methodology, shortened: reset → run → query → ΣCi/ΣAi.
/// let outcome = CollisionExperiment::quick(3, 7).run().unwrap();
/// assert_eq!(outcome.per_station.len(), 3);
/// assert!(outcome.collision_probability > 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct CollisionExperiment {
    /// Number of transmitting stations.
    pub n: usize,
    /// Test duration.
    pub duration: Microseconds,
    /// Seed of this test.
    pub seed: u64,
    /// Burst policy.
    pub burst: BurstPolicy,
    /// Management-message background rate per device (frames/µs).
    pub mme_rate_per_us: f64,
    /// Fault plan forwarded to the testbed (`None` = ideal conditions).
    pub faults: Option<FaultPlan>,
    /// Retry policy of the measurement tools (dormant on a clean bus).
    pub retry: RetryPolicy,
    /// Number of counter reads, evenly spaced with the last exactly at
    /// the horizon. `1` is the paper's end-only read; raise it to stitch
    /// over device resets and counter wrap (see the module docs).
    pub checkpoints: u32,
}

impl CollisionExperiment {
    /// Paper-style test: `n` stations for 240 s.
    pub fn paper(n: usize, seed: u64) -> Self {
        CollisionExperiment {
            n,
            duration: Microseconds::from_secs(240.0),
            seed,
            burst: BurstPolicy::INT6300,
            mme_rate_per_us: 2e-6,
            faults: None,
            retry: RetryPolicy::default(),
            checkpoints: 1,
        }
    }

    /// Shorter test for CI-speed runs.
    pub fn quick(n: usize, seed: u64) -> Self {
        CollisionExperiment {
            duration: Microseconds::from_secs(10.0),
            ..Self::paper(n, seed)
        }
    }

    /// Run one test: reset → traffic (pausing at each checkpoint to read
    /// counters) → stitch → `ΣCᵢ / ΣAᵢ`.
    pub fn run(&self) -> Result<ExperimentOutcome> {
        self.run_inner(None)
    }

    /// [`run`](CollisionExperiment::run) with the testbed and tools
    /// mirrored into `registry` (`testbed.*`, `faults.*`, engine timers).
    /// Observability only — the outcome is identical with or without it.
    pub fn run_observed(&self, registry: &plc_obs::Registry) -> Result<ExperimentOutcome> {
        self.run_inner(Some(registry))
    }

    fn run_inner(&self, registry: Option<&plc_obs::Registry>) -> Result<ExperimentOutcome> {
        assert!(self.checkpoints >= 1, "need at least the final read");
        let cfg = TestbedConfig {
            n_stations: self.n,
            duration: self.duration,
            seed: self.seed,
            burst: self.burst,
            mme_rate_per_us: self.mme_rate_per_us,
            faults: self.faults.clone(),
            ..Default::default()
        };
        let mut strip = PowerStrip::new(cfg);
        if let Some(reg) = registry {
            strip.attach_registry(reg)?;
        }
        let mut tool = AmpStat::new(strip.bus()).with_retry(self.retry);
        if let Some(reg) = registry {
            tool.attach_registry(reg)?;
        }
        let dst = strip.destination_mac();
        let macs: Vec<MacAddr> = (0..self.n).map(|i| strip.station_mac(i)).collect();

        // Reset the transmit statistics of all stations.
        for &mac in &macs {
            tool.reset(mac, dst, Priority::CA1, Direction::Tx)?;
        }

        // Evenly spaced checkpoints; the last coincides with the horizon,
        // so the final reading happens after all traffic has been served.
        let k = self.checkpoints as usize;
        let breaks: Vec<Microseconds> = (1..=k)
            .map(|j| {
                if j == k {
                    self.duration
                } else {
                    Microseconds(self.duration.as_micros() * j as f64 / k as f64)
                }
            })
            .collect();

        // Run the traffic, reading every station at each checkpoint. The
        // tool holds its own handle on the bus, so the reads borrow
        // nothing from the strip the engine is running in.
        let mut readings: Vec<Vec<AmpStatCnf>> = Vec::with_capacity(k);
        strip.run_test_with_breaks(&breaks, |_| {
            let snap = macs
                .iter()
                .map(|&mac| tool.get(mac, dst, Priority::CA1, Direction::Tx))
                .collect::<Result<Vec<_>>>()?;
            readings.push(snap);
            Ok(())
        })?;

        // Stitch the per-interval deltas into monotone totals.
        let wrap = self.faults.as_ref().and_then(|p| p.counter_wrap);
        let resets_possible = self
            .faults
            .as_ref()
            .is_some_and(|p| !p.device_resets.is_empty());
        let mut discontinuities = 0u64;
        let mut totals = vec![AmpStatCnf::default(); self.n];
        let mut prev = vec![AmpStatCnf::default(); self.n];
        for snap in &readings {
            for (i, cur) in snap.iter().enumerate() {
                totals[i].acked += stitch(
                    &format!("station {i} acked"),
                    prev[i].acked,
                    cur.acked,
                    wrap,
                    resets_possible,
                    &mut discontinuities,
                )?;
                totals[i].collided += stitch(
                    &format!("station {i} collided"),
                    prev[i].collided,
                    cur.collided,
                    wrap,
                    resets_possible,
                    &mut discontinuities,
                )?;
                prev[i] = *cur;
            }
        }
        let mut outcome = ExperimentOutcome::from_counters(totals);
        outcome.discontinuities = discontinuities;
        Ok(outcome)
    }

    /// Run `repeats` tests with derived seeds (Figure 2 averages 10) and
    /// return each outcome.
    pub fn run_repeated(&self, repeats: u64) -> Result<Vec<ExperimentOutcome>> {
        (0..repeats)
            .map(|k| {
                CollisionExperiment {
                    seed: self.seed.wrapping_add(k * 7919),
                    ..self.clone()
                }
                .run()
            })
            .collect()
    }
}

/// One checkpoint-to-checkpoint counter delta, repaired against the
/// discontinuities the fault plan can explain (see the module docs for
/// the three rules). Unexplained backwards movement is an error.
fn stitch(
    counter: &str,
    prev: u64,
    cur: u64,
    wrap: Option<u64>,
    resets_possible: bool,
    discontinuities: &mut u64,
) -> Result<u64> {
    if cur >= prev {
        return Ok(cur - prev);
    }
    *discontinuities += 1;
    if let Some(m) = wrap {
        // A wrapped counter sits within one interval's growth below the
        // modulus; a reset one near zero. `prev > m/2` separates the two
        // as long as an interval's traffic stays under half the modulus.
        if prev > m / 2 {
            return Ok(cur + m - prev);
        }
    }
    if resets_possible {
        return Ok(cur);
    }
    Err(Error::CounterDiscontinuity {
        counter: counter.to_string(),
        prev,
        got: cur,
    })
}

/// The measured counters and derived probability of one test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Per-station `(Aᵢ, Cᵢ)` counters, as read via ampstat (stitched
    /// totals when the experiment ran with checkpoints).
    pub per_station: Vec<AmpStatCnf>,
    /// `ΣCᵢ`.
    pub sum_collided: u64,
    /// `ΣAᵢ` (includes collided frames — the selective-ACK behaviour the
    /// paper verifies).
    pub sum_acked: u64,
    /// `ΣCᵢ / ΣAᵢ`.
    pub collision_probability: f64,
    /// Number of counter discontinuities (wraps, resets) stitched over.
    /// `0` on a clean run.
    #[serde(default)]
    pub discontinuities: u64,
}

impl ExperimentOutcome {
    /// Derive the sums and probability from per-station counters.
    pub fn from_counters(per_station: Vec<AmpStatCnf>) -> Self {
        let sum_collided: u64 = per_station.iter().map(|s| s.collided).sum();
        let sum_acked: u64 = per_station.iter().map(|s| s.acked).sum();
        ExperimentOutcome {
            per_station,
            sum_collided,
            sum_acked,
            collision_probability: if sum_acked == 0 {
                0.0
            } else {
                sum_collided as f64 / sum_acked as f64
            },
            discontinuities: 0,
        }
    }
}

/// Mean collision probability over outcomes (the Figure 2 point).
pub fn mean_collision_probability(outcomes: &[ExperimentOutcome]) -> f64 {
    if outcomes.is_empty() {
        return f64::NAN;
    }
    outcomes
        .iter()
        .map(|o| o.collision_probability)
        .sum::<f64>()
        / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_rarely_collides() {
        let out = CollisionExperiment::quick(1, 1).run().unwrap();
        assert!(out.sum_acked > 0);
        assert!(
            out.collision_probability < 0.01,
            "one CA1 station should almost never collide: {}",
            out.collision_probability
        );
    }

    #[test]
    fn two_stations_near_paper_value() {
        let outs = CollisionExperiment::quick(2, 2).run_repeated(3).unwrap();
        let p = mean_collision_probability(&outs);
        assert!(
            (p - 0.074).abs() < 0.035,
            "N=2 measurement should sit near the paper's ≈0.074, got {p}"
        );
    }

    #[test]
    fn acked_grows_with_n() {
        // The paper's §3.2 verification: ΣAᵢ increases with N because
        // collided frames are still acknowledged.
        let a2 = CollisionExperiment::quick(2, 3).run().unwrap().sum_acked;
        let a5 = CollisionExperiment::quick(5, 3).run().unwrap().sum_acked;
        assert!(a5 > a2, "ΣAᵢ must grow with N: {a2} vs {a5}");
    }

    #[test]
    fn probability_monotone_in_n() {
        let p = |n| {
            CollisionExperiment::quick(n, 4)
                .run()
                .unwrap()
                .collision_probability
        };
        let (p1, p3, p6) = (p(1), p(3), p(6));
        assert!(p1 < p3 && p3 < p6, "{p1} {p3} {p6}");
    }

    #[test]
    fn outcome_arithmetic() {
        let out = ExperimentOutcome::from_counters(vec![
            AmpStatCnf {
                acked: 100,
                collided: 10,
            },
            AmpStatCnf {
                acked: 50,
                collided: 5,
            },
        ]);
        assert_eq!(out.sum_acked, 150);
        assert_eq!(out.sum_collided, 15);
        assert!((out.collision_probability - 0.1).abs() < 1e-12);
        assert_eq!(out.discontinuities, 0);
        assert_eq!(
            ExperimentOutcome::from_counters(vec![]).collision_probability,
            0.0
        );
    }

    #[test]
    fn repeats_use_different_seeds() {
        let outs = CollisionExperiment::quick(2, 5).run_repeated(2).unwrap();
        assert_ne!(outs[0], outs[1]);
    }

    #[test]
    fn outcome_json_tolerates_missing_discontinuities() {
        // Pre-fault-layer outcome JSON has no `discontinuities` field.
        let legacy = r#"{"per_station":[],"sum_collided":0,"sum_acked":0,
                         "collision_probability":0.0}"#;
        let out: ExperimentOutcome = serde_json::from_str(legacy).unwrap();
        assert_eq!(out.discontinuities, 0);
    }

    #[test]
    fn stitch_rules() {
        let mut d = 0;
        // Monotone: plain delta, no discontinuity.
        assert_eq!(stitch("a", 10, 15, None, false, &mut d).unwrap(), 5);
        assert_eq!(d, 0);
        // Wrap: prev near the modulus.
        assert_eq!(stitch("a", 90, 10, Some(100), false, &mut d).unwrap(), 20);
        assert_eq!(d, 1);
        // Reset: counts restart from zero.
        assert_eq!(stitch("a", 10, 5, None, true, &mut d).unwrap(), 5);
        assert_eq!(d, 2);
        // Wrap modulus set but prev too low to be a wrap, resets possible:
        // treated as a reset.
        assert_eq!(stitch("a", 40, 5, Some(100), true, &mut d).unwrap(), 5);
        assert_eq!(d, 3);
        // No scheduled explanation: error.
        let err = stitch("a", 10, 5, None, false, &mut d).unwrap_err();
        assert!(matches!(
            err,
            Error::CounterDiscontinuity {
                prev: 10,
                got: 5,
                ..
            }
        ));
        assert!(stitch("a", 40, 5, Some(100), false, &mut d).is_err());
    }

    #[test]
    fn checkpointed_clean_run_matches_end_only_read() {
        let end_only = CollisionExperiment::quick(2, 6).run().unwrap();
        let mut exp = CollisionExperiment::quick(2, 6);
        exp.checkpoints = 5;
        let checkpointed = exp.run().unwrap();
        assert_eq!(end_only, checkpointed, "stitching clean deltas is exact");
        assert_eq!(checkpointed.discontinuities, 0);
    }

    #[test]
    fn lossy_bus_with_retries_matches_clean_exactly() {
        let clean = CollisionExperiment::quick(2, 13).run().unwrap();
        let mut exp = CollisionExperiment::quick(2, 13);
        exp.faults = Some(FaultPlan::builder().seed(3).mme_loss(0.2).build());
        exp.retry = RetryPolicy::with_attempts(32);
        let out = exp.run().unwrap();
        // MME loss hits only the management bus, never the wire, and all
        // tool operations are idempotent — retried reads converge to the
        // exact clean counters.
        assert_eq!(out.per_station, clean.per_station);
        assert_eq!(out.collision_probability, clean.collision_probability);
    }

    #[test]
    fn wrap_stitch_recovers_exact_totals() {
        let clean = CollisionExperiment::quick(1, 11).run().unwrap();
        let total = clean.per_station[0].acked;
        assert!(total > 16, "need enough traffic to wrap: {total}");
        // Wraps exactly once mid-test; each checkpoint interval carries
        // well under m/2 counts, so the wrap heuristic is unambiguous.
        let m = 2 * total / 3;
        let mut exp = CollisionExperiment::quick(1, 11);
        exp.checkpoints = 16;
        exp.faults = Some(FaultPlan::builder().seed(1).counter_wrap(m).build());
        let out = exp.run().unwrap();
        assert_eq!(out.per_station[0].acked, clean.per_station[0].acked);
        assert_eq!(out.per_station[0].collided, clean.per_station[0].collided);
        assert!(out.discontinuities >= 1, "the wrap must have been stitched");
    }

    #[test]
    fn reset_stitch_bounds_the_loss_to_one_interval() {
        let clean = CollisionExperiment::quick(2, 12).run().unwrap();
        let mut exp = CollisionExperiment::quick(2, 12);
        exp.checkpoints = 8;
        exp.faults = Some(
            FaultPlan::builder()
                .seed(2)
                .device_reset_at(0, Microseconds::from_secs(5.3).as_micros())
                .build(),
        );
        let out = exp.run().unwrap();
        assert!(out.discontinuities >= 1);
        // Station 1 never reset: stitched totals are exact.
        assert_eq!(out.per_station[1], clean.per_station[1]);
        // Station 0 loses only the counts between its last checkpoint and
        // the reset — at most one of the 8 intervals.
        assert!(out.per_station[0].acked <= clean.per_station[0].acked);
        assert!(
            out.per_station[0].acked as f64 >= clean.per_station[0].acked as f64 * 0.8,
            "loss must be bounded by checkpoint density: {} vs {}",
            out.per_station[0].acked,
            clean.per_station[0].acked
        );
        assert!(
            (out.collision_probability - clean.collision_probability).abs() < 0.02,
            "stitched probability must stay in the Figure 2 envelope: {} vs {}",
            out.collision_probability,
            clean.collision_probability
        );
    }

    #[test]
    fn unexplained_reset_with_end_only_read_undercounts_silently() {
        // The failure mode the checkpoints exist for: with a single
        // end-of-test read, a mid-test reset is invisible (the lone read
        // starts from prev = 0, so nothing ever moves backwards) and the
        // experiment silently loses everything before the reset.
        let clean = CollisionExperiment::quick(2, 14).run().unwrap();
        let mut exp = CollisionExperiment::quick(2, 14);
        exp.faults = Some(
            FaultPlan::builder()
                .seed(4)
                .device_reset_at(0, Microseconds::from_secs(8.0).as_micros())
                .build(),
        );
        let out = exp.run().unwrap();
        assert_eq!(out.discontinuities, 0, "end-only read cannot see the reset");
        assert!(
            (out.per_station[0].acked as f64) < clean.per_station[0].acked as f64 * 0.5,
            "the undercount the stitching repairs: {} vs {}",
            out.per_station[0].acked,
            clean.per_station[0].acked
        );
    }

    #[test]
    fn observed_chaos_run_counts_retries() {
        let registry = plc_obs::Registry::new();
        let mut exp = CollisionExperiment::quick(2, 15);
        exp.checkpoints = 4;
        exp.faults = Some(FaultPlan::builder().seed(5).mme_loss(0.3).build());
        exp.retry = RetryPolicy::with_attempts(32);
        let control = exp.run().unwrap();
        let observed = exp.run_observed(&registry).unwrap();
        assert_eq!(control, observed, "observation must not perturb results");
        let snap = registry.snapshot();
        assert!(snap.counter("testbed.mme.retries").unwrap_or(0) > 0);
        assert_eq!(snap.counter("testbed.mme.gave_up"), Some(0));
        assert!(snap.counter("faults.mme.lost_request").unwrap_or(0) > 0);
    }
}
