//! The §3.2 measurement methodology, automated.
//!
//! "To measure collision probability, we reset the statistics of the
//! frames transmitted at all the stations at the beginning of each test.
//! Then, at the end of the test we request the number of collided and
//! acknowledged frames transmitted from all the stations given the MAC
//! address of the destination station D. … To evaluate the collision
//! probability in the network, we compute ΣCᵢ / ΣAᵢ."
//!
//! [`CollisionExperiment`] runs exactly that loop against the emulated
//! power strip and returns the raw per-station counters (Table 2's rows)
//! and the derived probability (Figure 2's measurement series). The whole
//! path — reset MMEs, test traffic, query MMEs, reply-byte parsing — is
//! the same one a hardware test would take.

use crate::powerstrip::{PowerStrip, TestbedConfig};
use crate::tools::AmpStat;
use plc_core::error::Result;
use plc_core::mme::{AmpStatCnf, Direction};
use plc_core::priority::Priority;
use plc_core::units::Microseconds;
use plc_sim::bursting::BurstPolicy;
use serde::{Deserialize, Serialize};

/// One collision-probability test (paper defaults: 240 s, CA1 data,
/// 2-MPDU bursts, light MME background).
///
/// # Examples
///
/// ```
/// use plc_testbed::CollisionExperiment;
///
/// // The §3.2 methodology, shortened: reset → run → query → ΣCi/ΣAi.
/// let outcome = CollisionExperiment::quick(3, 7).run().unwrap();
/// assert_eq!(outcome.per_station.len(), 3);
/// assert!(outcome.collision_probability > 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct CollisionExperiment {
    /// Number of transmitting stations.
    pub n: usize,
    /// Test duration.
    pub duration: Microseconds,
    /// Seed of this test.
    pub seed: u64,
    /// Burst policy.
    pub burst: BurstPolicy,
    /// Management-message background rate per device (frames/µs).
    pub mme_rate_per_us: f64,
}

impl CollisionExperiment {
    /// Paper-style test: `n` stations for 240 s.
    pub fn paper(n: usize, seed: u64) -> Self {
        CollisionExperiment {
            n,
            duration: Microseconds::from_secs(240.0),
            seed,
            burst: BurstPolicy::INT6300,
            mme_rate_per_us: 2e-6,
        }
    }

    /// Shorter test for CI-speed runs.
    pub fn quick(n: usize, seed: u64) -> Self {
        CollisionExperiment {
            duration: Microseconds::from_secs(10.0),
            ..Self::paper(n, seed)
        }
    }

    /// Run one test: reset → traffic → query → `ΣCᵢ / ΣAᵢ`.
    pub fn run(&self) -> Result<ExperimentOutcome> {
        let cfg = TestbedConfig {
            n_stations: self.n,
            duration: self.duration,
            seed: self.seed,
            burst: self.burst,
            mme_rate_per_us: self.mme_rate_per_us,
            ..Default::default()
        };
        let mut strip = PowerStrip::new(cfg);
        let tool = AmpStat::new(strip.bus());
        let dst = strip.destination_mac();

        // Reset the transmit statistics of all stations.
        for i in 0..self.n {
            tool.reset(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)?;
        }

        // Run the traffic for the test duration.
        strip.run_test();

        // Query the counters.
        let mut per_station = Vec::with_capacity(self.n);
        for i in 0..self.n {
            per_station.push(tool.get(strip.station_mac(i), dst, Priority::CA1, Direction::Tx)?);
        }
        Ok(ExperimentOutcome::from_counters(per_station))
    }

    /// Run `repeats` tests with derived seeds (Figure 2 averages 10) and
    /// return each outcome.
    pub fn run_repeated(&self, repeats: u64) -> Result<Vec<ExperimentOutcome>> {
        (0..repeats)
            .map(|k| {
                CollisionExperiment {
                    seed: self.seed.wrapping_add(k * 7919),
                    ..self.clone()
                }
                .run()
            })
            .collect()
    }
}

/// The measured counters and derived probability of one test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Per-station `(Aᵢ, Cᵢ)` counters, as read via ampstat.
    pub per_station: Vec<AmpStatCnf>,
    /// `ΣCᵢ`.
    pub sum_collided: u64,
    /// `ΣAᵢ` (includes collided frames — the selective-ACK behaviour the
    /// paper verifies).
    pub sum_acked: u64,
    /// `ΣCᵢ / ΣAᵢ`.
    pub collision_probability: f64,
}

impl ExperimentOutcome {
    /// Derive the sums and probability from per-station counters.
    pub fn from_counters(per_station: Vec<AmpStatCnf>) -> Self {
        let sum_collided: u64 = per_station.iter().map(|s| s.collided).sum();
        let sum_acked: u64 = per_station.iter().map(|s| s.acked).sum();
        ExperimentOutcome {
            per_station,
            sum_collided,
            sum_acked,
            collision_probability: if sum_acked == 0 {
                0.0
            } else {
                sum_collided as f64 / sum_acked as f64
            },
        }
    }
}

/// Mean collision probability over outcomes (the Figure 2 point).
pub fn mean_collision_probability(outcomes: &[ExperimentOutcome]) -> f64 {
    if outcomes.is_empty() {
        return f64::NAN;
    }
    outcomes
        .iter()
        .map(|o| o.collision_probability)
        .sum::<f64>()
        / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_station_rarely_collides() {
        let out = CollisionExperiment::quick(1, 1).run().unwrap();
        assert!(out.sum_acked > 0);
        assert!(
            out.collision_probability < 0.01,
            "one CA1 station should almost never collide: {}",
            out.collision_probability
        );
    }

    #[test]
    fn two_stations_near_paper_value() {
        let outs = CollisionExperiment::quick(2, 2).run_repeated(3).unwrap();
        let p = mean_collision_probability(&outs);
        assert!(
            (p - 0.074).abs() < 0.035,
            "N=2 measurement should sit near the paper's ≈0.074, got {p}"
        );
    }

    #[test]
    fn acked_grows_with_n() {
        // The paper's §3.2 verification: ΣAᵢ increases with N because
        // collided frames are still acknowledged.
        let a2 = CollisionExperiment::quick(2, 3).run().unwrap().sum_acked;
        let a5 = CollisionExperiment::quick(5, 3).run().unwrap().sum_acked;
        assert!(a5 > a2, "ΣAᵢ must grow with N: {a2} vs {a5}");
    }

    #[test]
    fn probability_monotone_in_n() {
        let p = |n| {
            CollisionExperiment::quick(n, 4)
                .run()
                .unwrap()
                .collision_probability
        };
        let (p1, p3, p6) = (p(1), p(3), p(6));
        assert!(p1 < p3 && p3 < p6, "{p1} {p3} {p6}");
    }

    #[test]
    fn outcome_arithmetic() {
        let out = ExperimentOutcome::from_counters(vec![
            AmpStatCnf {
                acked: 100,
                collided: 10,
            },
            AmpStatCnf {
                acked: 50,
                collided: 5,
            },
        ]);
        assert_eq!(out.sum_acked, 150);
        assert_eq!(out.sum_collided, 15);
        assert!((out.collision_probability - 0.1).abs() < 1e-12);
        assert_eq!(
            ExperimentOutcome::from_counters(vec![]).collision_probability,
            0.0
        );
    }

    #[test]
    fn repeats_use_different_seeds() {
        let outs = CollisionExperiment::quick(2, 5).run_repeated(2).unwrap();
        assert_ne!(outs[0], outs[1]);
    }
}
